"""Tests for weight-ranked keyword search (repro.datagraph.ranked)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagraph.kfragments import undirected_kfragments
from repro.datagraph.model import DataGraph, synthetic_data_graph
from repro.datagraph.ranked import (
    RankedFragment,
    degree_weight_model,
    ranked_kfragments,
    top_k_weighted_fragments,
    uniform_weight_model,
)


def bibliographic_graph():
    """Papers citing each other through a hub (classic keyword-search
    shape: the hub must be penalized by the degree model)."""
    dg = DataGraph()
    dg.add_node("hub")
    dg.add_node("p1", ["steiner"])
    dg.add_node("p2", ["enumeration"])
    dg.add_node("p3", [])
    for i in range(4, 9):  # extra spokes make the hub a genuine hub
        dg.add_node(f"p{i}")
    for node in ("p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"):
        dg.add_link("hub", node)
    dg.add_link("p1", "p3")
    dg.add_link("p3", "p2")
    return dg


class TestWeightModels:
    def test_uniform_counts_structural_edges(self):
        dg = bibliographic_graph()
        query = dg.query_graph(["steiner", "enumeration"])
        weights = uniform_weight_model(query)
        for eid in query.keyword_edge_ids:
            assert weights[eid] == 0.0
        structural = set(query.graph.edge_ids()) - set(query.keyword_edge_ids)
        assert all(weights[eid] == 1.0 for eid in structural)

    def test_degree_model_penalizes_hub(self):
        dg = bibliographic_graph()
        query = dg.query_graph(["steiner", "enumeration"])
        weights = degree_weight_model(dg, query)
        hub_edges = [
            e.eid
            for e in query.graph.edges()
            if "hub" in (e.u, e.v) and e.eid not in query.keyword_edge_ids
        ]
        side_edges = [
            e.eid
            for e in query.graph.edges()
            if e.eid not in query.keyword_edge_ids and "hub" not in (e.u, e.v)
        ]
        assert min(weights[e] for e in hub_edges) > max(
            weights[e] for e in side_edges
        )

    def test_unknown_model_rejected(self):
        dg = bibliographic_graph()
        with pytest.raises(ValueError):
            top_k_weighted_fragments(dg, ["steiner"], 1, model="pagerank")


class TestTopK:
    def test_uniform_top1_is_smallest_fragment(self):
        dg = bibliographic_graph()
        out = top_k_weighted_fragments(dg, ["steiner", "enumeration"], 1, "uniform")
        assert len(out) == 1
        smallest = min(
            f.size for f in undirected_kfragments(dg, ["steiner", "enumeration"])
        )
        assert out[0].fragment.size == smallest

    def test_degree_model_prefers_non_hub_route(self):
        dg = bibliographic_graph()
        best = top_k_weighted_fragments(dg, ["steiner", "enumeration"], 1, "degree")[0]
        nodes = {v for eid in best.fragment.structural_edges for v in dg.graph.endpoints(eid)}
        assert "hub" not in nodes  # p1 - p3 - p2 beats p1 - hub - p2

    @pytest.mark.slow
    def test_weights_nondecreasing(self):
        dg = synthetic_data_graph(30, 15, 12, 2, seed=3)
        vocab = sorted(dg.vocabulary())[:2]
        out = top_k_weighted_fragments(dg, vocab, 5, "degree")
        weights = [f.weight for f in out]
        assert weights == sorted(weights)

    def test_k_larger_than_answer_set(self):
        dg = bibliographic_graph()
        all_answers = list(undirected_kfragments(dg, ["steiner", "enumeration"]))
        out = top_k_weighted_fragments(
            dg, ["steiner", "enumeration"], len(all_answers) + 10, "uniform"
        )
        assert len(out) == len(all_answers)


class TestStreaming:
    def test_stream_covers_all_fragments(self):
        dg = bibliographic_graph()
        streamed = {
            f.fragment.structural_edges
            for f in ranked_kfragments(dg, ["steiner", "enumeration"])
        }
        direct = {
            f.structural_edges
            for f in undirected_kfragments(dg, ["steiner", "enumeration"])
        }
        assert streamed == direct

    @pytest.mark.slow
    def test_large_lookahead_gives_sorted_stream(self):
        dg = synthetic_data_graph(25, 12, 10, 2, seed=7)
        vocab = sorted(dg.vocabulary())[:2]
        total = sum(1 for _ in undirected_kfragments(dg, vocab))
        weights = [
            f.weight
            for f in ranked_kfragments(dg, vocab, lookahead=total + 1)
        ]
        assert weights == sorted(weights)

    def test_returns_ranked_fragment_records(self):
        dg = bibliographic_graph()
        first = next(ranked_kfragments(dg, ["steiner", "enumeration"]))
        assert isinstance(first, RankedFragment)
        assert first.weight >= 0
        assert first.fragment.matches


@pytest.mark.slow
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    lookahead=st.integers(min_value=1, max_value=64),
)
def test_stream_is_permutation_of_direct_enumeration(seed, lookahead):
    dg = synthetic_data_graph(18, 8, 8, 2, seed=seed)
    vocab = sorted(dg.vocabulary())[:2]
    streamed = sorted(
        tuple(sorted(f.fragment.structural_edges))
        for f in ranked_kfragments(dg, vocab, lookahead=lookahead)
    )
    direct = sorted(
        tuple(sorted(f.structural_edges))
        for f in undirected_kfragments(dg, vocab)
    )
    assert streamed == direct

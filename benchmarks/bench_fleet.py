"""Fleet benchmark: throughput scaling across replicas + kill-trial wall.

Two gates, run against real ``repro serve`` child processes behind a
:class:`~repro.serve.fleet.FleetRouter`:

1. **Scaling** — the same many-client paced workload is pushed through
   a 1-replica fleet and an N-replica fleet (fresh stores, so nothing
   replays).  Streams are *consumer-paced*: every connection's
   buffering is bounded (``sndbuf`` on the replicas and router, a small
   ``SO_RCVBUF`` on the clients), so a stream occupies its replica's
   worker for as long as the client takes to drain it.  That makes the
   workload idle-dominated — exactly the regime where adding replicas
   must help even on a single-core box — and the benchmark asserts
   aggregate throughput scales by at least ``BENCH_FLEET_GATE`` (2.5x
   by default at 4 replicas).  Every stream is byte-checked against
   :func:`repro.engine.jobs.run_job`.

2. **Migration** — ``BENCH_FLEET_TRIALS`` seeded trials SIGKILL the
   replica that owns an in-flight stream; the router must migrate to
   the survivor and the client must still see a gap-free,
   byte-identical stream.  The gate is 100%: a single lost or
   corrupted stream fails the benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py \
        [--out BENCH_fleet_abc1234.json] \
        [--baseline benchmarks/BENCH_fleet_baseline.json]

Environment knobs: ``BENCH_FLEET_REPLICAS`` (default 4),
``BENCH_FLEET_JOBS`` (default 8), ``BENCH_FLEET_PACE_MS`` (default
1.0), ``BENCH_FLEET_GATE`` (default 2.5), ``BENCH_FLEET_TRIALS``
(default 10), ``BENCH_FLEET_SEED`` (default 20220822),
``BENCH_FLEET_TOLERANCE`` (baseline slack, default 0.75).

Exits non-zero on any gate failure; prints the seed so a failing
migration trial can be replayed exactly.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import shutil
import socket
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.engine.jobs import EnumerationJob, run_job
from repro.serve.client import ServeClient
from repro.serve.fleet import (
    FleetRouter,
    HashRing,
    ReplicaProcess,
    RouterThread,
    join_router,
    routing_key,
)

REPLICAS = int(os.environ.get("BENCH_FLEET_REPLICAS", "4"))
JOBS = int(os.environ.get("BENCH_FLEET_JOBS", "8"))
PACE = float(os.environ.get("BENCH_FLEET_PACE_MS", "2.0")) / 1000.0
GATE = float(os.environ.get("BENCH_FLEET_GATE", "2.5"))
TRIALS = int(os.environ.get("BENCH_FLEET_TRIALS", "10"))
SEED = int(os.environ.get("BENCH_FLEET_SEED", "20220822"))

#: Per-connection buffering bound (replica sndbuf, router both legs,
#: client rcvbuf).  Small enough that a paced consumer parks its
#: worker; large enough to stay above the kernel's SO_SNDBUF floor.
SNDBUF = 4096
CHUNK = 16
VNODES = 64  # must match FleetRouter's default so owner prediction holds


# ----------------------------------------------------------------------
# workload: K8 s-t paths (1957 solutions) + a pendant tail off "b".
# The tail is a dead end — it never appears on an a->h path, so every
# variant streams the *identical* 1957 lines — but it changes the
# graph's structure, hence its isomorphism-stable digest, hence its
# routing key and its store identity (no cross-stream replay).
# ----------------------------------------------------------------------
def make_spec(tail: int) -> Dict:
    verts = list("abcdefgh")
    edges = [[verts[i], verts[j]] for i in range(8) for j in range(i + 1, 8)]
    prev = "b"
    for c in range(tail):
        nxt = f"t{c}"
        edges.append([prev, nxt])
        prev = nxt
    return {"kind": "st-path", "edges": edges, "source": "a", "target": "h"}


def reference_lines() -> List[str]:
    return list(run_job(EnumerationJob.from_dict(make_spec(1))).lines)


def describe_divergence(lines: List[str], expected: List[str]) -> str:
    """A diagnostic for a stream that is not byte-identical to run_job."""
    if len(lines) != len(expected):
        return f"({len(lines)} vs {len(expected)} lines)"
    for index, (got, want) in enumerate(zip(lines, expected)):
        if got != want:
            return (
                f"(first diff at line {index}: got {got[:80]!r}, "
                f"want {want[:80]!r})"
            )
    return "(no positional diff: duplicate or reordered lines)"


def balanced_tails(names: List[str], per_replica: int) -> List[int]:
    """Pendant-tail lengths whose routing keys spread evenly over ``names``.

    Consistent hashing is only *statistically* balanced; for a scaling
    measurement we want exactly ``per_replica`` streams per replica, so
    candidate structures are scanned until each replica owns its share.
    """
    ring = HashRing(vnodes=VNODES)
    for name in names:
        ring.add(name)
    picked: Dict[str, List[int]] = {name: [] for name in names}
    tail = 1
    while any(len(v) < per_replica for v in picked.values()):
        owner = ring.route(routing_key(make_spec(tail)))
        if owner is not None and len(picked[owner]) < per_replica:
            picked[owner].append(tail)
        tail += 1
        if tail > 10000:  # pragma: no cover - ring pathologies only
            raise RuntimeError("could not balance tails over the ring")
    ordered: List[int] = []
    for index in range(per_replica):
        for name in names:
            ordered.append(picked[name][index])
    return ordered


# ----------------------------------------------------------------------
# fleet harness: a RouterThread + N real replica child processes
# ----------------------------------------------------------------------
class Fleet:
    def __init__(
        self, replicas: int, prefix: str, checkpoint_every: Optional[int] = None
    ) -> None:
        self.tmp = tempfile.mkdtemp(prefix="bench-fleet-")
        self.store = os.path.join(self.tmp, "store")
        self.checkpoint_every = checkpoint_every
        self.prefix = prefix
        self.router = FleetRouter(
            registry=os.path.join(self.store, "datasets"),
            max_streams=128,
            per_client_streams=128,
            health_interval=0.2,
            sndbuf=SNDBUF,
        )
        self.thread = RouterThread(self.router).start()
        self.procs: Dict[str, ReplicaProcess] = {}
        self._spawned = 0
        for _ in range(replicas):
            self.spawn()

    @property
    def port(self) -> int:
        return self.thread.port

    def spawn(self) -> ReplicaProcess:
        """Start one replica; membership is established when this returns
        (the join runs here, not via ``--join``, so there is no race)."""
        name = f"{self.prefix}-r{self._spawned}"
        self._spawned += 1
        proc = ReplicaProcess(
            name,
            store=self.store,
            workers=1,
            chunk=CHUNK,
            checkpoint_every=self.checkpoint_every,
            sndbuf=SNDBUF,
        )
        proc.start()
        assert proc.port is not None
        join_router(f"http://127.0.0.1:{self.port}", name, "127.0.0.1", proc.port)
        self.procs[name] = proc
        return proc

    def live_names(self) -> List[str]:
        return [name for name, proc in self.procs.items() if proc.running]

    def owner_of(self, spec: Dict) -> ReplicaProcess:
        ring = HashRing(vnodes=VNODES)
        for name in self.live_names():
            ring.add(name)
        owner = ring.route(routing_key(spec))
        assert owner is not None
        return self.procs[owner]

    def metrics(self) -> Dict:
        return ServeClient("127.0.0.1", self.port).metrics()

    def close(self) -> None:
        for proc in self.procs.values():
            proc.terminate()
        self.thread.stop()
        shutil.rmtree(self.tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# one paced streaming client (raw socket: needs the SO_RCVBUF clamp)
# ----------------------------------------------------------------------
def drain_stream(
    port: int,
    spec: Dict,
    stream_id: str,
    pace: float,
    kill_at: Optional[int] = None,
    kill: Optional[ReplicaProcess] = None,
) -> Tuple[List[str], Dict]:
    """Stream one job to completion; returns ``(solution lines, end event)``.

    When ``kill_at`` is given, ``kill`` is SIGKILLed as soon as that
    many solutions have been consumed — the stream must keep going.
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    # The receive-buffer clamp must precede the TCP handshake: the
    # advertised window can never shrink, so a post-connect clamp
    # would let the fleet push the whole stream at us unpaced.
    raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, SNDBUF)
    raw.settimeout(600)
    raw.connect(("127.0.0.1", port))
    conn.sock = raw
    body = json.dumps({"job": spec, "stream_id": stream_id, "chunk": CHUNK}).encode()
    conn.request(
        "POST", "/enumerate", body=body, headers={"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    if response.status != 200:
        raise RuntimeError(
            f"stream {stream_id} rejected: HTTP {response.status} "
            f"{response.read(500)!r}"
        )
    lines: List[str] = []
    end: Dict = {}
    while True:
        raw = response.readline()
        if not raw:
            break
        event = json.loads(raw)
        etype = event.get("event")
        if etype == "solution":
            lines.append(event["line"])
            if kill_at is not None and kill is not None and len(lines) == kill_at:
                kill.kill()
            if pace:
                time.sleep(pace)
        elif etype == "end":
            end = event
            break
        elif etype == "error":
            raise RuntimeError(f"stream {stream_id} errored: {event.get('error')}")
    conn.close()
    return lines, end


def run_phase(
    replicas: int, tails: List[int], expected: List[str], failures: List[str]
) -> Tuple[float, int]:
    """Run the paced workload against a fresh fleet; returns (wall, solutions)."""
    fleet = Fleet(replicas, prefix=f"bench{replicas}")
    results: Dict[int, Tuple[List[str], Dict]] = {}
    errors: List[str] = []

    def worker(index: int, tail: int) -> None:
        try:
            results[index] = drain_stream(
                fleet.port, make_spec(tail), f"scale{replicas}-{index}", PACE
            )
        except Exception as exc:  # noqa: BLE001 - reported as a failure
            errors.append(f"phase x{replicas} stream {index}: {exc}")

    try:
        threads = [
            threading.Thread(target=worker, args=(index, tail))
            for index, tail in enumerate(tails)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    finally:
        fleet.close()
    failures.extend(errors)
    total = 0
    for index in range(len(tails)):
        if index not in results:
            continue
        lines, end = results[index]
        total += len(lines)
        if lines != expected:
            failures.append(
                f"phase x{replicas} stream {index}: diverged from run_job "
                + describe_divergence(lines, expected)
            )
        if not end.get("exhausted"):
            failures.append(f"phase x{replicas} stream {index}: not exhausted")
    return wall, total


def run_kill_trials(trials: int, expected: List[str], failures: List[str]) -> int:
    """Seeded SIGKILL-mid-stream trials; returns the gap-free count."""
    fleet = Fleet(2, prefix="chaos", checkpoint_every=32)
    gap_free = 0
    try:
        for trial in range(trials):
            rng = random.Random(f"{SEED}:{trial}")
            spec = make_spec(500 + trial)
            victim = fleet.owner_of(spec)
            kill_at = rng.randrange(200, 1500)
            try:
                lines, end = drain_stream(
                    fleet.port,
                    spec,
                    f"trial-{trial}",
                    pace=0.0003,
                    kill_at=kill_at,
                    kill=victim,
                )
            except Exception as exc:  # noqa: BLE001 - reported as a failure
                failures.append(
                    f"trial {trial} (seed {SEED}, kill_at {kill_at}): {exc}"
                )
                continue
            if lines == expected and end.get("exhausted"):
                gap_free += 1
            else:
                failures.append(
                    f"trial {trial} (seed {SEED}, kill_at {kill_at}): stream "
                    f"not byte-identical {describe_divergence(lines, expected)}"
                )
            fleet.spawn()
        migrations = fleet.metrics().get("migrations", 0)
        if migrations < trials:
            failures.append(
                f"only {migrations} migrations recorded across {trials} kill "
                f"trials — kills are not landing mid-stream (seed {SEED})"
            )
    finally:
        fleet.close()
    return gap_free


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write results as JSON here")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_fleet_baseline.json"),
        help="committed baseline to gate against ('' disables the gate)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    expected = reference_lines()
    names = [f"bench{REPLICAS}-r{i}" for i in range(REPLICAS)]
    tails = balanced_tails(names, max(1, JOBS // REPLICAS))

    print(
        f"fleet bench: {len(tails)} jobs x {len(expected)} solutions, "
        f"pace {PACE * 1000:g}ms, sndbuf {SNDBUF}, seed {SEED}"
    )
    wall_one, solutions = run_phase(1, tails, expected, failures)
    rate_one = solutions / wall_one
    print(f"  1 replica : {wall_one:6.2f}s  {rate_one:8.1f} solutions/s")
    wall_many, solutions = run_phase(REPLICAS, tails, expected, failures)
    rate_many = solutions / wall_many
    scaling = wall_one / wall_many
    print(
        f"  {REPLICAS} replicas: {wall_many:6.2f}s  {rate_many:8.1f} solutions/s "
        f"-> {scaling:.2f}x scaling (gate {GATE:.2f}x)"
    )
    if scaling < GATE:
        failures.append(
            f"aggregate throughput scaled only {scaling:.2f}x at {REPLICAS} "
            f"replicas (gate {GATE:.2f}x)"
        )

    gap_free = run_kill_trials(TRIALS, expected, failures)
    print(f"  kill trials: {gap_free}/{TRIALS} gap-free byte-identical streams")
    if gap_free != TRIALS:
        failures.append(
            f"{TRIALS - gap_free}/{TRIALS} kill trials lost stream bytes "
            f"(seed {SEED})"
        )

    results = {
        "fleet": {
            "replicas": REPLICAS,
            "jobs": len(tails),
            "solutions_per_stream": len(expected),
            "pace_ms": PACE * 1000,
            "wall_one": round(wall_one, 3),
            "wall_many": round(wall_many, 3),
            "scaling": round(scaling, 3),
            "rate_many": round(rate_many, 1),
            "trials": TRIALS,
            "gap_free": gap_free,
            "seed": SEED,
        }
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    tolerance = float(os.environ.get("BENCH_FLEET_TOLERANCE", "0.75"))
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            base = json.load(handle).get("fleet", {})
        base_scaling = base.get("scaling")
        if base_scaling and scaling < base_scaling * tolerance:
            failures.append(
                f"scaling regressed: {scaling:.2f}x is below {tolerance:.0%} "
                f"of baseline {base_scaling:.2f}x"
            )
        else:
            print(
                f"gate passed vs {args.baseline} "
                f"(scaling {scaling:.2f}x vs baseline {base_scaling}, "
                f"tolerance {tolerance:.0%})"
            )
    elif args.baseline:
        print(f"no baseline at {args.baseline}; gate skipped", file=sys.stderr)

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all fleet gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

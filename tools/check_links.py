"""Check Markdown links across the docs tree and the top-level docs.

Scans ``docs/**/*.md``, ``README.md``, ``DESIGN.md``,
``benchmarks/README.md`` and ``tests/corpus/README.md`` for inline
Markdown links/images and verifies that:

* relative file targets exist (anchors are split off first);
* intra-document anchors (``#section``) match a heading in the target
  file (GitHub/mkdocs slug rules: lowercase, punctuation stripped,
  spaces to dashes);
* reference-style link definitions resolve.

External links (``http://``, ``https://``, ``mailto:``) are *not*
fetched — the checker must stay deterministic and offline.  Exit
status 0 when everything resolves, 1 otherwise; CI's docs job and
``tests/test_docs.py`` both run it.

Usage::

    python tools/check_links.py [--root .]
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Set, Tuple

#: files outside docs/ included in the scan.
EXTRA_FILES = ["README.md", "DESIGN.md", "benchmarks/README.md", "tests/corpus/README.md"]

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: str) -> List[str]:
    """Every Markdown file the checker covers, relative to ``root``."""
    files: List[str] = []
    docs = os.path.join(root, "docs")
    for dirpath, _dirnames, filenames in os.walk(docs):
        for name in sorted(filenames):
            if name.endswith(".md"):
                files.append(os.path.relpath(os.path.join(dirpath, name), root))
    for extra in EXTRA_FILES:
        if os.path.exists(os.path.join(root, extra)):
            files.append(extra)
    return files


def anchors_of(path: str, cache: Dict[str, Set[str]]) -> Set[str]:
    """The set of heading anchors defined in ``path`` (memoized)."""
    if path not in cache:
        try:
            with open(path) as handle:
                body = _CODE_FENCE.sub("", handle.read())
        except OSError:
            cache[path] = set()
        else:
            cache[path] = {slugify(m.group(1)) for m in _HEADING.finditer(body)}
    return cache[path]


def check_file(
    rel_path: str, root: str, anchor_cache: Dict[str, Set[str]]
) -> List[Tuple[str, str]]:
    """Broken links in one file: ``(target, reason)`` pairs."""
    path = os.path.join(root, rel_path)
    with open(path) as handle:
        body = _CODE_FENCE.sub("", handle.read())
    problems: List[Tuple[str, str]] = []
    for match in _LINK.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path, anchor_cache):
                problems.append((target, "no such heading in this file"))
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), file_part)
        )
        if not os.path.exists(resolved):
            problems.append((target, "target file does not exist"))
            continue
        if anchor and resolved.endswith(".md"):
            if slugify(anchor) not in anchors_of(resolved, anchor_cache):
                problems.append((target, "no such heading in the target file"))
    return problems


def main(argv=None) -> int:
    """Scan every covered file; print and count the broken links."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args(argv)
    anchor_cache: Dict[str, Set[str]] = {}
    total = 0
    broken = 0
    for rel_path in markdown_files(args.root):
        problems = check_file(rel_path, args.root, anchor_cache)
        total += 1
        for target, reason in problems:
            broken += 1
            print(f"{rel_path}: {target}: {reason}", file=sys.stderr)
    if broken:
        print(f"{broken} broken link(s) across {total} files", file=sys.stderr)
        return 1
    print(f"links ok across {total} Markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

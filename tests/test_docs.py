"""Docs health in tier-1: docstring audit, API freshness, link check.

CI's docs job additionally runs ``mkdocs build --strict`` (mkdocs is
not a test dependency); these tests keep everything mkdocs does not
need — docstring coverage, the generated API pages, every Markdown
link — green without network or extra installs.
"""

from __future__ import annotations

import os
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _tools_importable():
    for path in (ROOT, os.path.join(ROOT, "docs"), os.path.join(ROOT, "tools")):
        if path not in sys.path:
            sys.path.insert(0, path)
    yield


def test_public_surface_is_fully_documented():
    import audit_docstrings

    findings = []
    for module_name in sorted(set(audit_docstrings.iter_modules("repro"))):
        findings.extend(audit_docstrings.audit_module(module_name))
    assert not findings, "undocumented public objects:\n" + "\n".join(
        f"  {where}: {what}" for where, what in findings
    )


def test_api_reference_is_fresh():
    """docs/api/ must match what gen_api.py generates from the code."""
    import gen_api

    pages = gen_api.generate()
    api_dir = os.path.join(ROOT, "docs", "api")
    committed = {
        name for name in os.listdir(api_dir) if name.endswith(".md")
    }
    assert committed == set(pages), (
        "docs/api/ file set drifted; run `PYTHONPATH=src python docs/gen_api.py`"
    )
    stale = []
    for name, content in pages.items():
        with open(os.path.join(api_dir, name)) as handle:
            if handle.read() != content:
                stale.append(name)
    assert not stale, (
        f"stale API pages {stale}; run `PYTHONPATH=src python docs/gen_api.py`"
    )


def test_markdown_links_resolve():
    import check_links

    anchor_cache = {}
    problems = []
    for rel_path in check_links.markdown_files(ROOT):
        for target, reason in check_links.check_file(rel_path, ROOT, anchor_cache):
            problems.append(f"{rel_path}: {target}: {reason}")
    assert not problems, "broken Markdown links:\n" + "\n".join(problems)


def test_docs_tree_covers_every_package():
    """Every repro subpackage has an API page and the nav lists it."""
    import gen_api

    src = os.path.join(ROOT, "src", "repro")
    packages = {
        f"repro.{name}"
        for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name)) and name != "__pycache__"
    }
    assert packages <= set(gen_api.PAGES), (
        f"packages missing from the API reference: {sorted(packages - set(gen_api.PAGES))}"
    )
    with open(os.path.join(ROOT, "mkdocs.yml")) as handle:
        nav = handle.read()
    for slug in gen_api.PAGES:
        assert f"api/{slug}.md" in nav, f"mkdocs nav missing api/{slug}.md"


def test_readme_links_into_docs():
    """README stays a quickstart + link hub: it must link the docs tree."""
    with open(os.path.join(ROOT, "README.md")) as handle:
        readme = handle.read()
    for target in ("docs/index.md", "docs/architecture.md", "docs/guides/serve.md"):
        assert target in readme, f"README.md no longer links {target}"

"""Line graphs and claw detection.

Section 7 (Theorem 39) reduces minimal Steiner tree enumeration to minimal
*induced* Steiner subgraph enumeration on a graph built from the line
graph: every edge of ``G`` becomes a vertex, and every terminal ``w``
gains a pendant-side companion ``w'`` adjacent to the line-graph vertices
of the edges incident to ``w``.  Since line graphs are claw-free and the
construction preserves claw-freeness around the added terminals only if
handled as the paper describes, this module provides:

* :func:`line_graph` — the line graph ``L(G)`` with vertices labelled by
  the originating edge ids;
* :func:`steiner_to_induced_instance` — the full Theorem 39 construction;
* :func:`find_claw` / :func:`is_claw_free` — detection of induced
  ``K_{1,3}`` subgraphs, used to validate inputs of the claw-free
  enumerator (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, NamedTuple, Optional, Sequence, Tuple

from repro.graphs.graph import Graph

Vertex = Hashable


@dataclass(frozen=True)
class LineGraphVertex:
    """A vertex of a line graph: stands for edge ``eid`` of the base graph.

    A frozen dataclass rather than a NamedTuple so that it never compares
    equal to a :class:`TerminalVertex` carrying the same payload.
    """

    eid: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"e{self.eid}"


@dataclass(frozen=True)
class TerminalVertex:
    """The companion vertex ``w'`` added for terminal ``w`` (Theorem 39)."""

    terminal: Vertex

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"t({self.terminal!r})"


def line_graph(graph: Graph) -> Graph:
    """The line graph ``L(G)``.

    Vertices are :class:`LineGraphVertex` records wrapping the original
    edge ids; two are adjacent iff the original edges share an endpoint.
    Parallel original edges share *both* endpoints and yield a single
    line-graph edge (simple graph output).
    """
    lg = Graph()
    for edge in graph.edges():
        lg.add_vertex(LineGraphVertex(edge.eid))
    for v in graph.vertices():
        incident = [e.eid for e in graph.incident(v)]
        for i, a in enumerate(incident):
            for b in incident[i + 1 :]:
                la, lb = LineGraphVertex(a), LineGraphVertex(b)
                if not lg.has_edge_between(la, lb):
                    lg.add_edge(la, lb)
    return lg


class InducedInstance(NamedTuple):
    """Theorem 39 instance: graph ``H``, terminals ``W_H`` and back-maps."""

    graph: Graph
    terminals: Tuple[Vertex, ...]
    edge_of_vertex: Dict[Vertex, int]  # LineGraphVertex -> original edge id


def steiner_to_induced_instance(
    graph: Graph, terminals: Sequence[Vertex]
) -> InducedInstance:
    """Build ``(H, W_H)`` from ``(G, W)`` per Theorem 39.

    ``H`` is ``L(G)`` plus one :class:`TerminalVertex` ``w'`` per terminal
    ``w``, adjacent to the line-graph vertices of all edges in ``Γ_G(w)``.
    A vertex set ``V_T ∪ W_H`` induces a connected Steiner subgraph of
    ``(H, W_H)`` iff the corresponding edge set ``T`` is a connected
    Steiner subgraph of ``(G, W)``.
    """
    h = line_graph(graph)
    edge_of_vertex = {LineGraphVertex(e.eid): e.eid for e in graph.edges()}
    terms: List[Vertex] = []
    for w in terminals:
        wv = TerminalVertex(w)
        h.add_vertex(wv)
        terms.append(wv)
        for edge in graph.incident(w):
            h.add_edge(wv, LineGraphVertex(edge.eid))
    return InducedInstance(h, tuple(terms), edge_of_vertex)


def find_claw(
    graph: Graph,
) -> Optional[Tuple[Vertex, Tuple[Vertex, Vertex, Vertex]]]:
    """Find an induced ``K_{1,3}``: a centre with 3 pairwise non-adjacent
    neighbours.  Returns ``(centre, (a, b, c))`` or ``None``.

    Runs in O(sum_v deg(v)^3) worst case, which is fine for the test and
    validation workloads this is used on; the enumeration algorithms never
    call it in their inner loops.
    """
    for v in graph.vertices():
        neigh = list(graph.neighbor_set(v))
        if len(neigh) < 3:
            continue
        neigh_sets = {u: graph.neighbor_set(u) for u in neigh}
        k = len(neigh)
        for i in range(k):
            a = neigh[i]
            for j in range(i + 1, k):
                b = neigh[j]
                if b in neigh_sets[a]:
                    continue
                for l in range(j + 1, k):
                    c = neigh[l]
                    if c in neigh_sets[a] or c in neigh_sets[b]:
                        continue
                    return (v, (a, b, c))
    return None


def is_claw_free(graph: Graph) -> bool:
    """True iff ``graph`` contains no induced ``K_{1,3}``."""
    return find_claw(graph) is None

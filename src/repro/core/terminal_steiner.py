"""Minimal terminal Steiner tree enumeration (Section 5.1, Thms 29/31).

A *terminal* Steiner tree must keep every terminal a leaf.  Lemma 27
pins down the structure: terminal-terminal edges are never usable, and a
solution's interior lives inside a single connected component ``C`` of
``G[V \\ W]`` with ``W ⊆ N(C)``.  The enumerator therefore:

* handles ``|W| = 2`` directly as *s*-*t* path enumeration (the paper's
  observation — a tree with leaf set exactly ``{w, w'}`` is a path);
* for ``|W| ≥ 3`` drops terminal-terminal edges, restricts to each valid
  component ``C`` in turn, and grows a partial tree by
  ``(V(T) ∩ C)``-``w`` paths inside ``G[C ∪ {w}]``.

Note on valid paths: the paper states valid paths inside ``G[C ∪ W]``;
read literally this would admit paths threading *through* another
terminal, which would make that terminal an internal vertex and violate
the partial-solution invariant the same section relies on.  We therefore
enumerate paths in ``G[C ∪ {w}]`` (all other terminals excluded), which
is the reading under which Lemma 28 and the uniqueness argument go
through.  The ≥2-children test is adapted accordingly (and stays O(n+m)
per node): an uncovered terminal ``w`` is branchable iff

* ``w`` has ≥ 2 edges into ``C`` (each attachment edge extends to a valid
  path since ``C`` is connected and meets ``V(T)``), or
* ``w`` has exactly one edge ``{w, v}`` into ``C`` and the
  ``V(T)``-``v`` path is non-unique in ``G[C]`` — tested via the static
  bridges of ``G[C]`` exactly as in Lemma 16/30.

When no uncovered terminal is branchable, every attachment edge is forced
and every connecting path is bridge-only, so the minimal completion
(Lemma 28's construction) is the *unique* minimal terminal Steiner tree
containing ``T`` and is output as a leaf.

Solutions are frozensets of edge ids.  Amortized O(n+m) per solution;
O(n+m) delay with the output-queue regulator (Theorem 31).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.backend import check_backend, compile_undirected, map_query_vertices
from repro.enumeration.events import DISCOVER, EXAMINE, SOLUTION, Event
from repro.enumeration.queue_method import regulate
from repro.exceptions import InvalidInstanceError
from repro.graphs.bridges import find_bridges
from repro.graphs.fastgraph import (
    FastGraph,
    fast_prune_non_terminal_leaves,
    fast_spanning_forest,
)
from repro.graphs.graph import Graph
from repro.graphs.spanning import prune_non_terminal_leaves, spanning_tree_edges
from repro.graphs.traversal import connected_components
from repro.paths.fastpaths import (
    fast_enumerate_set_paths,
    fast_enumerate_st_paths_undirected,
)
from repro.paths.read_tarjan import enumerate_set_paths, enumerate_st_paths_undirected

Vertex = Hashable
Solution = FrozenSet[int]


def _validate(graph: Graph, terminals: Sequence[Vertex]) -> List[Vertex]:
    seen: Set[Vertex] = set()
    ordered: List[Vertex] = []
    for w in terminals:
        if w not in graph:
            raise InvalidInstanceError(f"terminal {w!r} is not in the graph")
        if w not in seen:
            seen.add(w)
            ordered.append(w)
    if len(ordered) < 2:
        raise InvalidInstanceError(
            "terminal Steiner trees need at least two terminals"
        )
    return ordered


class _Component:
    """A valid component ``C`` (``W ⊆ N(C)``) with its static analysis."""

    __slots__ = (
        "vertices",
        "graph_c",
        "bridges_c",
        "terminal_edges",
        "work_graph",
        "_kernel",
        "_kernel_c",
    )

    def kernel(self, n_space: int) -> FastGraph:
        """The work graph compiled once as a kernel (fast backend).

        Per-query vertex masks (``excluded``) replace the per-node
        ``G[C ∪ {w}]`` subcopies the object backend builds; the visible
        incidence order is the same subsequence either way.
        """
        if self._kernel is None:
            self._kernel = FastGraph.from_graph(self.work_graph, n_space=n_space)
        return self._kernel

    def kernel_c(self, n_space: int) -> FastGraph:
        """``G[C]`` compiled once as a kernel (fast backend): the
        substrate for the per-node spanning/flag completion step."""
        if self._kernel_c is None:
            self._kernel_c = FastGraph.from_graph(self.graph_c, n_space=n_space)
        return self._kernel_c

    def __init__(self, graph: Graph, vertices: Set[Vertex], terminals, meter):
        self.vertices = vertices
        # G[C]: the interior graph; its bridges are static for the whole
        # component's enumeration subtree (Lemma 16 applied inside C).
        self.graph_c = graph.subgraph(vertices)
        self.bridges_c = find_bridges(self.graph_c, meter=meter)
        # terminal -> list of (eid, attachment vertex in C)
        self.terminal_edges: Dict[Vertex, List[Tuple[int, Vertex]]] = {}
        for w in terminals:
            edges = [
                (eid, other)
                for eid, other in graph.incident_items(w)
                if other in vertices
            ]
            self.terminal_edges[w] = edges
        # G[C ∪ W] minus terminal-terminal edges: the working graph whose
        # subgraphs G[C ∪ {w}] host the path enumerations.
        self._kernel = None
        self._kernel_c = None
        self.work_graph = Graph()
        for v in vertices:
            self.work_graph.add_vertex(v)
        for edge in self.graph_c.edges():
            self.work_graph.add_edge(edge.u, edge.v, eid=edge.eid)
        for w in terminals:
            self.work_graph.add_vertex(w)
            for eid, other in self.terminal_edges[w]:
                self.work_graph.add_edge(w, other, eid=eid)


def valid_components(
    graph: Graph, terminals: Sequence[Vertex], meter=None
) -> List[Set[Vertex]]:
    """Components ``C`` of ``G[V \\ W]`` with ``W ⊆ N(C)`` (Lemma 27)."""
    terminal_set = set(terminals)
    interior = graph.without_vertices(terminal_set)
    result: List[Set[Vertex]] = []
    for comp in connected_components(interior, meter=meter):
        neighbourhood: Set[Vertex] = set()
        for v in comp:
            for u in graph.neighbor_set(v):
                if u in terminal_set:
                    neighbourhood.add(u)
        if terminal_set <= neighbourhood:
            result.append(comp)
    return result


class _PartialTree:
    __slots__ = ("edges", "vertices", "uncovered")

    def __init__(self, terminals: Sequence[Vertex]):
        self.edges: Set[int] = set()
        self.vertices: Set[Vertex] = set()
        self.uncovered: Set[Vertex] = set(terminals)

    def apply_path(self, path_vertices, path_eids):
        new_edges = tuple(path_eids)
        new_vertices = tuple(v for v in path_vertices if v not in self.vertices)
        covered = tuple(v for v in new_vertices if v in self.uncovered)
        self.edges.update(new_edges)
        self.vertices.update(new_vertices)
        self.uncovered.difference_update(covered)
        return new_edges, new_vertices, covered

    def undo(self, record):
        new_edges, new_vertices, covered = record
        self.edges.difference_update(new_edges)
        self.vertices.difference_update(new_vertices)
        self.uncovered.update(covered)


def _completion_and_flags(
    comp: _Component, state: _PartialTree, terminals, meter
) -> Tuple[Set[int], Dict[Vertex, bool]]:
    """Lemma 28 completion restricted to ``C`` + bridge flags.

    Returns the spanning tree of ``G[C]`` containing ``T ∩ C`` (used both
    for the uniqueness flags and, extended by terminal edges, as the leaf
    output) and ``flag[v]`` = "the ``V(T)``-``v`` path inside it is
    bridge-only in ``G[C]``".
    """
    interior_required = [e for e in state.edges if comp.graph_c.has_edge_id(e)]
    spanning = spanning_tree_edges(comp.graph_c, required=interior_required, meter=meter)
    adjacency: Dict[Vertex, List[Tuple[int, Vertex]]] = {}
    for eid in spanning:
        u, v = comp.graph_c.endpoints(eid)
        adjacency.setdefault(u, []).append((eid, v))
        adjacency.setdefault(v, []).append((eid, u))
    sources = [v for v in state.vertices if v in comp.vertices]
    flag: Dict[Vertex, bool] = {}
    stack: List[Vertex] = []
    for v in sources:
        flag[v] = True
        stack.append(v)
    while stack:
        v = stack.pop()
        for eid, u in adjacency.get(v, ()):
            if meter is not None:
                meter.tick()
            if u in flag:
                continue
            flag[u] = flag[v] and (eid in comp.bridges_c)
            stack.append(u)
    return spanning, flag


def _uf_find(parent: Dict[int, int], x: int) -> int:
    """Dict union-find find with path compression (lazy insertion)."""
    root = parent.setdefault(x, x)
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def _fast_completion_and_flags(
    comp: _Component, state: _PartialTree, n_space: int, meter
):
    """Kernel version of :func:`_completion_and_flags`.

    The spanning scan runs on the ``G[C]`` kernel in the same global
    edge order (identical chosen set), and the BFS bridge flags become
    an inline union-find over the spanning tree's bridge edges: paths in
    a tree are unique, so "the ``V(T)``-``v`` path is bridge-only"
    equals "``v`` is bridge-connected to ``V(T) ∩ C``" — exactly the
    argument :func:`repro.core.steiner_tree._fast_completion_branch_terminal`
    uses.  Returns ``(spanning, flag_of)`` with ``flag_of`` a callable.
    """
    kc = comp.kernel_c(n_space)
    interior_required = [e for e in state.edges if kc.has_edge_id(e)]
    spanning, _forest_parent = fast_spanning_forest(
        kc, required=interior_required, meter=meter
    )
    eu, esum = kc._eu, kc._esum
    bridges = comp.bridges_c
    parent: Dict[int, int] = {}
    ops = 0
    for eid in spanning:
        ops += 1
        if eid not in bridges:
            continue
        u = eu[eid]
        ru = _uf_find(parent, u)
        rv = _uf_find(parent, esum[eid] - u)
        if ru != rv:
            parent[ru] = rv
    anchor = -1  # vertex ids are non-negative; safe synthetic root
    parent[anchor] = anchor
    comp_vertices = comp.vertices
    for v in state.vertices:
        if v not in comp_vertices:
            continue
        rv = _uf_find(parent, v)
        ra = _uf_find(parent, anchor)
        if rv != ra:
            parent[rv] = ra
    if meter is not None and ops:
        meter.tick(ops)

    def flag_of(v) -> bool:
        return _uf_find(parent, v) == _uf_find(parent, anchor)

    return spanning, flag_of


def _fast_leaf_completion(
    comp: _Component,
    state: _PartialTree,
    terminals,
    spanning: Set[int],
    n_space: int,
    meter,
) -> Solution:
    """Kernel version of :func:`_leaf_completion` (same fixed point)."""
    kw = comp.kernel(n_space)
    edges = set(spanning)
    terminal_set = set(terminals)
    covered_edge: Dict[Vertex, int] = {}
    eu, esum = kw._eu, kw._esum
    for eid in state.edges:
        u = eu[eid]
        v = esum[eid] - u
        if u in terminal_set:
            covered_edge[u] = eid
        if v in terminal_set:
            covered_edge[v] = eid
    for w in terminals:
        if w in state.vertices:
            edges.add(covered_edge[w])
        else:
            eid, _other = comp.terminal_edges[w][0]
            edges.add(eid)
    pruned = fast_prune_non_terminal_leaves(kw, edges, terminals, meter=meter)
    return frozenset(pruned)


def _leaf_completion(
    comp: _Component, state: _PartialTree, terminals, spanning: Set[int], meter
) -> Solution:
    """Assemble the unique minimal terminal Steiner tree at a leaf node."""
    edges = set(spanning)
    terminal_set = set(terminals)
    covered_edge: Dict[Vertex, int] = {}
    for eid in state.edges:
        u, v = comp.work_graph.endpoints(eid)
        if u in terminal_set:
            covered_edge[u] = eid
        if v in terminal_set:
            covered_edge[v] = eid
    for w in terminals:
        if w in state.vertices:
            # covered terminal: keep its (unique) tree edge
            edges.add(covered_edge[w])
        else:
            # uncovered terminal at a leaf node: its attachment is forced
            eid, _other = comp.terminal_edges[w][0]
            edges.add(eid)
    pruned = prune_non_terminal_leaves(comp.work_graph, edges, terminals, meter=meter)
    return frozenset(pruned)


def terminal_steiner_events(
    graph: Graph,
    terminals: Sequence[Vertex],
    meter=None,
    improved: bool = True,
    backend: str = "object",
) -> Iterator[Event]:
    """Event stream of the terminal-Steiner enumeration-tree traversal.

    ``backend="fast"`` keeps the node logic (component analysis,
    completions, flags — all well-defined per node) and swaps the path
    enumerations onto one compiled kernel per valid component, masking
    the terminals outside each query instead of rebuilding
    ``G[C ∪ {w}]`` subcopies.
    """
    check_backend(backend)
    fast = backend == "fast"
    if fast:
        fg, index = compile_undirected(graph)
        graph = fg  # FastGraph implements the Graph protocol
        terminals = map_query_vertices(index, terminals)
    ordered = _validate(graph, terminals)

    if len(ordered) == 2:
        # |W| = 2: identical to s-t path enumeration (paper, §5.1).
        node = 0
        yield (DISCOVER, node, 0)
        if fast:
            two_paths = fast_enumerate_st_paths_undirected(
                graph, ordered[0], ordered[1], meter=meter
            )
        else:
            two_paths = enumerate_st_paths_undirected(
                graph, ordered[0], ordered[1], meter=meter
            )
        for path in two_paths:
            if len(path.arcs) == 0:
                continue
            yield (SOLUTION, frozenset(path.arcs))
        yield (EXAMINE, node, 0)
        return

    components = [
        _Component(graph, comp, ordered, meter)
        for comp in valid_components(graph, ordered, meter=meter)
    ]
    if not components:
        return

    node_counter = 0
    w0, w1 = ordered[0], ordered[1]
    yield (DISCOVER, node_counter, 0)

    for comp in components:
        state = _PartialTree(ordered)

        def node_action() -> Tuple[str, object]:
            if not state.uncovered:
                return ("leaf", frozenset(state.edges))
            if not improved:
                for w in ordered:
                    if w in state.uncovered:
                        return ("branch", w)
                raise AssertionError("unreachable")
            if fast:
                spanning, flag_of = _fast_completion_and_flags(
                    comp, state, graph.n_space, meter
                )
            else:
                spanning, flag = _completion_and_flags(comp, state, ordered, meter)
                flag_of = lambda v: flag.get(v, True)  # noqa: E731
            for w in ordered:
                if w not in state.uncovered:
                    continue
                edges_into_c = comp.terminal_edges[w]
                if len(edges_into_c) >= 2:
                    return ("branch", w)
                eid, v = edges_into_c[0]
                if not flag_of(v):
                    return ("branch", w)
            if fast:
                return (
                    "leaf",
                    _fast_leaf_completion(
                        comp, state, ordered, spanning, graph.n_space, meter
                    ),
                )
            return ("leaf", _leaf_completion(comp, state, ordered, spanning, meter))

        def child_paths(w):
            # paths from (V(T) ∩ C) to w inside G[C ∪ {w}]
            sources = frozenset(v for v in state.vertices if v in comp.vertices)
            if fast:
                return fast_enumerate_set_paths(
                    comp.kernel(graph.n_space),
                    sources,
                    (w,),
                    meter=meter,
                    excluded=[t for t in ordered if t != w],
                )
            sub = Graph()
            for v in comp.vertices:
                sub.add_vertex(v)
            for edge in comp.graph_c.edges():
                sub.add_edge(edge.u, edge.v, eid=edge.eid)
            sub.add_vertex(w)
            for eid, other in comp.terminal_edges[w]:
                sub.add_edge(w, other, eid=eid)
            return enumerate_set_paths(sub, sources, (w,), meter=meter)

        # Root children for this component: w0-w1 paths in G[C ∪ {w0, w1}].
        def root_paths():
            if fast:
                return fast_enumerate_st_paths_undirected(
                    comp.kernel(graph.n_space),
                    w0,
                    w1,
                    meter=meter,
                    excluded=[t for t in ordered if t != w0 and t != w1],
                )
            sub = Graph()
            for v in comp.vertices:
                sub.add_vertex(v)
            for edge in comp.graph_c.edges():
                sub.add_edge(edge.u, edge.v, eid=edge.eid)
            for w in (w0, w1):
                sub.add_vertex(w)
                for eid, other in comp.terminal_edges[w]:
                    sub.add_edge(w, other, eid=eid)
            return enumerate_st_paths_undirected(sub, w0, w1, meter=meter)

        stack: List[List[object]] = [[root_paths(), None, node_counter, 0]]
        while stack:
            frame = stack[-1]
            paths, _undo, node_id, depth = frame
            path = next(paths, None)  # type: ignore[arg-type]
            if path is None:
                if depth > 0:
                    yield (EXAMINE, node_id, depth)
                stack.pop()
                if frame[1] is not None:
                    state.undo(frame[1])
                continue
            record = state.apply_path(path.vertices, path.arcs)
            node_counter += 1
            yield (DISCOVER, node_counter, depth + 1)
            kind, payload = node_action()
            if kind == "leaf":
                yield (SOLUTION, payload)
                yield (EXAMINE, node_counter, depth + 1)
                state.undo(record)
                continue
            stack.append([child_paths(payload), record, node_counter, depth + 1])

    yield (EXAMINE, 0, 0)


def enumerate_minimal_terminal_steiner_trees(
    graph: Graph, terminals: Sequence[Vertex], meter=None, backend: str = "object"
) -> Iterator[Solution]:
    """Enumerate all minimal terminal Steiner trees of ``(G, W)``.

    Improved branching: amortized O(n+m) per solution (Theorem 31).
    Yields frozensets of edge ids, each exactly once.

    Examples
    --------
    >>> g = Graph.from_edges([("w1", "x"), ("x", "w2"), ("x", "y"), ("y", "w2")])
    >>> sorted(sorted(s) for s in enumerate_minimal_terminal_steiner_trees(g, ["w1", "w2"]))
    [[0, 1], [0, 2, 3]]
    """
    for event in terminal_steiner_events(
        graph, terminals, meter=meter, improved=True, backend=backend
    ):
        if event[0] == SOLUTION:
            yield event[1]


def enumerate_minimal_terminal_steiner_trees_simple(
    graph: Graph, terminals: Sequence[Vertex], meter=None, backend: str = "object"
) -> Iterator[Solution]:
    """Unimproved branching (Theorem 29 bound): O(nm) delay."""
    for event in terminal_steiner_events(
        graph, terminals, meter=meter, improved=False, backend=backend
    ):
        if event[0] == SOLUTION:
            yield event[1]


def enumerate_minimal_terminal_steiner_trees_linear_delay(
    graph: Graph,
    terminals: Sequence[Vertex],
    meter=None,
    window: Optional[int] = None,
    backend: str = "object",
) -> Iterator[Solution]:
    """Theorem 31 second half: O(n+m) delay via the output-queue method."""
    events = terminal_steiner_events(
        graph, terminals, meter=meter, improved=True, backend=backend
    )
    kwargs = {} if window is None else {"window": window}
    return regulate(events, prime=graph.num_vertices, **kwargs)


def count_minimal_terminal_steiner_trees(
    graph: Graph, terminals: Sequence[Vertex]
) -> int:
    """Number of minimal terminal Steiner trees (convenience wrapper)."""
    return sum(1 for _ in enumerate_minimal_terminal_steiner_trees(graph, terminals))

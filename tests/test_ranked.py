"""Ranked enumeration extension (approximate weight order, exact top-k)."""

import random

import pytest

from repro.core.optimum import tree_weight, uniform_weights
from repro.core.ranked import (
    enumerate_approximately_by_weight,
    k_lightest_minimal_steiner_trees,
    sortedness_defect,
    weight_of_optimum,
)
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.graphs.generators import grid_graph, random_connected_graph, random_terminals
from repro.graphs.graph import Graph

from conftest import random_simple_graph


def _weights(graph, seed):
    rng = random.Random(seed)
    return {e: rng.choice([0.5, 1.0, 2.0, 4.0]) for e in graph.edge_ids()}


class TestApproximateOrder:
    def test_same_solution_set(self):
        g = grid_graph(3, 3)
        weights = _weights(g, 1)
        ranked = list(
            enumerate_approximately_by_weight(g, [(0, 0), (2, 2)], weights, lookahead=8)
        )
        plain = set(enumerate_minimal_steiner_trees(g, [(0, 0), (2, 2)]))
        assert {sol for _w, sol in ranked} == plain
        for w, sol in ranked:
            assert w == pytest.approx(tree_weight(weights, sol))

    def test_defect_bounded_by_lookahead(self):
        g = grid_graph(3, 4)
        weights = _weights(g, 2)
        for lookahead in (1, 4, 16):
            stream = [
                w
                for w, _sol in enumerate_approximately_by_weight(
                    g, [(0, 0), (2, 3)], weights, lookahead=lookahead
                )
            ]
            assert sortedness_defect(stream) <= max(
                0, len(stream) - 1
            )  # sanity
            # bigger lookahead = no worse order
        small = [
            w
            for w, _ in enumerate_approximately_by_weight(
                g, [(0, 0), (2, 3)], weights, lookahead=1
            )
        ]
        big = [
            w
            for w, _ in enumerate_approximately_by_weight(
                g, [(0, 0), (2, 3)], weights, lookahead=len(small) + 1
            )
        ]
        assert sortedness_defect(big) == 0  # full lookahead = fully sorted
        assert sortedness_defect(big) <= sortedness_defect(small)

    def test_first_emission_close_to_optimum_with_full_lookahead(self):
        g = random_connected_graph(12, 8, 3)
        terminals = random_terminals(g, 3, 4)
        weights = _weights(g, 5)
        stream = list(
            enumerate_approximately_by_weight(
                g, terminals, weights, lookahead=10**6
            )
        )
        assert stream[0][0] == pytest.approx(
            weight_of_optimum(g, terminals, weights)
        )

    def test_invalid_lookahead(self):
        g = Graph.from_edges([("a", "b")])
        with pytest.raises(ValueError):
            list(enumerate_approximately_by_weight(g, ["a", "b"], {}, lookahead=0))


class TestTopK:
    def test_exact_top_k(self):
        rng = random.Random(911)
        for _ in range(25):
            g = random_simple_graph(rng, max_n=7)
            t = rng.randint(2, min(3, g.num_vertices))
            terminals = rng.sample(range(g.num_vertices), t)
            weights = _weights(g, rng.randint(0, 99))
            everything = sorted(
                tree_weight(weights, s)
                for s in enumerate_minimal_steiner_trees(g, terminals)
            )
            k = 3
            top = k_lightest_minimal_steiner_trees(g, terminals, weights, k)
            assert [w for w, _s in top] == pytest.approx(everything[:k])

    def test_top_zero(self):
        g = Graph.from_edges([("a", "b")])
        assert k_lightest_minimal_steiner_trees(g, ["a", "b"], {}, 0) == []

    def test_top_k_matches_optimum(self):
        g = random_connected_graph(14, 10, 8)
        terminals = random_terminals(g, 3, 9)
        weights = uniform_weights(g)
        top = k_lightest_minimal_steiner_trees(g, terminals, weights, 1)
        assert top[0][0] == pytest.approx(weight_of_optimum(g, terminals, weights))


class TestSortednessDefect:
    def test_sorted_stream_has_zero_defect(self):
        assert sortedness_defect([1, 2, 3, 4]) == 0

    def test_single_swap(self):
        assert sortedness_defect([2, 1, 3]) == 1

    def test_element_far_from_home(self):
        assert sortedness_defect([5, 1, 2, 3, 0]) == 4

"""Replay the pinned regression corpus against both backends.

Every instance in ``tests/corpus/*.json`` is small and adversarial —
bridges, parallel edges, weight ties, disconnected terminals — and is
replayed on every run through the layers the backends share: core
Steiner enumeration, ranked enumeration (approximate and top-k), the
ZDD construction, and (for keyword corpora) K-fragment search.  Each
file pins the expected solution count, so the corpus also guards
against both backends drifting wrong *together* — the failure mode
cross-validation alone cannot see.

Hypothesis counterexamples get promoted into the corpus (one JSON file
each) so they are re-checked deterministically forever; see
``tests/corpus/README.md``.
"""

import pytest

from conftest import load_corpus

CORPUS = load_corpus()
IDS = [case.name for case in CORPUS]


@pytest.mark.parametrize("case", CORPUS, ids=IDS)
def test_steiner_streams_identical_and_count_pinned(case):
    from repro.core.steiner_tree import enumerate_minimal_steiner_trees

    reference = list(
        enumerate_minimal_steiner_trees(case.graph, case.terminals, backend="object")
    )
    candidate = list(
        enumerate_minimal_steiner_trees(case.graph, case.terminals, backend="fast")
    )
    assert reference == candidate
    assert len(reference) == case.expected_solutions


@pytest.mark.parametrize("case", CORPUS, ids=IDS)
def test_ranked_streams_identical(case):
    from repro.core.ranked import (
        enumerate_approximately_by_weight,
        k_lightest_minimal_steiner_trees,
    )

    for lookahead in (1, 3, 1000):
        reference = list(
            enumerate_approximately_by_weight(
                case.graph, case.terminals, case.weights,
                lookahead=lookahead, backend="object",
            )
        )
        candidate = list(
            enumerate_approximately_by_weight(
                case.graph, case.terminals, case.weights,
                lookahead=lookahead, backend="fast",
            )
        )
        assert reference == candidate
        assert len(reference) == case.expected_solutions
    assert k_lightest_minimal_steiner_trees(
        case.graph, case.terminals, case.weights, 5, backend="object"
    ) == k_lightest_minimal_steiner_trees(
        case.graph, case.terminals, case.weights, 5, backend="fast"
    )


@pytest.mark.parametrize("case", CORPUS, ids=IDS)
def test_vector_streams_identical_and_count_pinned(case):
    """The vector backend replays the adversarial corpus byte-for-byte:
    bridges, parallel edges and weight ties are exactly the shapes the
    bitset sweeps could get wrong silently."""
    from repro.core.ranked import enumerate_approximately_by_weight
    from repro.core.steiner_tree import enumerate_minimal_steiner_trees
    from repro.graphs.vecgraph import vec_available

    if not vec_available():
        pytest.skip("numpy unavailable")
    reference = list(
        enumerate_minimal_steiner_trees(case.graph, case.terminals, backend="object")
    )
    candidate = list(
        enumerate_minimal_steiner_trees(case.graph, case.terminals, backend="vector")
    )
    assert reference == candidate
    assert len(reference) == case.expected_solutions
    for lookahead in (1, 1000):
        assert list(
            enumerate_approximately_by_weight(
                case.graph, case.terminals, case.weights,
                lookahead=lookahead, backend="vector",
            )
        ) == list(
            enumerate_approximately_by_weight(
                case.graph, case.terminals, case.weights,
                lookahead=lookahead, backend="object",
            )
        )


@pytest.mark.parametrize("case", CORPUS, ids=IDS)
def test_ranked_order_contract_holds(case):
    """With full lookahead the stream is exactly sorted by RANKED ORDER
    (weight, then canonical edge-id tuple) on both backends."""
    from repro.core.backend import ranked_key
    from repro.core.ranked import enumerate_approximately_by_weight

    for backend in ("object", "fast"):
        stream = list(
            enumerate_approximately_by_weight(
                case.graph, case.terminals, case.weights,
                lookahead=10**6, backend=backend,
            )
        )
        keys = [ranked_key(w, sol) for w, sol in stream]
        assert keys == sorted(keys)


@pytest.mark.parametrize("case", CORPUS, ids=IDS)
def test_zdd_identical_and_count_pinned(case):
    from repro.zdd.steiner import build_steiner_tree_zdd

    reference = build_steiner_tree_zdd(case.graph, case.terminals, backend="object")
    candidate = build_steiner_tree_zdd(case.graph, case.terminals, backend="fast")
    assert reference.count() == candidate.count() == case.expected_solutions
    assert list(reference) == list(candidate)


@pytest.mark.parametrize(
    "case", [c for c in CORPUS if c.query], ids=[c.name for c in CORPUS if c.query]
)
def test_kfragment_streams_identical_and_count_pinned(case):
    from repro.datagraph.kfragments import undirected_kfragments
    from repro.datagraph.ranked import ranked_kfragments

    dg = case.datagraph()
    reference = list(undirected_kfragments(dg, case.query, backend="object"))
    candidate = list(undirected_kfragments(dg, case.query, backend="fast"))
    assert reference == candidate
    assert len(reference) == case.expected_fragments
    assert list(ranked_kfragments(dg, case.query, lookahead=2)) == list(
        ranked_kfragments(dg, case.query, lookahead=2, backend="fast")
    )

"""R-rank — ranked enumeration on the kernel backend (the [25] layer).

Claims exercised:

* the look-ahead ranked stream inherits the underlying enumerator's
  linear delay (per-solution heap overhead is O(log L));
* ``backend="fast"`` produces the byte-identical ranked stream —
  including tie order, which follows the RANKED ORDER contract of
  ``repro.core.backend`` — at ≥2x aggregate throughput.

Run directly (``PYTHONPATH=src python benchmarks/bench_ranked.py``) for
the gated backend comparison: streams are verified identical per
instance before timing, per-instance speedups are printed, and the run
**fails** if the aggregate (max of geometric mean and total-time ratio)
drops below 2x (override via ``BENCH_BACKEND_GATE``).
"""

from __future__ import annotations

import os
import random
import sys

import pytest

from repro.bench.harness import (
    compare_backends,
    print_table,
    summarize_backend_comparisons,
)
from repro.bench.workloads import (
    steiner_tree_size_sweep,
    steiner_tree_terminal_sweep,
)
from repro.core.ranked import (
    enumerate_approximately_by_weight,
    k_lightest_minimal_steiner_trees,
)
from repro.engine.jobs import EnumerationJob

from benchutil import make_drainer

LIMIT = 300  # ranked solutions per instance
LOOKAHEAD = 64


def _tie_heavy_weights(graph, seed: int = 7):
    """Weights from a 3-value set: ranked ties on nearly every level."""
    rng = random.Random(seed)
    return {e: rng.choice([1.0, 2.0, 3.0]) for e in graph.edge_ids()}


def standard_instances():
    """The T1-st instances in the engine's integer normal form, each with
    deterministic tie-heavy weights (the production ranking shape)."""
    out = []
    for inst in steiner_tree_size_sweep() + steiner_tree_terminal_sweep():
        job = EnumerationJob.steiner_tree(inst.graph, inst.terminals)
        indexed, _labels, index_of = job.instantiate_indexed()
        terminals = [index_of[t] for t in job.terminals]
        out.append((inst.name, indexed, terminals, _tie_heavy_weights(indexed)))
    return out


@pytest.mark.parametrize(
    "case", standard_instances()[:4], ids=lambda c: c[0]
)
def test_ranked_stream(benchmark, case):
    name, graph, terminals, weights = case
    count = benchmark(
        make_drainer(
            lambda: enumerate_approximately_by_weight(
                graph, terminals, weights, lookahead=LOOKAHEAD, backend="fast"
            ),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize(
    "case", standard_instances()[:2], ids=lambda c: c[0]
)
def test_ranked_topk(benchmark, case):
    name, graph, terminals, weights = case
    top = benchmark(
        lambda: k_lightest_minimal_steiner_trees(
            graph, terminals, weights, 10, backend="fast"
        )
    )
    assert top


# ----------------------------------------------------------------------
# backend comparison (the `python benchmarks/bench_ranked.py` mode)
# ----------------------------------------------------------------------
def run_backend_comparison(out=sys.stdout, min_speedup: float = None):
    """Compare ranked backends; assert the aggregate speedup gate."""
    if min_speedup is None:
        min_speedup = float(os.environ.get("BENCH_BACKEND_GATE", "2.0"))
    comparisons = []
    for name, graph, terminals, weights in standard_instances():
        comparisons.append(
            compare_backends(
                name,
                graph.size,
                lambda backend, g=graph, w=terminals, wt=weights: (
                    enumerate_approximately_by_weight(
                        g, w, wt, lookahead=LOOKAHEAD, backend=backend
                    )
                ),
                limit=LIMIT,
            )
        )
    geo, total = summarize_backend_comparisons(comparisons)
    print_table(
        "R-rank backend comparison (byte-identical ranked streams, tie-heavy weights)",
        ("instance", "n+m", "solutions", "object s", "fast s", "speedup"),
        [
            (c.label, c.size, c.solutions, c.object_seconds, c.fast_seconds, c.speedup)
            for c in comparisons
        ],
        out=out,
    )
    print(
        f"aggregate speedup: geomean {geo:.2f}x, total-time {total:.2f}x "
        f"(gate: >= {min_speedup:.1f}x)",
        file=out,
    )
    if max(geo, total) < min_speedup:
        raise AssertionError(
            f"fast ranked backend speedup {max(geo, total):.2f}x below the "
            f"{min_speedup:.1f}x gate"
        )
    return comparisons


if __name__ == "__main__":
    run_backend_comparison()

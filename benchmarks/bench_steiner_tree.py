"""T1-st — minimal Steiner tree enumeration (Table 1 row "Steiner Tree").

Claims exercised:

* amortized cost per solution is O(n+m) for the improved algorithm
  (Theorem 17) — the normalized column stays flat across a 16x size sweep;
* the prior-work-shaped baseline pays an extra |W| factor, so on the
  terminal sweep the baseline's per-solution cost grows with t while this
  work's stays flat (Table 1: O(m(|T_i|+|T_{i-1}|)) vs O(n+m));
* the integer-kernel backend (``backend="fast"``) produces the
  byte-identical solution stream at ≥2× aggregate throughput.

Run directly (``PYTHONPATH=src python benchmarks/bench_steiner_tree.py``)
for the backend comparison on the standard instances: it verifies the
streams match, prints per-instance speedups, and **fails** if the
aggregate speedup drops below 2×.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.bench.harness import (
    compare_backends,
    fit_linearity,
    measure_enumeration,
    print_table,
    summarize_backend_comparisons,
)
from repro.bench.workloads import (
    FORCED_TAIL_SWEEP,
    forced_tail_instance,
    steiner_tree_size_sweep,
    steiner_tree_terminal_sweep,
)
from repro.core.baselines import kimelfeld_sagiv_style_steiner_trees
from repro.core.steiner_tree import (
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_linear_delay,
)
from repro.engine.jobs import EnumerationJob

from benchutil import make_drainer

LIMIT = 300  # solutions per instance: plenty to expose per-solution cost


@pytest.mark.parametrize("inst", steiner_tree_size_sweep(), ids=lambda i: i.name)
def test_improved_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_steiner_trees(inst.graph, inst.terminals),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize("inst", steiner_tree_size_sweep()[:3], ids=lambda i: i.name)
def test_baseline_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: kimelfeld_sagiv_style_steiner_trees(inst.graph, inst.terminals),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize("inst", steiner_tree_size_sweep()[:3], ids=lambda i: i.name)
def test_linear_delay_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_steiner_trees_linear_delay(
                inst.graph, inst.terminals
            ),
            LIMIT,
        )
    )
    assert count > 0


def test_size_scaling_table(benchmark):
    """Amortized ops/solution scale linearly with n+m (Theorem 17)."""
    rows, sizes, costs = [], [], []
    for inst in steiner_tree_size_sweep():
        m = measure_enumeration(
            inst.name,
            inst.size,
            lambda meter, i=inst: enumerate_minimal_steiner_trees(
                i.graph, i.terminals, meter=meter
            ),
            limit=LIMIT,
        )
        sizes.append(m.size)
        costs.append(m.amortized_ops)
        rows.append(
            (m.label, m.size, m.solutions, int(m.amortized_ops), m.normalized_amortized)
        )
    exponent, r2 = fit_linearity(sizes, costs)
    print()
    print_table(
        "T1-st: amortized ops/solution vs n+m (this work)",
        ("instance", "n+m", "solutions", "ops/solution", "normalized"),
        rows,
    )
    print(f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); paper predicts 1.0")
    assert 0.6 <= exponent <= 1.4
    benchmark(lambda: None)


def test_terminal_scaling_table(benchmark):
    """Table 1's headline separation: the prior work's delay carries a
    |W|·|T_i| factor, this work's is O(n+m).

    The forced-tail family makes the factor bite: unimproved branching
    pays one path-enumeration round per forced terminal between
    solutions, so its normalized max delay grows linearly with the tail,
    while the improved algorithm's stays flat (Lemma 16's unique-
    completion shortcut)."""
    rows = []
    ours_norm, base_norm = [], []
    for tail in FORCED_TAIL_SWEEP:
        inst = forced_tail_instance(6, tail)
        m_ours = measure_enumeration(
            inst.name,
            inst.size,
            lambda meter, i=inst: enumerate_minimal_steiner_trees(
                i.graph, i.terminals, meter=meter
            ),
        )
        m_base = measure_enumeration(
            inst.name,
            inst.size,
            lambda meter, i=inst: kimelfeld_sagiv_style_steiner_trees(
                i.graph, i.terminals, meter=meter
            ),
        )
        ours_norm.append(m_ours.normalized_max_delay)
        base_norm.append(m_base.normalized_max_delay)
        rows.append(
            (
                tail + 1,  # |W| includes the diamond-side terminal
                m_ours.solutions,
                m_ours.max_delay_ops,
                m_base.max_delay_ops,
                m_ours.normalized_max_delay,
                m_base.normalized_max_delay,
            )
        )
    print()
    print_table(
        "T1-st: max delay vs |W| on forced-tail instances "
        "(this work vs KS-shaped baseline)",
        ("|W|", "solutions", "ours (ops)", "baseline (ops)", "ours/(n+m)", "baseline/(n+m)"),
        rows,
    )
    # ours stays flat across a 16x terminal sweep; baseline grows steeply
    assert max(ours_norm) / min(ours_norm) < 2.5
    assert base_norm[-1] / base_norm[0] > 3
    benchmark(lambda: None)


# ----------------------------------------------------------------------
# backend comparison (the `python benchmarks/bench_steiner_tree.py` mode)
# ----------------------------------------------------------------------
def standard_instances():
    """The standard T1-st instances, in the engine's integer normal form.

    Relabeling to ``0..n-1`` is what the engine does before every run
    (``instantiate_indexed``); it is also the precondition for the fast
    backend's byte-identical-stream guarantee, so the comparison is
    exactly the production configuration.
    """
    out = []
    for inst in steiner_tree_size_sweep() + steiner_tree_terminal_sweep():
        job = EnumerationJob.steiner_tree(inst.graph, inst.terminals)
        indexed, _labels, index_of = job.instantiate_indexed()
        terminals = [index_of[t] for t in job.terminals]
        out.append((inst.name, indexed, terminals))
    return out


def run_backend_comparison(out=sys.stdout, min_speedup: float = None):
    """Compare backends on the standard instances; assert the aggregate.

    Streams must be byte-identical per instance (checked before any
    timing); the aggregate fast-vs-object speedup (the geometric mean or
    the total-time ratio, whichever is larger) must reach
    ``min_speedup`` (default 2.0; override via the
    ``BENCH_BACKEND_GATE`` env var, e.g. for shared CI runners whose
    wall-clock ratios are noisier than dedicated hardware's).
    """
    if min_speedup is None:
        min_speedup = float(os.environ.get("BENCH_BACKEND_GATE", "2.0"))
    comparisons = []
    for name, graph, terminals in standard_instances():
        comparisons.append(
            compare_backends(
                name,
                graph.size,
                lambda backend, g=graph, w=terminals: enumerate_minimal_steiner_trees(
                    g, w, backend=backend
                ),
                limit=LIMIT,
            )
        )
    geo, total = summarize_backend_comparisons(comparisons)
    print_table(
        "T1-st backend comparison (byte-identical streams; best-of-3 interleaved)",
        ("instance", "n+m", "solutions", "object s", "fast s", "speedup"),
        [
            (c.label, c.size, c.solutions, c.object_seconds, c.fast_seconds, c.speedup)
            for c in comparisons
        ],
        out=out,
    )
    print(
        f"aggregate speedup: geomean {geo:.2f}x, total-time {total:.2f}x "
        f"(gate: >= {min_speedup:.1f}x)",
        file=out,
    )
    if max(geo, total) < min_speedup:
        raise AssertionError(
            f"fast backend speedup {max(geo, total):.2f}x below the "
            f"{min_speedup:.1f}x gate"
        )
    return comparisons


if __name__ == "__main__":
    run_backend_comparison()

"""Uno's output-queue method (Theorem 20), event-driven formulation.

The improved enumeration tree guarantees *amortized* O(n+m) work per
solution, but solutions cluster at leaves: between two outputs the
traversal may climb and descend many internal nodes, making the raw delay
Ω(|W|(n+m)).  Uno's output-queue method fixes this by buffering the first
few solutions (the paper primes with ``n``) and thereafter releasing one
buffered solution per bounded window of traversal events.  Because every
internal node of the improved tree has ≥ 2 children, leaves (each carrying
one fresh solution) appear at least once per constant-length window of the
Euler tour, so the buffer never runs dry after priming (the paper's rules
R1–R3 / Lemma 18 make this precise).

Following DESIGN.md §5, we implement the *event-driven* formulation: the
enumerator emits ``discover``/``examine``/``solution`` events and
:func:`regulate` releases one solution per ``window`` events once primed.
The observable guarantee is identical — the maximum number of events (each
costing O(n+m)) between consecutive outputs is bounded — and it is what
the AB-queue ablation benchmark measures directly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator

from repro.enumeration.events import SOLUTION, Event

#: Default number of traversal events per released solution.  The paper's
#: analysis (Theorem 20) shows at least one solution is found per ~20-node
#: stretch of the Euler tour of the improved tree; 4 is the tight constant
#: for binary trees (the worst improved tree) and is validated empirically
#: by the AB-queue ablation.
DEFAULT_WINDOW = 4


def regulate(
    events: Iterable[Event],
    prime: int,
    window: int = DEFAULT_WINDOW,
) -> Iterator[Any]:
    """Re-time an event stream into a steady solution stream.

    Parameters
    ----------
    events:
        Event stream from an enumerator running in event mode.
    prime:
        Number of solutions to buffer before the first release (the paper
        uses ``n``).  If the enumeration has fewer solutions than
        ``prime``, everything is flushed at the end — the delay guarantee
        is vacuous but no solution is lost.
    window:
        Release one solution per ``window`` consumed events once primed.

    Yields
    ------
    Solutions, each exactly once, in a possibly re-timed order (solutions
    are released FIFO; the *set* of solutions is unchanged).
    """
    if prime < 1:
        prime = 1
    if window < 1:
        window = 1
    buffer: deque = deque()
    primed = False
    events_since_release = 0
    for event in events:
        if event[0] == SOLUTION:
            # Solutions refill the buffer but do not advance the release
            # window: on the improved tree, one solution arrives per
            # ~window traversal events, so counting solutions too would
            # make releases outpace arrivals and starve the buffer.
            buffer.append(event[1])
            if not primed and len(buffer) >= prime:
                primed = True
                events_since_release = 0
            continue
        events_since_release += 1
        if primed and buffer and events_since_release >= window:
            events_since_release = 0
            yield buffer.popleft()
    while buffer:
        yield buffer.popleft()


class RegulatorProbe:
    """Wraps :func:`regulate` and records event-gaps between outputs.

    ``max_gap`` is the maximum number of events between two consecutive
    released solutions *after priming* — the quantity Theorem 20 bounds by
    a constant (each event costs O(n+m), so delay = O(n+m)).
    """

    def __init__(self, prime: int, window: int = DEFAULT_WINDOW) -> None:
        self.prime = prime
        self.window = window
        self.gaps: list = []
        self.priming_events = 0

    def run(self, events: Iterable[Event]) -> Iterator[Any]:
        """Drive the regulator over ``events``, recording gaps; yield
        solutions."""
        if self.prime < 1:
            self.prime = 1
        buffer: deque = deque()
        primed = False
        since_release = 0
        for event in events:
            if event[0] == SOLUTION:
                buffer.append(event[1])
                if not primed and len(buffer) >= self.prime:
                    primed = True
                    since_release = 0
                continue
            if not primed:
                self.priming_events += 1
            since_release += 1
            if primed and buffer and since_release >= self.window:
                self.gaps.append(since_release)
                since_release = 0
                yield buffer.popleft()
        while buffer:
            yield buffer.popleft()

    @property
    def max_gap(self) -> int:
        """Worst post-priming event gap between two outputs."""
        return max(self.gaps) if self.gaps else 0

"""Tests for the terminal / internal Steiner ZDD variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.internal_steiner import (
    enumerate_internal_steiner_trees_brute,
    hamiltonian_path_instance,
    has_hamiltonian_st_path,
)
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.exceptions import InvalidInstanceError
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_connected_graph,
    random_terminals,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.zdd.steiner import (
    build_internal_steiner_tree_zdd,
    build_steiner_tree_zdd,
    build_terminal_steiner_tree_zdd,
)


class TestTerminalVariant:
    def test_star_instance(self):
        g = Graph.from_edges([(0, 1), (1, 2), (1, 3)])
        z = build_terminal_steiner_tree_zdd(g, [0, 2, 3])
        assert sorted(sorted(s) for s in z) == [[0, 1, 2]]

    def test_terminal_cannot_be_internal(self):
        # path 0-1-2 with terminals 0,1,2: 1 must be internal -> empty
        g = path_graph(3)
        assert build_terminal_steiner_tree_zdd(g, [0, 1, 2]).is_empty()

    def test_two_terminals_are_st_paths(self):
        g = cycle_graph(5)
        z = build_terminal_steiner_tree_zdd(g, [0, 2])
        assert z.count() == 2  # both arcs of the cycle

    def test_single_terminal_rejected(self):
        g = path_graph(2)
        with pytest.raises(InvalidInstanceError):
            build_terminal_steiner_tree_zdd(g, [0])

    def test_subset_of_minimal_family(self):
        g = random_connected_graph(8, 8, seed=3)
        terms = random_terminals(g, 3, seed=3)
        terminal = set(build_terminal_steiner_tree_zdd(g, terms))
        minimal = set(build_steiner_tree_zdd(g, terms))
        assert terminal <= minimal

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_direct_enumerator(self, seed):
        g = random_connected_graph(8, 7 + seed % 4, seed=seed)
        terms = random_terminals(g, 3, seed=seed)
        compiled = set(build_terminal_steiner_tree_zdd(g, terms))
        direct = {
            frozenset(s)
            for s in enumerate_minimal_terminal_steiner_trees(g, terms)
        }
        assert compiled == direct


class TestInternalVariant:
    def test_single_internal_terminal(self):
        g = path_graph(3)
        z = build_internal_steiner_tree_zdd(g, [1])
        assert sorted(sorted(s) for s in z) == [[0, 1]]

    def test_leaf_terminal_infeasible(self):
        # degree-1 terminal can never be internal
        g = path_graph(3)
        assert build_internal_steiner_tree_zdd(g, [0]).is_empty()

    def test_no_terminals_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_internal_steiner_tree_zdd(path_graph(2), [])

    def test_star_center(self):
        g = star_graph(4)
        z = build_internal_steiner_tree_zdd(g, ["c"])
        # trees containing the center with center degree >= 2: pick any
        # 2,3,4 of the 4 spokes: C(4,2)+C(4,3)+C(4,4) = 11
        assert z.count() == 11

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        g = random_connected_graph(6, 4 + seed % 3, seed=seed)
        terms = random_terminals(g, 2, seed=seed)
        compiled = set(build_internal_steiner_tree_zdd(g, terms))
        brute = set(enumerate_internal_steiner_trees_brute(g, terms))
        assert compiled == brute

    def test_theorem_37_reduction(self):
        """Internal Steiner tree non-emptiness == Hamiltonian s-t path
        under the paper's W = V \\ {s, t} reduction; the compiled family
        witnesses both directions on small instances."""
        for seed in range(6):
            g = random_connected_graph(6, 5, seed=seed)
            s, t = 0, 5
            reduced_graph, terminals = hamiltonian_path_instance(g, s, t)
            z = build_internal_steiner_tree_zdd(reduced_graph, terminals)
            assert (not z.is_empty()) == has_hamiltonian_st_path(g, s, t)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=7),
    extra=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_terminal_variant_property(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    terms = random_terminals(g, min(3, n), seed=seed)
    if len(terms) < 2:
        return
    compiled = set(build_terminal_steiner_tree_zdd(g, terms))
    direct = {
        frozenset(s) for s in enumerate_minimal_terminal_steiner_trees(g, terms)
    }
    assert compiled == direct

"""Ops surface: latency histograms, counters and the access log.

:class:`MetricsRegistry` is the single sink the server feeds — one
:class:`LatencyHistogram` per request kind, a flat counter table, and a
structured access-log line per request on the ``repro.frontdoor.access``
logger (one JSON object per line, so operators can tail it straight
into their log pipeline).  ``GET /metrics`` renders the registry
together with the tenant usage table, cache/store counters and
scheduler state.
"""

from __future__ import annotations

import json
import logging
import threading
from typing import Any, Dict, Optional

#: Upper bucket bounds in milliseconds (log-ish spacing) + overflow.
BUCKET_BOUNDS_MS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000,
)

access_logger = logging.getLogger("repro.frontdoor.access")


class LatencyHistogram:
    """Fixed-bucket latency histogram (bounds in milliseconds).

    Examples
    --------
    >>> h = LatencyHistogram()
    >>> h.observe(0.003); h.observe(0.300)
    >>> h.count, h.as_dict()["buckets"]["<=5ms"]
    (2, 1)
    """

    __slots__ = ("counts", "count", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        """Record one observation of ``seconds`` wall time."""
        ms = seconds * 1000.0
        self.count += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for i, bound in enumerate(BUCKET_BOUNDS_MS):
            if ms <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering with labeled buckets."""
        buckets = {
            f"<={bound}ms": self.counts[i]
            for i, bound in enumerate(BUCKET_BOUNDS_MS)
        }
        buckets[f">{BUCKET_BOUNDS_MS[-1]}ms"] = self.counts[-1]
        mean = self.sum_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe sink for per-kind latencies + named counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._counters: Dict[str, int] = {}

    def observe(self, kind: str, seconds: float) -> None:
        """Record one request of ``kind`` taking ``seconds``."""
        with self._lock:
            hist = self._latency.get(kind)
            if hist is None:
                hist = self._latency[kind] = LatencyHistogram()
            hist.observe(seconds)

    def inc(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def access(
        self,
        method: str,
        path: str,
        status: int,
        seconds: float,
        tenant: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """Emit one structured access-log line (JSON object per line)."""
        record = {
            "method": method,
            "path": path,
            "status": status,
            "ms": round(seconds * 1000.0, 3),
            "tenant": tenant,
        }
        record.update(extra)
        access_logger.info(json.dumps(record, sort_keys=True))

    def as_dict(self) -> Dict[str, Any]:
        """The histogram + counter tables for ``GET /metrics``."""
        with self._lock:
            return {
                "latency": {
                    kind: hist.as_dict()
                    for kind, hist in sorted(self._latency.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

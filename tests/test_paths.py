"""Path enumeration (Section 3): units, oracle equality, delay shape."""

import random

import pytest

from repro.enumeration.delay import CostMeter, record_metered_delays
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import gadget_chain, grid_graph, theta_graph
from repro.graphs.graph import Graph
from repro.paths.read_tarjan import (
    Path,
    build_set_path_digraph,
    enumerate_set_paths,
    enumerate_set_paths_directed,
    enumerate_st_paths,
    enumerate_st_paths_undirected,
    st_path_events,
)
from repro.paths.simple import (
    backtracking_st_paths,
    backtracking_st_paths_undirected,
    count_st_paths,
)

from conftest import random_simple_digraph, random_simple_graph


class TestPathRecord:
    def test_len_counts_arcs(self):
        assert len(Path(("a", "b"), (0,))) == 1
        assert len(Path(("a",), ())) == 0


class TestDirectedEnumeration:
    def test_no_path(self):
        d = DiGraph.from_arcs([("a", "b")], vertices=["c"])
        assert list(enumerate_st_paths(d, "b", "a")) == []
        assert list(enumerate_st_paths(d, "a", "c")) == []

    def test_trivial_path(self):
        d = DiGraph.from_arcs([("a", "b")])
        paths = list(enumerate_st_paths(d, "a", "a"))
        assert paths == [Path(("a",), ())]

    def test_missing_endpoints_yield_nothing(self):
        d = DiGraph()
        assert list(enumerate_st_paths(d, "x", "y")) == []

    def test_diamond_digraph(self):
        d = DiGraph.from_arcs([("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")])
        got = sorted(p.vertices for p in enumerate_st_paths(d, "s", "t"))
        assert got == [("s", "a", "t"), ("s", "b", "t")]

    def test_parallel_arcs_give_distinct_paths(self):
        d = DiGraph()
        d.add_arc("s", "a")
        d.add_arc("s", "a")
        d.add_arc("a", "t")
        paths = list(enumerate_st_paths(d, "s", "t"))
        assert len(paths) == 2
        assert len({p.arcs for p in paths}) == 2

    def test_matches_backtracking_on_random_digraphs(self):
        rng = random.Random(101)
        for _ in range(120):
            d = random_simple_digraph(rng, max_n=7)
            vs = list(d.vertices())
            s, t = vs[0], vs[-1]
            got = sorted(p.vertices for p in enumerate_st_paths(d, s, t))
            want = sorted(p.vertices for p in backtracking_st_paths(d, s, t, prune=False))
            assert got == want

    def test_no_duplicates_on_dense_digraph(self):
        d = DiGraph.from_arcs(
            [(u, v) for u in range(6) for v in range(6) if u != v]
        )
        paths = list(enumerate_st_paths(d, 0, 5))
        assert len(paths) == len({p.vertices for p in paths})


class TestUndirectedEnumeration:
    def test_diamond(self, diamond):
        got = sorted(p.vertices for p in enumerate_st_paths_undirected(diamond, "s", "t"))
        assert got == [("s", "a", "t"), ("s", "b", "t")]

    def test_edge_ids_reported(self, diamond):
        for p in enumerate_st_paths_undirected(diamond, "s", "t"):
            for eid, (u, v) in zip(p.arcs, zip(p.vertices, p.vertices[1:])):
                assert set(diamond.endpoints(eid)) == {u, v}

    def test_matches_backtracking_on_random_graphs(self):
        rng = random.Random(103)
        for _ in range(80):
            g = random_simple_graph(rng, max_n=7)
            got = sorted(
                p.vertices for p in enumerate_st_paths_undirected(g, 0, g.num_vertices - 1)
            )
            want = sorted(
                p.vertices
                for p in backtracking_st_paths_undirected(g, 0, g.num_vertices - 1, prune=False)
            )
            assert got == want

    def test_gadget_chain_count(self):
        g, s, t = gadget_chain(6)
        assert sum(1 for _ in enumerate_st_paths_undirected(g, s, t)) == 64

    def test_theta_count(self):
        g = theta_graph(7, 5)
        assert sum(1 for _ in enumerate_st_paths_undirected(g, "s", "t")) == 7


class TestSetPaths:
    def test_super_endpoints_stripped(self):
        g = Graph.from_edges([("a", "x"), ("b", "x"), ("x", "w")])
        paths = sorted(p.vertices for p in enumerate_set_paths(g, ["a", "b"], ["w"]))
        assert paths == [("a", "x", "w"), ("b", "x", "w")]

    def test_internal_vertices_avoid_both_sets(self):
        # path may not pass through another source internally
        g = Graph.from_edges([("a", "b"), ("b", "w")])
        paths = list(enumerate_set_paths(g, ["a", "b"], ["w"]))
        assert sorted(p.vertices for p in paths) == [("b", "w")]

    def test_overlapping_sets_rejected(self, diamond):
        with pytest.raises(ValueError):
            list(enumerate_set_paths(diamond, ["s"], ["s", "t"]))

    def test_build_aux_digraph_edge_ids(self, diamond):
        aux, s_star, t_star = build_set_path_digraph(diamond, ["s"], ["t"])
        for arc in aux.arcs():
            if arc.tail is s_star or arc.head is t_star:
                continue
            assert arc.aid // 2 in set(diamond.edge_ids())

    def test_directed_set_paths(self):
        d = DiGraph.from_arcs([("r", "a"), ("a", "w"), ("r", "w"), ("w", "r")])
        paths = sorted(p.vertices for p in enumerate_set_paths_directed(d, ["r"], ["w"]))
        assert paths == [("r", "a", "w"), ("r", "w")]


class TestDelayShape:
    def test_theta_delay_linear_in_size(self):
        """Delay grows with n+m, bounded by a small multiple of it."""
        ratios = []
        for length in (8, 32, 128):
            g = theta_graph(6, length)
            meter = CostMeter()
            stats = record_metered_delays(
                enumerate_st_paths_undirected(g, "s", "t", meter=meter), meter
            )
            assert stats.solutions == 6
            ratios.append(stats.max_delay / g.size)
        # normalized delay stays bounded (not growing with size)
        assert max(ratios) < 12
        assert max(ratios) / min(ratios) < 4

    def test_grid_exhaustive_enumeration_has_bounded_delay(self):
        g = grid_graph(3, 5)
        meter = CostMeter()
        stats = record_metered_delays(
            enumerate_st_paths_undirected(g, (0, 0), (2, 4), meter=meter), meter
        )
        assert stats.solutions > 100
        assert stats.max_delay < 40 * g.size

    def test_events_alternating_output(self):
        """Alternating output: a solution within any 3 node transitions."""
        g = grid_graph(3, 4)
        d = g.to_directed()
        gap = 0
        max_gap = 0
        for event in st_path_events(d, (0, 0), (2, 3)):
            if event[0] == "solution":
                max_gap = max(max_gap, gap)
                gap = 0
            else:
                gap += 1
        assert max_gap <= 3


class TestBacktrackingBaseline:
    def test_pruned_and_unpruned_agree(self):
        rng = random.Random(107)
        for _ in range(40):
            d = random_simple_digraph(rng, max_n=6)
            vs = list(d.vertices())
            a = sorted(p.vertices for p in backtracking_st_paths(d, vs[0], vs[-1], prune=True))
            b = sorted(p.vertices for p in backtracking_st_paths(d, vs[0], vs[-1], prune=False))
            assert a == b

    def test_count_st_paths(self):
        g = theta_graph(4, 2)
        assert count_st_paths(g.to_directed(), "s", "t") == 4

"""LCA index + path-marking pass (Theorem 25 machinery)."""

import random

import networkx as nx
import pytest

from repro.exceptions import NotATreeError
from repro.graphs.generators import random_tree
from repro.graphs.graph import Graph
from repro.graphs.lca import LCAIndex, mark_terminal_paths


def nx_tree(g: Graph) -> nx.Graph:
    m = nx.Graph()
    m.add_nodes_from(g.vertices())
    for e in g.edges():
        m.add_edge(e.u, e.v)
    return m


class TestLCAIndex:
    def test_small_tree(self):
        t = Graph.from_edges([("r", "a"), ("r", "b"), ("a", "x"), ("a", "y")])
        idx = LCAIndex(t, "r")
        assert idx.lca("x", "y") == "a"
        assert idx.lca("x", "b") == "r"
        assert idx.lca("x", "a") == "a"
        assert idx.lca("r", "x") == "r"
        assert idx.lca("x", "x") == "x"

    def test_depths(self):
        t = Graph.from_edges([("r", "a"), ("a", "b"), ("b", "c")])
        idx = LCAIndex(t, "r")
        assert [idx.depth(v) for v in ("r", "a", "b", "c")] == [0, 1, 2, 3]

    def test_parents_and_parent_edges(self):
        t = Graph.from_edges([("r", "a"), ("a", "b")])
        idx = LCAIndex(t, "r")
        assert idx.parent("r") is None and idx.parent_edge("r") is None
        assert idx.parent("b") == "a"
        assert t.endpoints(idx.parent_edge("b")) in (("a", "b"), ("b", "a"))

    def test_path_to_ancestor(self):
        t = Graph.from_edges([("r", "a"), ("a", "b"), ("b", "c")])
        idx = LCAIndex(t, "r")
        assert idx.path_to_ancestor("c", "a") == [2, 1]
        assert idx.path_to_ancestor("a", "a") == []

    def test_path_to_non_ancestor_raises(self):
        t = Graph.from_edges([("r", "a"), ("r", "b")])
        idx = LCAIndex(t, "r")
        with pytest.raises(NotATreeError):
            idx.path_to_ancestor("a", "b")

    def test_matches_networkx_on_random_trees(self):
        rng = random.Random(23)
        for seed in range(20):
            n = rng.randint(2, 40)
            t = random_tree(n, seed)
            idx = LCAIndex(t, 0)
            directed = nx.bfs_tree(nx_tree(t), 0)
            pairs = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(10)
            ]
            theirs = dict(
                nx.tree_all_pairs_lowest_common_ancestor(directed, root=0, pairs=pairs)
            )
            for (u, v), want in theirs.items():
                assert idx.lca(u, v) == want


class TestMarkTerminalPaths:
    def _marked_endpoints(self, tree, marked):
        return {tuple(sorted(map(str, tree.endpoints(e)))) for e in marked}

    def test_single_pair_marks_exactly_its_path(self):
        t = Graph.from_edges([("r", "a"), ("a", "b"), ("r", "c")])
        idx = LCAIndex(t, "r")
        marked = mark_terminal_paths(idx, [("b", "c")])
        assert marked == {0, 1, 2}
        marked2 = mark_terminal_paths(idx, [("a", "b")])
        assert marked2 == {1}

    def test_no_pairs_marks_nothing(self):
        t = Graph.from_edges([("r", "a")])
        idx = LCAIndex(t, "r")
        assert mark_terminal_paths(idx, []) == set()

    def test_union_of_paths_on_random_trees(self):
        rng = random.Random(29)
        for seed in range(25):
            n = rng.randint(2, 30)
            t = random_tree(n, seed)
            idx = LCAIndex(t, 0)
            m = nx_tree(t)
            pairs = [tuple(rng.sample(range(n), 2)) for _ in range(rng.randint(1, 5))]
            marked = mark_terminal_paths(idx, pairs)
            expected = set()
            for a, b in pairs:
                path = nx.shortest_path(m, a, b)
                for u, v in zip(path, path[1:]):
                    # find the edge id joining u and v
                    eid = next(iter(t.edges_between(u, v)))
                    expected.add(eid)
            assert marked == expected

"""Generate the Markdown API reference under ``docs/api/`` from docstrings.

One page per package/module group (``repro.graphs``, ``repro.engine``,
``repro.serve``, ...), each listing the module's public functions and
classes with their signatures and docstring lead paragraphs.  The
output is deterministic and annotation-free (signatures render
parameter names and defaults only), so the committed pages are
byte-identical across the CI Python matrix; ``tests/test_docs.py``
regenerates them into a temp directory and fails when the committed
copies drift from the code.

Usage::

    PYTHONPATH=src python docs/gen_api.py            # (re)write docs/api/
    PYTHONPATH=src python docs/gen_api.py --check    # fail if stale
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import sys
from typing import Dict, List, Optional

#: page slug -> (title, module names on the page)
PAGES = {
    "repro": (
        "repro (top level)",
        ["repro", "repro.exceptions", "repro.cli"],
    ),
    "repro.graphs": (
        "repro.graphs — graph substrate",
        [
            "repro.graphs",
            "repro.graphs.graph",
            "repro.graphs.digraph",
            "repro.graphs.fastgraph",
            "repro.graphs.vecgraph",
            "repro.graphs.contraction",
            "repro.graphs.bridges",
            "repro.graphs.spanning",
            "repro.graphs.traversal",
            "repro.graphs.shortest_paths",
            "repro.graphs.linegraph",
            "repro.graphs.lca",
            "repro.graphs.generators",
            "repro.graphs.io",
            "repro.graphs.stp",
            "repro.graphs.interop",
        ],
    ),
    "repro.paths": (
        "repro.paths — path enumeration",
        [
            "repro.paths",
            "repro.paths.read_tarjan",
            "repro.paths.fastpaths",
            "repro.paths.vecpaths",
            "repro.paths.simple",
            "repro.paths.yen",
        ],
    ),
    "repro.core": (
        "repro.core — the paper's enumerators",
        [
            "repro.core",
            "repro.core.steiner_tree",
            "repro.core.steiner_forest",
            "repro.core.terminal_steiner",
            "repro.core.directed_steiner",
            "repro.core.induced_steiner",
            "repro.core.induced_paths",
            "repro.core.minimum_enum",
            "repro.core.ranked",
            "repro.core.backend",
            "repro.core.optimum",
            "repro.core.verification",
            "repro.core.baselines",
            "repro.core.internal_steiner",
            "repro.core.group_steiner",
        ],
    ),
    "repro.enumeration": (
        "repro.enumeration — delay instrumentation",
        [
            "repro.enumeration",
            "repro.enumeration.delay",
            "repro.enumeration.events",
            "repro.enumeration.queue_method",
            "repro.enumeration.render",
        ],
    ),
    "repro.hypergraph": (
        "repro.hypergraph — transversal enumeration",
        [
            "repro.hypergraph",
            "repro.hypergraph.hypergraph",
            "repro.hypergraph.dualization",
        ],
    ),
    "repro.zdd": (
        "repro.zdd — ZDD compilation",
        ["repro.zdd", "repro.zdd.zdd", "repro.zdd.steiner"],
    ),
    "repro.datagraph": (
        "repro.datagraph — keyword search",
        [
            "repro.datagraph",
            "repro.datagraph.model",
            "repro.datagraph.search",
            "repro.datagraph.ranked",
            "repro.datagraph.kfragments",
        ],
    ),
    "repro.engine": (
        "repro.engine — batch runtime",
        [
            "repro.engine",
            "repro.engine.jobs",
            "repro.engine.cache",
            "repro.engine.pool",
            "repro.engine.cursor",
            "repro.engine.service",
        ],
    ),
    "repro.serve": (
        "repro.serve — streaming service",
        [
            "repro.serve",
            "repro.serve.server",
            "repro.serve.store",
            "repro.serve.workers",
            "repro.serve.arena",
            "repro.serve.client",
            "repro.serve.protocol",
        ],
    ),
    "repro.serve.fleet": (
        "repro.serve.fleet — sharded multi-replica serving",
        [
            "repro.serve.fleet",
            "repro.serve.fleet.hashring",
            "repro.serve.fleet.router",
            "repro.serve.fleet.replicas",
            "repro.serve.fleet.admission",
            "repro.serve.fleet.proxy",
        ],
    ),
    "repro.frontdoor": (
        "repro.frontdoor — multi-tenant query front door",
        [
            "repro.frontdoor",
            "repro.frontdoor.registry",
            "repro.frontdoor.tenants",
            "repro.frontdoor.answers",
            "repro.frontdoor.scheduling",
            "repro.frontdoor.metrics",
        ],
    ),
    "repro.bench": (
        "repro.bench — measurement harness",
        ["repro.bench", "repro.bench.harness", "repro.bench.workloads"],
    ),
}


def _signature(obj) -> str:
    """Render a call signature with names and defaults, no annotations."""
    try:
        sig = inspect.signature(obj)
    except (TypeError, ValueError):
        return "(...)"
    parts: List[str] = []
    for param in sig.parameters.values():
        name = param.name
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            name = "*" + name
        elif param.kind is inspect.Parameter.VAR_KEYWORD:
            name = "**" + name
        if param.default is not inspect.Parameter.empty:
            name += f"={param.default!r}"
        parts.append(name)
    return "(" + ", ".join(parts) + ")"


def _lead(doc: Optional[str]) -> str:
    """The docstring's lead paragraph, dedented and joined."""
    if not doc:
        return "*(undocumented)*"
    paragraph = inspect.cleandoc(doc).split("\n\n", 1)[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _module_section(module_name: str) -> List[str]:
    module = importlib.import_module(module_name)
    out: List[str] = [f"## `{module_name}`", ""]
    out.append(_lead(module.__doc__))
    out.append("")
    functions = []
    classes = []
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if inspect.isfunction(obj) and obj.__module__ == module_name:
            functions.append((name, obj))
        elif inspect.isclass(obj) and obj.__module__ == module_name:
            classes.append((name, obj))
    for name, obj in classes:
        out.append(f"### class `{name}`")
        out.append("")
        out.append(_lead(obj.__doc__))
        out.append("")
        methods = []
        for attr_name in sorted(vars(obj)):
            if attr_name.startswith("_"):
                continue
            attr = vars(obj)[attr_name]
            if inspect.isfunction(attr):
                methods.append((attr_name, attr, _signature(attr)))
            elif isinstance(attr, (classmethod, staticmethod)):
                methods.append((attr_name, attr.__func__, _signature(attr.__func__)))
            elif isinstance(attr, property) and attr.fget is not None:
                methods.append((attr_name, attr.fget, "  *(property)*"))
        for attr_name, attr, sig in methods:
            suffix = sig if sig.startswith("  ") else f"`{sig}`"
            out.append(f"- **`{attr_name}`**{suffix} — {_lead(attr.__doc__)}")
        if methods:
            out.append("")
    for name, obj in functions:
        out.append(f"### `{name}{_signature(obj)}`")
        out.append("")
        out.append(_lead(obj.__doc__))
        out.append("")
    return out


def render_page(slug: str) -> str:
    """The full Markdown body for one API page."""
    title, modules = PAGES[slug]
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        "*Generated from docstrings by `docs/gen_api.py` — do not edit by "
        "hand; run `PYTHONPATH=src python docs/gen_api.py` to refresh.*"
    )
    lines.append("")
    for module_name in modules:
        lines.extend(_module_section(module_name))
    return "\n".join(lines).rstrip() + "\n"


def render_index() -> str:
    """The ``docs/api/index.md`` table of contents."""
    lines = [
        "# API reference",
        "",
        "*Generated from docstrings by `docs/gen_api.py` — do not edit by "
        "hand; run `PYTHONPATH=src python docs/gen_api.py` to refresh.*",
        "",
        "| page | modules |",
        "|---|---|",
    ]
    for slug in PAGES:
        title, modules = PAGES[slug]
        lines.append(f"| [{title}]({slug}.md) | {len(modules)} modules |")
    return "\n".join(lines) + "\n"


def generate() -> Dict[str, str]:
    """All API pages as ``{relative filename: content}``."""
    pages = {f"{slug}.md": render_page(slug) for slug in PAGES}
    pages["index.md"] = render_index()
    return pages


def main(argv=None) -> int:
    """Write (or with ``--check`` verify) ``docs/api/``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when the committed pages are stale",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "api"),
        help="output directory (default docs/api/)",
    )
    args = parser.parse_args(argv)
    pages = generate()
    if args.check:
        stale = []
        for name, content in pages.items():
            path = os.path.join(args.out, name)
            try:
                with open(path) as handle:
                    if handle.read() != content:
                        stale.append(name)
            except FileNotFoundError:
                stale.append(name)
        if stale:
            print(
                "stale API reference (run `PYTHONPATH=src python docs/gen_api.py`):",
                file=sys.stderr,
            )
            for name in stale:
                print(f"  docs/api/{name}", file=sys.stderr)
            return 1
        print(f"API reference up to date ({len(pages)} pages)")
        return 0
    os.makedirs(args.out, exist_ok=True)
    for name, content in pages.items():
        with open(os.path.join(args.out, name), "w") as handle:
            handle.write(content)
    print(f"wrote {len(pages)} pages to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

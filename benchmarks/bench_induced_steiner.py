"""T1-induced — minimal induced Steiner subgraphs on claw-free graphs
(Table 1 row "Induced Steiner Subgraph on claw-free graphs").

Claims exercised: polynomial delay (Theorem 42).  Delay is measured on
cycle powers (claw-free, controllable size) and on Theorem 39 line-graph
instances; the normalized column grows polynomially but stays far below
the exponential blowup a non-poly-delay traversal would show.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import fit_linearity, measure_enumeration, print_table
from repro.core.induced_steiner import (
    enumerate_minimal_induced_steiner_subgraphs,
    steiner_trees_via_line_graph,
)
from repro.core.steiner_tree import count_minimal_steiner_trees
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph

from benchutil import make_drainer


def cycle_power(n: int, k: int) -> Graph:
    """The k-th power of an n-cycle: claw-free for k >= 1 (unit interval
    style), with many induced terminal connectors."""
    g = Graph()
    for i in range(n):
        g.add_vertex(i)
    for i in range(n):
        for d in range(1, k + 1):
            j = (i + d) % n
            if i < j or (j < i and (i + d) >= n):
                if not g.has_edge_between(i, j):
                    g.add_edge(i, j)
    return g


CYCLE_CASES = [(12, 2), (18, 2), (24, 2), (30, 2)]


@pytest.mark.parametrize("case", CYCLE_CASES, ids=lambda c: f"c{c[0]}^{c[1]}")
def test_cycle_power_enumeration(benchmark, case):
    n, k = case
    g = cycle_power(n, k)
    terminals = [0, n // 2]
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_induced_steiner_subgraphs(
                g, terminals, validate_claw_free=False
            )
        )
    )
    assert count >= 2


@pytest.mark.parametrize("seed", [1, 2, 3], ids=lambda s: f"lg-seed{s}")
def test_line_graph_instance(benchmark, seed):
    base = random_connected_graph(9, 6, seed)
    terminals = [0, 4, 8]
    count = benchmark(
        make_drainer(lambda: steiner_trees_via_line_graph(base, terminals))
    )
    assert count == count_minimal_steiner_trees(base, terminals)


def test_delay_scaling_table(benchmark):
    """Delay grows polynomially (exponent well below cubic+linear worst
    case O(n²(n+m)) ~ size²) across the cycle-power sweep."""
    rows, sizes, delays = [], [], []
    for n, k in CYCLE_CASES:
        g = cycle_power(n, k)
        terminals = [0, n // 2]
        m = measure_enumeration(
            f"c{n}^{k}",
            g.size,
            lambda meter, gg=g, tt=terminals: (
                enumerate_minimal_induced_steiner_subgraphs(
                    gg, tt, meter=meter, validate_claw_free=False
                )
            ),
        )
        sizes.append(m.size)
        delays.append(m.metered.max_delay)
        rows.append(
            (m.label, m.size, m.solutions, m.max_delay_ops, m.normalized_max_delay)
        )
    exponent, r2 = fit_linearity(sizes, delays)
    print()
    print_table(
        "T1-induced: max delay vs n+m (claw-free cycle powers)",
        ("instance", "n+m", "solutions", "max delay (ops)", "delay/(n+m)"),
        rows,
    )
    print(
        f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); "
        "paper bound O(n^2(n+m)) allows up to ~3"
    )
    assert exponent < 3.5
    benchmark(lambda: None)

"""Bridge finding: unit cases plus randomized cross-validation."""

import random

import networkx as nx

from repro.graphs.bridges import (
    find_bridges,
    two_edge_component_labels,
    two_edge_connected_components,
)
from repro.graphs.graph import Graph

from conftest import random_simple_graph


class TestFindBridges:
    def test_empty_graph(self):
        assert find_bridges(Graph()) == set()

    def test_single_edge_is_bridge(self):
        g = Graph.from_edges([("a", "b")])
        assert find_bridges(g) == {0}

    def test_cycle_has_no_bridges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert find_bridges(g) == set()

    def test_tail_edge_is_the_only_bridge(self, triangle_with_tail):
        assert find_bridges(triangle_with_tail) == {3}

    def test_two_triangles_bridge(self, two_triangles_bridge):
        bridges = find_bridges(two_triangles_bridge)
        assert {two_triangles_bridge.endpoints(e) for e in bridges} == {("c", "d")}

    def test_path_all_bridges(self):
        g = Graph.from_edges([(i, i + 1) for i in range(5)])
        assert find_bridges(g) == set(range(5))

    def test_parallel_edges_are_never_bridges(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert find_bridges(g) == {2}

    def test_disconnected_graph(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4), (4, 2)])
        assert find_bridges(g) == {0}

    def test_matches_networkx_on_simple_graphs(self):
        rng = random.Random(17)
        for _ in range(100):
            g = random_simple_graph(rng, max_n=10, p=0.35)
            m = nx.Graph()
            m.add_nodes_from(g.vertices())
            for e in g.edges():
                m.add_edge(e.u, e.v)
            ours = {tuple(sorted(g.endpoints(e))) for e in find_bridges(g)}
            theirs = {tuple(sorted(uv)) for uv in nx.bridges(m)}
            assert ours == theirs


class TestTwoEdgeComponents:
    def test_triangle_plus_tail(self, triangle_with_tail):
        comps = {frozenset(c) for c in two_edge_connected_components(triangle_with_tail)}
        assert comps == {frozenset({"a", "b", "c"}), frozenset({"d"})}

    def test_labels_consistent_with_components(self, two_triangles_bridge):
        labels = two_edge_component_labels(two_triangles_bridge)
        assert labels["a"] == labels["b"] == labels["c"]
        assert labels["d"] == labels["e"] == labels["f"]
        assert labels["a"] != labels["d"]

    def test_parallel_edges_merge_components(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        labels = two_edge_component_labels(g)
        assert labels["a"] == labels["b"]

"""Multi-tenant query front door for the enumeration service.

The serve layer (:mod:`repro.serve`) speaks raw enumeration: every
request ships its own graph and gets an NDJSON stream back.  This
package adds the layer a *service* needs on top of that engine:

* :mod:`repro.frontdoor.registry` — named datasets, registered once
  (``POST /datasets`` / ``repro dataset add``) and deduplicated by the
  isomorphism-stable instance digest, so queries reference a name
  instead of re-uploading edges.
* :mod:`repro.frontdoor.tenants` — API keys with per-tenant sliding-
  window quotas (requests / solutions / compute seconds) and tier
  priorities; violations surface as 401/429 with ``Retry-After``.
* :mod:`repro.frontdoor.scheduling` — the priority gate that orders
  tenants' access to the worker pool (paid tiers first, with an
  anti-starvation fairness escape hatch).
* :mod:`repro.frontdoor.answers` — the compact ``GET /answer`` path:
  top-k weighted answers with provenance, on the datagraph
  compiled-query cache and :mod:`repro.core.ranked`.
* :mod:`repro.frontdoor.metrics` — latency histograms, per-tenant usage
  accounting and the structured ``GET /metrics`` payload, plus the
  access log.

:class:`repro.serve.server.EnumerationServer` wires these together; see
``docs/guides/frontdoor.md`` for the operator walkthrough.
"""

from repro.frontdoor.answers import AnswerEngine, AnswerTimeout
from repro.frontdoor.metrics import LatencyHistogram, MetricsRegistry
from repro.frontdoor.registry import DatasetError, DatasetRecord, DatasetRegistry
from repro.frontdoor.scheduling import PriorityGate
from repro.frontdoor.tenants import (
    AuthError,
    Quota,
    QuotaExceeded,
    Tenant,
    TenantRegistry,
)

__all__ = [
    "AnswerEngine",
    "AnswerTimeout",
    "AuthError",
    "DatasetError",
    "DatasetRecord",
    "DatasetRegistry",
    "LatencyHistogram",
    "MetricsRegistry",
    "PriorityGate",
    "Quota",
    "QuotaExceeded",
    "Tenant",
    "TenantRegistry",
]

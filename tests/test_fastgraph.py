"""Unit tests for the integer graph kernel (repro.graphs.fastgraph)."""

import random

import pytest

from repro.exceptions import (
    EdgeNotFound,
    InvalidInstanceError,
    NoSolutionError,
    SelfLoopError,
    VertexNotFound,
)
from repro.graphs.bridges import find_bridges, two_edge_connected_components
from repro.graphs.fastgraph import (
    ConnectivityIndex,
    FastDiGraph,
    FastGraph,
    compile_directed,
    compile_undirected,
    contracted_kernel,
    contracted_kernel_directed,
    fast_bridges,
    fast_component_labels,
    fast_minimal_steiner_completion,
    fast_prune_non_terminal_leaves,
    fast_spanning_tree_edges,
    is_integer_compact,
)
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.spanning import (
    minimal_steiner_completion,
    prune_non_terminal_leaves,
    spanning_tree_edges,
)


def _random_multigraph(rng, n, m):
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


def _assert_same_structure(g: Graph, fg: FastGraph):
    assert list(g.vertices()) == list(fg.vertices())
    assert [e.eid for e in g.edges()] == [e.eid for e in fg.edges()]
    assert g.num_vertices == fg.num_vertices
    assert g.num_edges == fg.num_edges
    for v in g.vertices():
        assert list(g.incident_ids(v)) == list(fg.incident_ids(v))
        assert list(g.neighbors(v)) == list(fg.neighbors(v))
        assert g.neighbor_set(v) == fg.neighbor_set(v)
        assert g.degree(v) == fg.degree(v)
        assert list(g.incident_items(v)) == list(fg.incident_items(v))
    for eid in g.edge_ids():
        assert g.endpoints(eid) == fg.endpoints(eid)
    assert g.edge_endpoint_multiset() == fg.edge_endpoint_multiset()


class TestProtocolParity:
    def test_compile_preserves_structure_and_order(self):
        rng = random.Random(7)
        for _ in range(20):
            g = _random_multigraph(rng, rng.randrange(1, 9), rng.randrange(0, 16))
            _assert_same_structure(g, FastGraph.from_graph(g))

    def test_mirrors_graph_mutations(self):
        """The same add/remove sequence leaves both structures identical."""
        rng = random.Random(13)
        for _ in range(15):
            g = Graph()
            fg = FastGraph()
            for step in range(40):
                op = rng.random()
                if op < 0.55 or g.num_edges == 0:
                    u = rng.randrange(8)
                    v = rng.randrange(8)
                    if u == v:
                        continue
                    eid = g.add_edge(u, v)
                    assert fg.add_edge(u, v, eid=eid) == eid
                else:
                    eid = rng.choice(list(g.edge_ids()))
                    assert g.remove_edge(eid) == fg.remove_edge(eid)
                    if rng.random() < 0.4:
                        # Re-adding a removed id appends at the end, like
                        # the object graph's dict semantics.
                        u, v = rng.randrange(8), rng.randrange(8)
                        if u != v:
                            g.add_edge(u, v, eid=eid)
                            fg.add_edge(u, v, eid=eid)
            # Orders may legally differ after swap-and-pop removal; the
            # object graph preserves insertion order while the kernel
            # fills the hole.  Structure (sets/multisets) must agree.
            assert set(g.vertices()) == set(fg.vertices())
            assert set(g.edge_ids()) == set(fg.edge_ids())
            assert g.edge_endpoint_multiset() == fg.edge_endpoint_multiset()
            for v in g.vertices():
                assert set(g.incident_ids(v)) == set(fg.incident_ids(v))

    def test_errors_match_object_graph(self):
        fg = FastGraph.from_graph(Graph.from_edges([(0, 1), (1, 2)]))
        with pytest.raises(SelfLoopError):
            fg.add_edge(1, 1)
        with pytest.raises(EdgeNotFound):
            fg.remove_edge(99)
        with pytest.raises(EdgeNotFound):
            fg.endpoints(99)
        with pytest.raises(VertexNotFound):
            fg.degree(42)
        with pytest.raises(VertexNotFound):
            list(fg.neighbors("x"))
        with pytest.raises(ValueError):
            fg.add_edge(0, 2, eid=0)
        with pytest.raises(InvalidInstanceError):
            FastGraph.from_graph(Graph.from_edges([("a", "b")]))

    def test_derived_graphs(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        fg = FastGraph.from_graph(g)
        sub = fg.subgraph([0, 1, 2])
        assert isinstance(sub, Graph)
        assert sorted(sub.edge_ids()) == [0, 1, 2]
        esub = fg.edge_subgraph([0, 3])
        assert sorted(esub.edge_ids()) == [0, 3]
        without = fg.without_vertices([3])
        assert sorted(without.edge_ids()) == [0, 1, 2]
        d = fg.to_directed()
        assert d.num_arcs == 2 * g.num_edges
        again = fg.as_graph()
        _assert_same_structure(again, fg)
        cp = fg.copy()
        cp.remove_edge(0)
        assert fg.has_edge_id(0) and not cp.has_edge_id(0)

    def test_is_integer_compact(self):
        assert is_integer_compact(Graph.from_edges([(0, 1), (1, 2)]))
        assert not is_integer_compact(Graph.from_edges([(0, 2)]))
        assert not is_integer_compact(Graph.from_edges([("a", "b")]))

    def test_compile_relabels_non_compact(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        fg, index = compile_undirected(g)
        assert index == {"a": 0, "b": 1, "c": 2}
        assert sorted(fg.edge_ids()) == [0, 1]
        fg2, index2 = compile_undirected(fg)
        assert fg2 is fg and index2 is None


class TestUndoLog:
    def test_rollback_restores_exact_incidence_order(self):
        rng = random.Random(99)
        for _ in range(30):
            g = _random_multigraph(rng, rng.randrange(2, 9), rng.randrange(1, 18))
            fg = FastGraph.from_graph(g)
            before = {v: list(fg.incident_ids(v)) for v in fg.vertices()}
            mark = fg.checkpoint()
            eids = list(fg.edge_ids())
            if not eids:
                continue
            rng.shuffle(eids)
            for eid in eids[: rng.randrange(1, len(eids) + 1)]:
                if rng.random() < 0.3 and fg.has_edge_id(eid):
                    fg.contract_edge(eid)
                elif fg.has_edge_id(eid):
                    fg.remove_edge(eid)
            fg.rollback(mark)
            after = {v: list(fg.incident_ids(v)) for v in fg.vertices()}
            assert before == after
            _assert_same_structure(g, fg)

    def test_nested_checkpoints(self):
        fg = FastGraph.from_graph(Graph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)]))
        outer = fg.checkpoint()
        fg.remove_edge(1)
        inner = fg.checkpoint()
        fg.remove_edge(3)
        fg.rollback(inner)
        assert fg.has_edge_id(3) and not fg.has_edge_id(1)
        fg.rollback(outer)
        assert fg.num_edges == 4

    def test_contract_edge_merges_and_restores(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 1)])
        fg = FastGraph.from_graph(g)
        mark = fg.checkpoint()
        survivor = fg.contract_edge(0)
        # The parallel (0,1) edge becomes a self-loop and is dropped;
        # the two (·,2) edges become parallel edges at the survivor.
        assert fg.num_vertices == 2
        assert sorted(fg.edge_ids()) == [1, 2]
        assert sorted(fg.edges_between(survivor, 2)) == [1, 2]
        fg.rollback(mark)
        _assert_same_structure(g, fg)

    def test_remove_vertex_logged(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        fg = FastGraph.from_graph(g)
        mark = fg.checkpoint()
        fg.remove_vertex(1)
        assert 1 not in fg and fg.num_edges == 1
        fg.rollback(mark)
        _assert_same_structure(g, fg)


class TestArrayAlgorithms:
    def test_bridges_match_object_backend(self):
        rng = random.Random(5)
        for _ in range(30):
            g = _random_multigraph(rng, rng.randrange(1, 10), rng.randrange(0, 18))
            fg = FastGraph.from_graph(g)
            assert fast_bridges(fg) == find_bridges(g)

    def test_component_labels(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=[4])
        labels = fast_component_labels(FastGraph.from_graph(g))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_spanning_and_prune_match_object_backend(self):
        rng = random.Random(23)
        for _ in range(25):
            g = _random_multigraph(rng, rng.randrange(2, 10), rng.randrange(1, 18))
            fg = FastGraph.from_graph(g)
            assert fast_spanning_tree_edges(fg) == spanning_tree_edges(g)
            tree = spanning_tree_edges(g)
            terminals = [v for v in g.vertices() if rng.random() < 0.4]
            assert fast_prune_non_terminal_leaves(
                fg, tree, terminals
            ) == prune_non_terminal_leaves(g, tree, terminals)

    def test_completion_matches_object_backend(self):
        rng = random.Random(31)
        for _ in range(25):
            g = random_connected_graph(rng.randrange(4, 12), rng.randrange(0, 8), rng.randrange(999))
            fg = FastGraph.from_graph(g)
            terminals = rng.sample(range(g.num_vertices), rng.randrange(1, 4))
            assert fast_minimal_steiner_completion(
                fg, terminals
            ) == minimal_steiner_completion(g, terminals)

    def test_completion_raises_on_disconnected_terminals(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        fg = FastGraph.from_graph(g)
        with pytest.raises(NoSolutionError):
            fast_minimal_steiner_completion(fg, [0, 2])

    def test_contracted_kernel_matches_contract_edges(self):
        from repro.graphs.contraction import contract_edges

        rng = random.Random(17)
        for _ in range(25):
            g = _random_multigraph(rng, rng.randrange(2, 9), rng.randrange(1, 16))
            fg = FastGraph.from_graph(g)
            eids = [e for e in g.edge_ids() if rng.random() < 0.4]
            ck, vmap = contracted_kernel(fg, eids)
            obj = contract_edges(g, eids)
            assert ck.num_vertices == obj.graph.num_vertices
            assert sorted(ck.edge_ids()) == sorted(obj.graph.edge_ids())
            # Same partition: two vertices merge in one iff in the other.
            for u in g.vertices():
                for v in g.vertices():
                    assert (vmap[u] == vmap[v]) == (
                        obj.vertex_map[u] == obj.vertex_map[v]
                    )
            # Surviving edges keep their global order.
            assert [e.eid for e in ck.edges()] == [e.eid for e in obj.graph.edges()]


class TestConnectivityIndex:
    def test_tracks_mutations_incrementally(self):
        rng = random.Random(41)
        for _ in range(10):
            g = _random_multigraph(rng, 10, 16)
            fg = FastGraph.from_graph(g)
            index = ConnectivityIndex(fg)
            for _step in range(25):
                if rng.random() < 0.5 and fg.num_edges:
                    fg.remove_edge(rng.choice(list(fg.edge_ids())))
                else:
                    u, v = rng.randrange(10), rng.randrange(10)
                    if u != v:
                        fg.add_edge(u, v)
                # Oracle: recompute everything from scratch.
                expected_bridges = fast_bridges(fg)
                expected_labels = fast_component_labels(fg)
                assert index.bridges() == expected_bridges
                for a in fg.vertices():
                    for b in fg.vertices():
                        assert index.same_component(a, b) == (
                            expected_labels[a] == expected_labels[b]
                        )

    def test_matches_object_bridge_analysis(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)])
        fg = FastGraph.from_graph(g)
        index = ConnectivityIndex(fg)
        # Triangle + parallel pair: only the (2,3) edge is a bridge.
        assert index.bridges() == find_bridges(g) == {3}
        assert index.num_components == 1
        # Removing the bridge splits the graph like the 2ecc structure.
        fg.remove_edge(3)
        assert index.num_components == len(two_edge_connected_components(g))

    def test_rollback_then_query(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        fg = FastGraph.from_graph(g)
        index = ConnectivityIndex(fg)
        assert len(index.bridges()) == 3
        mark = fg.checkpoint()
        fg.remove_edge(1)
        assert not index.same_component(0, 3)
        fg.rollback(mark)
        assert index.same_component(0, 3)
        assert index.bridges() == fast_bridges(fg)


class TestDirectedKernel:
    def test_from_digraph_parity(self):
        from repro.graphs.digraph import DiGraph

        rng = random.Random(3)
        for _ in range(20):
            d = DiGraph()
            for v in range(6):
                d.add_vertex(v)
            for _e in range(rng.randrange(0, 14)):
                u, v = rng.randrange(6), rng.randrange(6)
                if u != v:
                    d.add_arc(u, v)
            fd = FastDiGraph.from_digraph(d)
            assert list(d.vertices()) == list(fd.vertices())
            assert [a.aid for a in d.arcs()] == [a.aid for a in fd.arcs()]
            for v in d.vertices():
                assert list(d.out_items(v)) == list(fd.out_items(v))
                assert list(d.in_items(v)) == list(fd.in_items(v))
                assert d.out_degree(v) == fd.out_degree(v)
                assert d.in_degree(v) == fd.in_degree(v)

    def test_contracted_kernel_directed_identity_labels(self):
        from repro.graphs.digraph import DiGraph

        d = DiGraph.from_arcs([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        fd = FastDiGraph.from_digraph(d)
        ck, vmap = contracted_kernel_directed(fd, {0, 1})
        assert vmap[0] == vmap[1] == 0
        assert vmap[2] == 2 and vmap[3] == 3
        # Arc 0 (0->1) vanished inside the group; others survive.
        assert sorted(ck.arc_ids()) == [1, 2, 3, 4]

    def test_compile_directed_relabel(self):
        from repro.graphs.digraph import DiGraph

        d = DiGraph.from_arcs([("r", "x"), ("x", "w")])
        fd, index = compile_directed(d)
        assert index == {"r": 0, "x": 1, "w": 2}
        assert fd.arc_endpoints(0) == (0, 1)

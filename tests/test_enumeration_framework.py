"""Delay instrumentation, event protocol and the output-queue regulator."""

from repro.enumeration.delay import (
    CostMeter,
    DelayRecorder,
    MeteredDelayRecorder,
    record_metered_delays,
    record_wall_delays,
)
from repro.enumeration.events import (
    DISCOVER,
    EXAMINE,
    SOLUTION,
    TreeShape,
    solutions_only,
)
from repro.enumeration.queue_method import RegulatorProbe, regulate


class TestCostMeter:
    def test_tick_and_reset(self):
        meter = CostMeter()
        meter.tick()
        meter.tick(4)
        assert meter.count == 5
        meter.reset()
        assert meter.count == 0


class TestDelayRecorders:
    def test_wall_recorder_counts_solutions_and_gaps(self):
        rec = DelayRecorder(iter([1, 2, 3]))
        assert list(rec) == [1, 2, 3]
        assert rec.stats.solutions == 3
        # 3 inter-solution gaps + final gap
        assert len(rec.stats.delays) == 4
        assert rec.stats.max_delay >= 0

    def test_metered_recorder_tracks_ops_between_yields(self):
        meter = CostMeter()

        def gen():
            meter.tick(10)
            yield "a"
            meter.tick(3)
            yield "b"
            meter.tick(7)

        rec = MeteredDelayRecorder(gen(), meter)
        assert list(rec) == ["a", "b"]
        assert rec.stats.delays == [10, 3, 7]
        assert rec.stats.max_delay == 10
        assert rec.stats.total == 20
        assert rec.stats.amortized == 10.0

    def test_record_helpers_respect_limit(self):
        meter = CostMeter()

        def gen():
            for i in range(100):
                meter.tick()
                yield i

        stats = record_metered_delays(gen(), meter, limit=5)
        assert stats.solutions == 5
        wall = record_wall_delays(iter(range(100)), limit=3)
        assert wall.solutions == 3

    def test_empty_stats(self):
        stats = record_wall_delays(iter([]))
        assert stats.solutions == 0
        # only the preprocessing/postprocessing gap is recorded
        assert len(stats.delays) == 1
        assert stats.amortized == float("inf")


class TestEvents:
    def test_solutions_only(self):
        events = [
            (DISCOVER, 0, 0),
            (SOLUTION, "x"),
            (EXAMINE, 0, 0),
            (SOLUTION, "y"),
        ]
        assert list(solutions_only(events)) == ["x", "y"]

    def test_tree_shape_counts(self):
        # root with two children, one solution per child
        events = [
            (DISCOVER, 0, 0),
            (DISCOVER, 1, 1),
            (SOLUTION, "a"),
            (EXAMINE, 1, 1),
            (DISCOVER, 2, 1),
            (SOLUTION, "b"),
            (EXAMINE, 2, 1),
            (EXAMINE, 0, 0),
        ]
        shape = TreeShape()
        sols = list(shape.consume(iter(events)))
        assert sols == ["a", "b"]
        assert shape.discovered == 3
        assert shape.internal_nodes == 1
        assert shape.leaf_nodes == 2
        assert shape.min_internal_children == 2
        assert shape.max_depth == 1


def _solution_burst_events(num_solutions, trailing_events=0):
    """All solutions up front, then a tail of non-solution events."""
    for i in range(num_solutions):
        yield (SOLUTION, i)
    for i in range(trailing_events):
        yield (DISCOVER, 100 + i, 1)


class TestRegulator:
    def test_all_solutions_preserved(self):
        out = list(regulate(_solution_burst_events(10, 20), prime=3, window=2))
        assert out == list(range(10))

    def test_priming_delays_first_output(self):
        events = list(_solution_burst_events(5, 0))
        # prime=5 means nothing is released until all 5 are buffered;
        # everything then flushes at the end.
        out = list(regulate(iter(events), prime=5, window=1))
        assert out == list(range(5))

    def test_fewer_solutions_than_prime_still_flushed(self):
        out = list(regulate(_solution_burst_events(2, 0), prime=100))
        assert out == [0, 1]

    def test_degenerate_parameters_clamped(self):
        out = list(regulate(_solution_burst_events(3, 3), prime=0, window=0))
        assert out == [0, 1, 2]

    def test_probe_measures_gaps(self):
        # interleave solutions and filler so gaps are meaningful
        def events():
            for i in range(50):
                yield (SOLUTION, i)
                yield (DISCOVER, 1000 + i, 1)

        probe = RegulatorProbe(prime=5, window=4)
        out = list(probe.run(events()))
        assert sorted(out) == list(range(50))
        assert probe.max_gap >= 4
        # steady stream: gap never needs to exceed the window by much
        assert probe.max_gap <= 8

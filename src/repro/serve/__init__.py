"""Streaming enumeration service: async server, worker pool, result store.

This package turns :mod:`repro.engine` into a network service:

* :class:`ResultStore` (:mod:`repro.serve.store`) — a disk-backed result
  store keyed by the engine's isomorphism-stable instance digest, with
  cursor checkpoints that survive process restarts.  It speaks the same
  ``lookup`` / ``prefix`` / ``store`` protocol as
  :class:`repro.engine.cache.InstanceCache`, so cursors and the batch
  pool accept one interchangeably.
* :class:`WorkerPool` (:mod:`repro.serve.workers`) — a persistent pool
  of enumeration worker processes streaming solution chunks back over
  pipes with credit-based flow control and cooperative cancellation.
* :class:`EnumerationServer` (:mod:`repro.serve.server`) — an asyncio
  HTTP/1.1 endpoint (``POST /enumerate``) that streams newline-
  delimited JSON events with per-client backpressure, replays
  warm-store hits without re-enumerating, and checkpoints interrupted
  streams for resumption.
* :class:`ServeClient` (:mod:`repro.serve.client`) — a blocking
  stdlib-only client used by ``repro client``, the tests, and the
  benchmarks.

See ``docs/guides/serve.md`` for the architecture walkthrough and the
wire protocol reference.
"""

from repro.serve.client import ServeClient
from repro.serve.server import EnumerationServer, ServerThread
from repro.serve.store import ResultStore, TieredCache
from repro.serve.workers import WorkerPool

__all__ = [
    "EnumerationServer",
    "ResultStore",
    "ServeClient",
    "ServerThread",
    "TieredCache",
    "WorkerPool",
]

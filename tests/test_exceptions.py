"""The exception hierarchy: catchability contracts the README promises."""

import pytest

from repro.exceptions import (
    ClawFreeViolation,
    EdgeNotFound,
    GraphError,
    InvalidInstanceError,
    NoSolutionError,
    NotATreeError,
    ReproError,
    SelfLoopError,
    VertexNotFound,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            GraphError("x"),
            VertexNotFound("v"),
            EdgeNotFound(1),
            SelfLoopError("v"),
            NotATreeError("x"),
            InvalidInstanceError("x"),
            NoSolutionError("x"),
            ClawFreeViolation("c", ("a", "b", "d")),
        ):
            assert isinstance(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        # so dict-style call sites can keep their except KeyError blocks
        assert isinstance(VertexNotFound("v"), KeyError)
        assert isinstance(EdgeNotFound(0), KeyError)

    def test_value_like_errors_are_value_errors(self):
        assert isinstance(SelfLoopError("v"), ValueError)
        assert isinstance(InvalidInstanceError("x"), ValueError)
        assert isinstance(NotATreeError("x"), ValueError)

    def test_no_solution_is_invalid_instance(self):
        assert isinstance(NoSolutionError("x"), InvalidInstanceError)

    def test_claw_violation_payload(self):
        exc = ClawFreeViolation("c", ["a", "b", "d"])
        assert exc.center == "c"
        assert exc.leaves == ("a", "b", "d")
        assert "K_1,3" in str(exc)

    def test_messages_name_the_culprit(self):
        assert "'v'" in str(VertexNotFound("v"))
        assert "7" in str(EdgeNotFound(7))
        assert "'x'" in str(SelfLoopError("x"))


class TestCatchability:
    def test_single_except_clause_covers_library(self):
        from repro.graphs.graph import Graph

        g = Graph()
        with pytest.raises(ReproError):
            g.add_edge("a", "a")
        with pytest.raises(ReproError):
            g.endpoints(0)
        with pytest.raises(ReproError):
            g.degree("missing")

"""Scale smoke tests: streaming must stay responsive on larger inputs.

These do not validate asymptotics (the metered benchmarks do that); they
guard against accidental quadratic blowups, recursion-limit crashes and
eager materialization — each test takes the *first few* solutions from
an instance far too big to enumerate exhaustively.
"""

import itertools

import pytest

from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import (
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_linear_delay,
)
from repro.core.verification import is_minimal_steiner_tree
from repro.graphs.generators import (
    grid_graph,
    random_connected_graph,
    random_rooted_digraph,
    random_terminals,
)
from repro.paths.read_tarjan import enumerate_st_paths_undirected

FIRST = 50


def take(iterable, k=FIRST):
    return list(itertools.islice(iterable, k))


pytestmark = pytest.mark.slow


class TestStreamingScale:
    def test_steiner_trees_on_thousand_vertex_graph(self):
        g = random_connected_graph(1000, 700, seed=1)
        terms = random_terminals(g, 12, seed=1)
        out = take(enumerate_minimal_steiner_trees(g, terms))
        assert len(out) == FIRST
        assert len(set(out)) == FIRST
        for sol in out[:5]:
            assert is_minimal_steiner_tree(g, sol, terms)

    def test_linear_delay_variant_scales_too(self):
        g = random_connected_graph(600, 400, seed=2)
        terms = random_terminals(g, 8, seed=2)
        out = take(enumerate_minimal_steiner_trees_linear_delay(g, terms))
        assert len(out) == FIRST

    def test_deep_path_no_recursion_crash(self):
        # a 2000-vertex path with a parallel shortcut ladder stresses
        # recursion depth in path enumeration
        g = grid_graph(2, 1000)
        out = take(enumerate_st_paths_undirected(g, (0, 0), (1, 999)), 10)
        assert out

    def test_forest_streaming(self):
        g = random_connected_graph(500, 350, seed=3)
        families = [[0, 100], [200, 300], [400, 499]]
        out = take(enumerate_minimal_steiner_forests(g, families), 25)
        assert len(out) == 25

    def test_directed_streaming(self):
        d = random_rooted_digraph(600, 1800, seed=4, root=0)
        terminals = [100, 200, 300, 400, 500]
        out = take(
            enumerate_minimal_directed_steiner_trees(d, terminals, 0), 25
        )
        assert out

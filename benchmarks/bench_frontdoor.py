"""Front-door benchmark: named-dataset warm path + many-tenant fairness.

Two phases against a real in-process :class:`EnumerationServer` (no
result store, no instance cache — so the *front-door* caches are the
only thing separating the phases):

1. **Warm-path gate** — a keyword graph is registered once under a
   name; ``BENCH_FRONTDOOR_ROUNDS`` ``/answer`` requests then reference
   the name.  The per-request-upload control runs the same query as
   ``/enumerate`` kfragments jobs that ship the full edge list + keyword
   table in every request body (rebuilding the graph and recompiling the
   query server-side each time).  The named warm path must be at least
   ``BENCH_FRONTDOOR_GATE`` (default 5.0) times faster per request, and
   every warm answer must be byte-identical to the first.
2. **Many-tenant fairness smoke** — one tenant per tier (free,
   standard, paid) fires concurrent ``/enumerate`` streams at a
   2-worker pool.  Every stream must complete byte-identical to the
   reference enumeration and every tenant's usage must be accounted —
   i.e. paid-tier priority must not starve the free tier.

Environment knobs: ``BENCH_FRONTDOOR_ROUNDS`` (timed requests per
phase, default 10), ``BENCH_FRONTDOOR_GATE`` (warm-path speedup floor,
default 5.0), ``BENCH_FRONTDOOR_TAIL`` (payload tree-appendage
size in nodes, default 1500).

Usage::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Tuple

from repro.engine.jobs import EnumerationJob, run_job
from repro.serve import EnumerationServer, ServeClient, ServerThread

KEYWORDS = ["alpha", "beta", "gamma"]


def keyword_graph(tail: int) -> Tuple[List[Tuple[str, str]], List[Tuple[str, List[str]]]]:
    """A small keyword core + a ``tail``-node tree appendage.

    The keywords (and therefore every minimal answer) live in the
    8-node core, so the query itself is cheap; the appendage is a tree,
    which inclusion-minimal Steiner structures can never enter — it
    exists purely to make the payload big, i.e. to make the
    per-request-upload control pay for shipping, parsing, rebuilding
    and recompiling a large graph on every request."""
    core = [
        ("c0", "c1"), ("c1", "c2"), ("c2", "c3"), ("c3", "c0"),
        ("c1", "c4"), ("c4", "c5"), ("c5", "c2"), ("c0", "c6"),
        ("c6", "c7"), ("c7", "c3"),
    ]
    edges = list(core)
    edges.append(("c0", "t0"))
    for i in range(tail - 1):
        # a binary tree keeps the appendage shallow but wide
        edges.append((f"t{i // 2}", f"t{i + 1}"))
    node_keywords = [
        ("c0", ["alpha"]),
        ("c2", ["beta"]),
        ("c5", ["gamma"]),
    ]
    return edges, node_keywords


def timed(fn, rounds: int) -> Tuple[float, List[object]]:
    """Mean seconds per call over ``rounds`` calls + the results."""
    results = []
    start = time.perf_counter()
    for _ in range(rounds):
        results.append(fn())
    return (time.perf_counter() - start) / rounds, results


def warm_path_phase(
    port: int, rounds: int, tail: int, failures: List[str]
) -> Dict[str, float]:
    """Named-dataset ``/answer`` vs per-request kfragments upload."""
    edges, node_keywords = keyword_graph(tail)
    client = ServeClient(port=port, timeout=300)
    client.register_dataset("bench", edges, node_keywords=node_keywords)
    client.answer("bench", KEYWORDS, k=3)  # warm graph + compiled query

    warm_mean, warm_docs = timed(
        lambda: client.answer("bench", KEYWORDS, k=3), rounds
    )
    first = warm_docs[0]["answers"]
    if not first:
        failures.append("warm /answer returned no answers")
    for doc in warm_docs[1:]:
        if doc["answers"] != first:
            failures.append("warm /answer responses disagree")
            break
    if not all(
        d["provenance"]["answer_cached"] or d["provenance"]["compiled_query_warm"]
        for d in warm_docs
    ):
        failures.append("warm /answer did not hit the front-door caches")

    # the control ships the whole graph in every request body
    upload_spec = {
        "kind": "kfragments",
        "edges": [list(e) for e in edges],
        "keywords": KEYWORDS,
        "node_keywords": [[n, kws] for n, kws in node_keywords],
        "limit": 16,
    }
    upload_mean, _uploads = timed(
        lambda: client.solutions(dict(upload_spec)), rounds
    )

    speedup = upload_mean / warm_mean if warm_mean > 0 else float("inf")
    return {
        "warm_ms": warm_mean * 1000.0,
        "upload_ms": upload_mean * 1000.0,
        "speedup": speedup,
    }


def fairness_phase(server: EnumerationServer, port: int, failures: List[str]) -> Dict[str, int]:
    """Concurrent streams from one tenant per tier; nobody starves."""
    tiers = ["free", "standard", "paid"]
    keys = {t: server.tenants.issue(f"bench-{t}", tier=t).key for t in tiers}
    jobs = {}
    for tier in tiers:
        n = 18
        edges = [(f"{tier}{i}", f"{tier}{(i + 1) % n}") for i in range(n)]
        edges += [(f"{tier}{i}", f"{tier}{(i + 2) % n}") for i in range(0, n, 2)]
        jobs[tier] = EnumerationJob.steiner_tree(
            edges, [f"{tier}0", f"{tier}{n // 2}"], limit=400
        )
    expected = {t: run_job(j).lines for t, j in jobs.items()}
    completions: Dict[str, int] = {t: 0 for t in tiers}
    lock = threading.Lock()
    errors: List[str] = []

    def worker(tier: str) -> None:
        try:
            lines = tuple(
                ServeClient(port=port, timeout=300, api_key=keys[tier]).solutions(
                    jobs[tier]
                )
            )
            if lines != expected[tier]:
                raise AssertionError(f"{tier}: stream differs from reference")
            with lock:
                completions[tier] += 1
        except Exception as exc:  # noqa: BLE001 — surfaced below
            with lock:
                errors.append(f"{tier}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(tier,))
        for tier in tiers
        for _ in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    failures.extend(errors)
    for tier in tiers:
        if completions[tier] != 3:
            failures.append(f"{tier} tier starved: {completions[tier]}/3 completed")
        usage = server.tenants.usage(f"bench-{tier}")
        if usage["requests"] < 3:
            failures.append(f"{tier} tier usage not accounted: {usage}")
    return completions


def main() -> int:
    rounds = int(os.environ.get("BENCH_FRONTDOOR_ROUNDS", "10"))
    gate = float(os.environ.get("BENCH_FRONTDOOR_GATE", "5.0"))
    tail = int(os.environ.get("BENCH_FRONTDOOR_TAIL", "1500"))
    failures: List[str] = []

    server = EnumerationServer(workers=2, cache=False, tenants=None)
    with ServerThread(server) as thread:
        stats = warm_path_phase(thread.port, rounds, tail, failures)
        print(
            f"warm /answer      {stats['warm_ms']:8.2f} ms/req\n"
            f"per-req upload    {stats['upload_ms']:8.2f} ms/req\n"
            f"speedup           {stats['speedup']:8.2f}x   (gate {gate:g}x)"
        )
        if stats["speedup"] < gate:
            failures.append(
                f"warm-path speedup {stats['speedup']:.2f}x below the {gate:g}x gate"
            )

    fair_server = EnumerationServer(
        workers=2, cache=False, tenants=os.path.join(
            os.environ.get("TMPDIR", "/tmp"), f"bench-frontdoor-tenants-{os.getpid()}"
        )
    )
    with ServerThread(fair_server) as thread:
        completions = fairness_phase(fair_server, thread.port, failures)
        print(f"fairness          {completions} (3 streams per tier, all byte-exact)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall front-door gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Reading and writing graphs (edge lists, weighted edge lists, JSON).

The CLI and examples exchange graphs as plain text so results can be
reproduced from the shell.  Two formats:

* **edge list** — one edge per line, ``u v`` (or ``tail head`` for
  digraphs), optional third column = weight, ``#`` comments.  Vertices
  are strings.
* **data-graph JSON** — ``{"nodes": {name: [keywords...]}, "links":
  [[u, v], ...]}`` for :class:`repro.datagraph.model.DataGraph`.

Loaders validate eagerly and raise :class:`GraphFormatError` with the
offending line so a typo in a 10k-line file is findable.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, TextIO, Tuple

from repro.exceptions import ReproError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph


class GraphFormatError(ReproError, ValueError):
    """A graph file could not be parsed."""

    def __init__(self, source: str, line_no: int, message: str):
        super().__init__(f"{source}:{line_no}: {message}")
        self.source = source
        self.line_no = line_no


def _iter_records(handle: TextIO, source: str):
    for line_no, line in enumerate(handle, 1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        yield line_no, body.split()


def read_edge_list(
    handle: TextIO, source: str = "<edge list>"
) -> Tuple[Graph, Dict[int, float]]:
    """Parse an undirected edge list; return ``(graph, weights)``.

    Weights default to 1.0 when the third column is absent.
    """
    g = Graph()
    weights: Dict[int, float] = {}
    for line_no, parts in _iter_records(handle, source):
        if len(parts) < 2 or len(parts) > 3:
            raise GraphFormatError(source, line_no, f"expected 'u v [w]', got {parts!r}")
        weight = 1.0
        if len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise GraphFormatError(
                    source, line_no, f"bad weight {parts[2]!r}"
                ) from None
        if parts[0] == parts[1]:
            raise GraphFormatError(source, line_no, "self-loops are not allowed")
        eid = g.add_edge(parts[0], parts[1])
        weights[eid] = weight
    return g, weights


def read_arc_list(
    handle: TextIO, source: str = "<arc list>"
) -> Tuple[DiGraph, Dict[int, float]]:
    """Parse a directed arc list; return ``(digraph, weights)``."""
    d = DiGraph()
    weights: Dict[int, float] = {}
    for line_no, parts in _iter_records(handle, source):
        if len(parts) < 2 or len(parts) > 3:
            raise GraphFormatError(
                source, line_no, f"expected 'tail head [w]', got {parts!r}"
            )
        weight = 1.0
        if len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise GraphFormatError(
                    source, line_no, f"bad weight {parts[2]!r}"
                ) from None
        if parts[0] == parts[1]:
            raise GraphFormatError(source, line_no, "self-loops are not allowed")
        aid = d.add_arc(parts[0], parts[1])
        weights[aid] = weight
    return d, weights


def write_edge_list(
    graph: Graph, handle: TextIO, weights: Optional[Dict[int, float]] = None
) -> None:
    """Write an undirected graph as an edge list (round-trips with
    :func:`read_edge_list` up to edge ids)."""
    for edge in graph.edges():
        if weights is not None and edge.eid in weights:
            handle.write(f"{edge.u} {edge.v} {weights[edge.eid]}\n")
        else:
            handle.write(f"{edge.u} {edge.v}\n")


def write_arc_list(
    digraph: DiGraph, handle: TextIO, weights: Optional[Dict[int, float]] = None
) -> None:
    """Write a digraph as an arc list."""
    for arc in digraph.arcs():
        if weights is not None and arc.aid in weights:
            handle.write(f"{arc.tail} {arc.head} {weights[arc.aid]}\n")
        else:
            handle.write(f"{arc.tail} {arc.head}\n")


def read_data_graph(handle: TextIO, source: str = "<data graph>"):
    """Parse a data-graph JSON document.

    Schema: ``{"nodes": {name: [keywords]}, "links": [[u, v], ...]}``.
    """
    from repro.datagraph.model import DataGraph

    try:
        doc = json.load(handle)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(source, exc.lineno, exc.msg) from None
    if not isinstance(doc, dict) or "nodes" not in doc:
        raise GraphFormatError(source, 1, "missing 'nodes' object")
    dg = DataGraph()
    for name, keywords in doc["nodes"].items():
        if not isinstance(keywords, list):
            raise GraphFormatError(source, 1, f"node {name!r}: keywords must be a list")
        dg.add_node(name, keywords)
    for link in doc.get("links", []):
        if not (isinstance(link, list) and len(link) == 2):
            raise GraphFormatError(source, 1, f"bad link {link!r}")
        u, v = link
        if u not in dg.graph or v not in dg.graph:
            raise GraphFormatError(source, 1, f"link {link!r} references unknown node")
        dg.add_link(u, v)
    return dg


def write_data_graph(datagraph, handle: TextIO) -> None:
    """Write a data graph as JSON (round-trips with
    :func:`read_data_graph`)."""
    doc = {
        "nodes": {
            str(v): sorted(datagraph.keywords_of(v)) for v in datagraph.graph.vertices()
        },
        "links": [
            [str(e.u), str(e.v)] for e in datagraph.graph.edges()
        ],
    }
    json.dump(doc, handle, indent=2, sort_keys=True)
    handle.write("\n")

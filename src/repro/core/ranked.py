"""Ranked enumeration of minimal Steiner trees (extension).

The paper's companion line of work (Kimelfeld–Sagiv [25]) enumerates
Steiner trees in *approximate* ascending weight order — exact ranked
enumeration needs different machinery and loses the delay guarantee.
This module reproduces that trade-off explicitly:

* :func:`enumerate_approximately_by_weight` — wraps the linear-delay
  enumerator with a bounded look-ahead heap.  With look-ahead ``L``, the
  emitted stream is *L-sorted*: every solution is emitted before any
  solution that arrives ≥ L positions later and is lighter.  Delay stays
  linear (each emission consumes exactly one new solution); order quality
  grows with L.  ``L = ∞`` degenerates to exact sorting (total time, no
  delay guarantee).
* :func:`k_lightest_minimal_steiner_trees` — exact top-k via full
  enumeration and a bounded max-heap: exact results, total-time cost,
  the honest baseline to compare the approximate stream against.
* :func:`weight_of_optimum` (re-exported Dreyfus–Wagner) anchors both:
  the first emission's weight can be compared against the true optimum,
  which the tests do.

Both entry points take ``backend="object" | "fast"``.  On the fast
backend the instance is compiled into the integer kernel once (or the
caller passes an already-compiled kernel, which is reused as-is), the
weight mapping is flattened into a float64 array indexed by edge id,
and the look-ahead heap becomes a kernel-native best-first frontier
over the fast enumerator's stream.  Emission order follows the
RANKED ORDER contract of :mod:`repro.core.backend` — ``(weight,
canonical edge-id tuple)`` — so ties break by the solution itself, never
by arrival order, and the two backends' ranked streams are
byte-identical wherever their underlying enumeration streams are.
"""

from __future__ import annotations

import heapq
from typing import (
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.core.backend import (
    check_backend,
    compile_undirected,
    map_query_vertices,
    ranked_key,
)
from repro.core.optimum import dreyfus_wagner, tree_weight
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.graphs.graph import Graph

Vertex = Hashable
Weight = float
Solution = FrozenSet[int]


class _ReversedKey:
    """Inverts comparison so heapq's min-heap acts as a max-heap on
    RANKED ORDER keys (tuples of mixed width don't negate)."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.key < self.key


def _weighted_stream(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Mapping[int, Weight],
    meter,
    backend: str,
) -> Iterator[Tuple[Weight, Solution]]:
    """The enumeration stream annotated with RANKED-ORDER weights.

    On the fast backend the weight mapping is flattened once into a
    float64 array indexed by edge id (0.0 default, mirroring
    ``tree_weight``'s ``.get`` default) and every solution's weight is
    summed from it in the solution set's own iteration order — the same
    float additions in the same order as ``tree_weight``, so the emitted
    weights are bit-identical across backends.  The array is local to
    the stream: a compiled kernel shared across streams (the datagraph
    layer's cached compilation) is never mutated.
    """
    if backend in ("fast", "vector"):
        fg, index = compile_undirected(graph, vec=backend == "vector")
        if fg is graph:
            # The caller passed an already-compiled kernel (e.g. the
            # datagraph layer's cached compilation, shared across
            # streams): never mutate it — flatten the weights into a
            # stream-local array with the same semantics instead.
            wf = [0.0] * fg.m_space
            for eid, w in weights.items():
                if 0 <= eid < fg.m_space:
                    wf[eid] = w

            def weight_of(solution: Solution) -> Weight:
                total: float = 0  # int start, like sum()
                for eid in solution:
                    total += wf[eid]
                return total

        else:
            # Fresh kernel owned by this stream: load the weights into
            # its flat dual-storage arrays (docs/guides/graphs.md).
            fg.load_weights(weights)
            weight_of = fg.total_weight
        for solution in enumerate_minimal_steiner_trees(
            cast(Graph, fg),
            map_query_vertices(index, terminals),
            meter=meter,
            backend=backend,
        ):
            yield weight_of(solution), solution
    else:
        for solution in enumerate_minimal_steiner_trees(
            graph, terminals, meter=meter
        ):
            yield tree_weight(weights, solution), solution


def enumerate_approximately_by_weight(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Mapping[int, Weight],
    lookahead: int = 64,
    meter=None,
    backend: str = "object",
) -> Iterator[Tuple[Weight, Solution]]:
    """Minimal Steiner trees in approximately ascending weight order.

    A bounded min-heap of size ``lookahead`` sits between the linear-delay
    enumerator and the caller: each step pulls one fresh solution into the
    heap and pops the lightest buffered one.  The stream is ``lookahead``-
    sorted; per-solution overhead is O(log lookahead) on top of the
    enumeration delay, so the linear-delay guarantee survives up to that
    logarithmic factor.  Buffered solutions with equal weight are
    released in RANKED ORDER (canonical edge-id tuple), independent of
    arrival order.

    Yields ``(weight, solution)`` pairs.
    """
    if lookahead < 1:
        raise ValueError("lookahead must be at least 1")
    check_backend(backend, kind="ranked")
    heap: List[Tuple[Tuple, Solution]] = []
    for weight, solution in _weighted_stream(
        graph, terminals, weights, meter, backend
    ):
        heapq.heappush(heap, (ranked_key(weight, solution), solution))
        if len(heap) > lookahead:
            key, sol = heapq.heappop(heap)
            yield (key[0], sol)
    while heap:
        key, sol = heapq.heappop(heap)
        yield (key[0], sol)


def top_k_minimal_steiner_trees(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Mapping[int, Weight],
    k: int,
    meter=None,
    backend: str = "object",
) -> Tuple[List[Tuple[Weight, Solution]], int]:
    """The exact top-``k`` plus the number of solutions scanned.

    Same contract as :func:`k_lightest_minimal_steiner_trees` (which
    delegates here) but also reports how many solutions the full
    enumeration streamed through the heap — the work measure the
    serving layer's answer provenance exposes, so an operator can see
    when a dataset's answer cost is enumeration-bound rather than k.

    Returns ``(results, scanned)`` with ``results`` ascending in
    RANKED ORDER.
    """
    check_backend(backend, kind="ranked")
    if k < 1:
        return [], 0
    # Max-heap on RANKED ORDER keys: heap[0] is the heaviest kept entry.
    heap: List[Tuple[_ReversedKey, Weight, Solution]] = []
    scanned = 0
    for weight, solution in _weighted_stream(
        graph, terminals, weights, meter, backend
    ):
        scanned += 1
        key = ranked_key(weight, solution)
        if len(heap) < k:
            heapq.heappush(heap, (_ReversedKey(key), weight, solution))
        elif key < heap[0][0].key:
            heapq.heapreplace(heap, (_ReversedKey(key), weight, solution))
    result = [(w, sol) for _rk, w, sol in heap]
    result.sort(key=lambda pair: ranked_key(pair[0], pair[1]))
    return result, scanned


def k_lightest_minimal_steiner_trees(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Mapping[int, Weight],
    k: int,
    meter=None,
    backend: str = "object",
) -> List[Tuple[Weight, Solution]]:
    """The exact ``k`` lightest minimal Steiner trees (total-time).

    Full enumeration with a size-``k`` max-heap: O(N log k) heap overhead
    over the amortized-linear enumeration of all ``N`` solutions.  Exact,
    sorted ascending in RANKED ORDER.
    """
    return top_k_minimal_steiner_trees(
        graph, terminals, weights, k, meter=meter, backend=backend
    )[0]


def weight_of_optimum(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Optional[Mapping[int, Weight]] = None,
) -> Weight:
    """Exact minimum Steiner tree weight (Dreyfus–Wagner)."""
    return dreyfus_wagner(graph, terminals, weights)[0]


def sortedness_defect(stream: Sequence[Weight]) -> int:
    """How far from sorted a weight stream is: max #positions any element
    would need to move left.  0 for a sorted stream; the approximate
    enumerator guarantees defect < lookahead.  Used by tests and the
    ranked-enumeration experiment."""
    defect = 0
    for i, w in enumerate(stream):
        for j in range(i):
            if stream[j] > w:
                defect = max(defect, i - j)
                break
    return defect

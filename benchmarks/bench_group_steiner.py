"""H-group — Theorem 38: group Steiner enumeration ≡ minimal transversal
enumeration.

Claims exercised: on star instances the two routes produce identical
families (per-solution bijection), and the solution count explodes
combinatorially — the experiment that makes the hardness tangible:
intersecting-pair hypergraphs on 2k elements have k-fold exponential
transversal counts while the input stays tiny.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table
from repro.core.group_steiner import (
    group_steiner_trees_via_transversals,
    minimal_transversals_via_group_steiner,
)
from repro.hypergraph.hypergraph import (
    Hypergraph,
    enumerate_minimal_transversals,
    random_hypergraph,
)

from benchutil import make_drainer


def matching_hypergraph(k: int) -> Hypergraph:
    """k disjoint pairs: exactly 2^k minimal transversals."""
    universe = range(2 * k)
    edges = [{2 * i, 2 * i + 1} for i in range(k)]
    return Hypergraph(universe, edges)


@pytest.mark.parametrize("k", [4, 8, 12], ids=lambda k: f"pairs{k}")
def test_transversal_enumeration(benchmark, k):
    h = matching_hypergraph(k)
    count = benchmark(make_drainer(lambda: enumerate_minimal_transversals(h)))
    assert count == 2**k


@pytest.mark.parametrize("seed", [0, 1, 2], ids=lambda s: f"rand{s}")
def test_group_steiner_route(benchmark, seed):
    h = random_hypergraph(6, 4, 3, seed)
    count = benchmark(
        make_drainer(lambda: minimal_transversals_via_group_steiner(h))
    )
    assert count == sum(1 for _ in enumerate_minimal_transversals(h))


def test_equivalence_table(benchmark):
    """Counts agree between the three routes; output explodes while the
    input stays constant-sized per pair."""
    rows = []
    for k in (2, 4, 6, 8):
        h = matching_hypergraph(k)
        direct = set(enumerate_minimal_transversals(h))
        via_group = set(minimal_transversals_via_group_steiner(h))
        reverse = sum(1 for _ in group_steiner_trees_via_transversals(h))
        assert direct == via_group
        assert reverse == len(direct) == 2**k
        rows.append((f"pairs{k}", 2 * k, k, len(direct)))
    print()
    print_table(
        "H-group: transversal ≡ group Steiner (star reduction)",
        ("hypergraph", "|U|", "|E|", "minimal solutions (both routes)"),
        rows,
    )
    benchmark(lambda: None)

"""Cross-module integration: different routes to the same answers."""

import random

import pytest

from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import (
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_linear_delay,
)
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.datagraph.kfragments import strong_kfragments, undirected_kfragments
from repro.datagraph.model import DataGraph
from repro.graphs.generators import (
    gadget_chain,
    grid_graph,
    random_connected_graph,
    random_terminals,
)
from repro.paths.read_tarjan import enumerate_st_paths_undirected

from conftest import random_simple_graph


class TestTwoTerminalEquivalences:
    """With |W| = 2 all tree notions collapse to s-t paths."""

    def test_steiner_trees_equal_paths(self):
        rng = random.Random(811)
        for _ in range(25):
            g = random_simple_graph(rng, max_n=7)
            s, t = 0, g.num_vertices - 1
            trees = set(enumerate_minimal_steiner_trees(g, [s, t]))
            paths = {
                frozenset(p.arcs)
                for p in enumerate_st_paths_undirected(g, s, t)
                if p.arcs
            }
            assert trees == paths

    def test_terminal_steiner_trees_equal_paths(self):
        rng = random.Random(821)
        for _ in range(25):
            g = random_simple_graph(rng, max_n=7)
            s, t = 0, g.num_vertices - 1
            trees = set(enumerate_minimal_terminal_steiner_trees(g, [s, t]))
            paths = {
                frozenset(p.arcs)
                for p in enumerate_st_paths_undirected(g, s, t)
                if p.arcs
            }
            assert trees == paths


class TestForestTreeEquivalence:
    def test_single_family_forest_equals_tree(self):
        rng = random.Random(831)
        for _ in range(20):
            g = random_simple_graph(rng, max_n=7)
            t = rng.randint(2, min(4, g.num_vertices))
            terminals = rng.sample(range(g.num_vertices), t)
            forests = set(enumerate_minimal_steiner_forests(g, [terminals]))
            trees = set(enumerate_minimal_steiner_trees(g, terminals))
            assert forests == trees


class TestDirectedUndirectedEquivalence:
    def test_symmetric_digraph_matches_undirected(self):
        """On the symmetric orientation with root = a terminal, minimal
        directed Steiner trees project onto minimal Steiner trees."""
        rng = random.Random(841)
        for _ in range(15):
            g = random_simple_graph(rng, max_n=6, p=0.6)
            n = g.num_vertices
            terminals = rng.sample(range(n), min(3, n))
            root, rest = terminals[0], terminals[1:]
            if not rest:
                continue
            d = g.to_directed()
            directed = {
                frozenset(a // 2 for a in sol)
                for sol in enumerate_minimal_directed_steiner_trees(d, rest, root)
            }
            undirected = set(enumerate_minimal_steiner_trees(g, terminals))
            assert directed == undirected


class TestRegulatedEnumerationEndToEnd:
    def test_linear_delay_variant_on_grid(self):
        g = grid_graph(3, 4)
        plain = set(enumerate_minimal_steiner_trees(g, [(0, 0), (2, 3)]))
        regulated = set(
            enumerate_minimal_steiner_trees_linear_delay(g, [(0, 0), (2, 3)])
        )
        assert plain == regulated
        assert len(plain) > 30

    def test_gadget_chain_exact_count_through_all_layers(self):
        g, s, t = gadget_chain(7)
        assert sum(1 for _ in enumerate_minimal_steiner_trees(g, [s, t])) == 128
        assert (
            sum(1 for _ in enumerate_minimal_steiner_trees_linear_delay(g, [s, t]))
            == 128
        )


class TestKeywordSearchEndToEnd:
    def _library(self) -> DataGraph:
        dg = DataGraph()
        rows = [
            ("db", ["database"]),
            ("ir", ["retrieval"]),
            ("kg", ["graph", "database"]),
            ("ml", ["learning"]),
        ]
        for name, kws in rows:
            dg.add_node(name, kws)
        dg.add_link("db", "kg")
        dg.add_link("kg", "ir")
        dg.add_link("ir", "ml")
        dg.add_link("db", "ml")
        return dg

    def test_fragments_agree_with_direct_steiner_call(self):
        dg = self._library()
        query = dg.query_graph(["database", "learning"])
        direct = set(
            enumerate_minimal_steiner_trees(query.graph, query.terminals)
        )
        # same number of answers either way
        assert len(list(undirected_kfragments(dg, ["database", "learning"]))) == len(
            direct
        )

    def test_strong_fragments_never_use_match_nodes_as_connectors(self):
        dg = self._library()
        for f in strong_kfragments(dg, ["database", "retrieval"]):
            matched = {node for _, node in f.matches}
            sub = dg.graph.edge_subgraph(f.structural_edges) if f.structural_edges else None
            if sub is None:
                continue
            for node in matched:
                if node in sub:
                    assert sub.degree(node) <= 1


class TestStress:
    @pytest.mark.slow
    def test_medium_instance_full_enumeration(self):
        """A mid-size instance end-to-end: everything enumerated, no
        duplicates, all verified."""
        from repro.core.verification import is_minimal_steiner_tree

        g = random_connected_graph(25, 12, 2022)
        terminals = random_terminals(g, 5, 7)
        seen = set()
        for sol in enumerate_minimal_steiner_trees(g, terminals):
            assert sol not in seen
            seen.add(sol)
            assert is_minimal_steiner_tree(g, sol, terminals)
        assert len(seen) > 10

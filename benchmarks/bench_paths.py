"""T1-paths — s-t path enumeration delay (Section 3, Theorem 12).

Claim exercised: the Read–Tarjan enumerator has O(n+m) delay.  Theta
graphs hold the solution count fixed (k paths) while the instance grows,
so any super-linear delay would show up directly in the normalized
max-delay column; grids provide the many-solutions regime.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import fit_linearity, measure_enumeration, print_table
from repro.bench.workloads import path_grid_sweep, path_theta_sweep
from repro.paths.read_tarjan import enumerate_st_paths_undirected

from benchutil import make_drainer


@pytest.mark.parametrize("case", path_theta_sweep(), ids=lambda c: c[0])
def test_theta_enumeration(benchmark, case):
    name, graph, s, t = case
    count = benchmark(make_drainer(lambda: enumerate_st_paths_undirected(graph, s, t)))
    assert count == 8  # theta(k=8, *) has exactly 8 paths


@pytest.mark.parametrize("case", path_grid_sweep(), ids=lambda c: c[0])
def test_grid_enumeration(benchmark, case):
    name, graph, s, t = case
    count = benchmark(make_drainer(lambda: enumerate_st_paths_undirected(graph, s, t)))
    assert count > 20


def test_delay_scaling_table(benchmark):
    """Normalized max delay stays flat as n+m grows 16x (linear shape)."""
    rows = []
    sizes, delays = [], []
    for name, graph, s, t in path_theta_sweep():
        m = measure_enumeration(
            name,
            graph.size,
            lambda meter, g=graph, a=s, b=t: enumerate_st_paths_undirected(
                g, a, b, meter=meter
            ),
        )
        sizes.append(m.size)
        delays.append(m.metered.max_delay)
        rows.append(
            (m.label, m.size, m.solutions, m.max_delay_ops, m.normalized_max_delay)
        )
    exponent, r2 = fit_linearity(sizes, delays)
    print()
    print_table(
        "T1-paths: delay vs n+m (theta graphs, solution count fixed)",
        ("instance", "n+m", "solutions", "max delay (ops)", "delay/(n+m)"),
        rows,
    )
    print(f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); paper predicts 1.0")
    assert 0.7 <= exponent <= 1.3
    benchmark(lambda: None)  # registers the test with --benchmark-only

"""Streaming-service benchmark: concurrency throughput + warm replay gate.

Spins up a real :class:`repro.serve.EnumerationServer` (in-process, on
an ephemeral port, with a temporary persistent store) and measures the
full network path — HTTP request, worker-pool enumeration, chunked
NDJSON streaming, store write-back — under concurrent clients:

1. **Cold phase** — ``BENCH_SERVE_CLIENTS`` (default 4) threads each
   stream a *distinct* enumeration job concurrently.  Every stream is
   checked byte-for-byte against :func:`repro.engine.jobs.run_job`, and
   per-client wall time + time-to-first-solution are recorded.
2. **Warm phase** — the same clients repeat the same jobs; every
   stream must now replay from the result store (``cached: true``),
   byte-identical to the cold pass.
3. **Restart phase** — a brand-new server over the same store
   directory serves one of the jobs; it must still replay warm
   (persistence across restarts).

Gates (all hard failures):

* all cold streams byte-identical to the reference enumeration;
* all warm streams replayed (``cached``) and byte-identical to cold;
* aggregate warm speedup >= ``BENCH_SERVE_GATE`` (default 5.0);
* the post-restart stream replays from the store.

Environment knobs: ``BENCH_SERVE_CLIENTS`` (concurrent clients, >= 4
for the acceptance criterion), ``BENCH_SERVE_WORKERS`` (pool size),
``BENCH_SERVE_GATE`` (warm-speedup floor), ``BENCH_SERVE_LIMIT``
(solutions per job).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

from repro.engine.jobs import EnumerationJob, run_job
from repro.serve import EnumerationServer, ServeClient, ServerThread


def client_jobs(count: int, limit: int) -> List[EnumerationJob]:
    """``count`` distinct mid-size jobs (distinct instances: no
    accidental cache sharing during the cold phase)."""
    import random

    jobs: List[EnumerationJob] = []
    for c in range(count):
        rng = random.Random(1000 + c)
        n = 30
        edges = set()
        # A connected ring + random chords: dense enough to enumerate
        # hundreds of Steiner trees, small enough to stay in budget.
        for i in range(n):
            edges.add((f"c{c}n{i}", f"c{c}n{(i + 1) % n}"))
        while len(edges) < int(n * 2.2):
            u, v = rng.sample(range(n), 2)
            edges.add((f"c{c}n{min(u, v)}", f"c{c}n{max(u, v)}"))
        terminals = [f"c{c}n0", f"c{c}n{n // 3}", f"c{c}n{2 * n // 3}"]
        jobs.append(
            EnumerationJob.steiner_tree(
                sorted(edges), terminals, limit=limit, job_id=f"client{c}"
            )
        )
    return jobs


def stream_once(
    port: int, job: EnumerationJob, chunk: int = 32
) -> Tuple[Tuple[str, ...], float, float, bool]:
    """Stream ``job``; returns (lines, wall_s, first_solution_s, cached)."""
    client = ServeClient(port=port, timeout=300)
    start = time.perf_counter()
    first = None
    lines: List[str] = []
    cached = False
    for event in client.enumerate(job, chunk=chunk):
        if event["event"] == "solution":
            if first is None:
                first = time.perf_counter() - start
            lines.append(event["line"])
        elif event["event"] == "end":
            cached = bool(event["cached"])
    wall = time.perf_counter() - start
    return tuple(lines), wall, first if first is not None else wall, cached


def run_phase(
    port: int, jobs: List[EnumerationJob]
) -> Tuple[float, List[Tuple[Tuple[str, ...], float, float, bool]]]:
    """All jobs concurrently (one thread per client); returns the
    phase's wall clock and the per-client measurements."""
    results: List = [None] * len(jobs)
    errors: List = []

    def worker(i: int) -> None:
        try:
            results[i] = stream_once(port, jobs[i])
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append((i, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(jobs))]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise AssertionError(f"client streams failed: {errors}")
    return wall, results


def main() -> int:
    clients = int(os.environ.get("BENCH_SERVE_CLIENTS", "4"))
    workers = int(os.environ.get("BENCH_SERVE_WORKERS", "2"))
    gate = float(os.environ.get("BENCH_SERVE_GATE", "5.0"))
    limit = int(os.environ.get("BENCH_SERVE_LIMIT", "800"))
    if clients < 4:
        print("warning: acceptance criterion needs >= 4 clients", file=sys.stderr)

    jobs = client_jobs(clients, limit)
    print(f"reference enumeration of {clients} jobs ...")
    expected = [run_job(job).lines for job in jobs]
    store_dir = tempfile.mkdtemp(prefix="bench-serve-")
    failures: List[str] = []
    stats: Dict[str, float] = {}
    try:
        with ServerThread(
            EnumerationServer(workers=workers, store=store_dir)
        ) as thread:
            print(
                f"server up on :{thread.port} "
                f"({workers} workers, {clients} concurrent clients)"
            )
            cold_wall, cold = run_phase(thread.port, jobs)
            for i, (lines, _w, _f, _c) in enumerate(cold):
                if lines != expected[i]:
                    failures.append(f"cold stream {i} diverged from run_job")
            solutions = sum(len(r[0]) for r in cold)
            first_lat = [r[2] for r in cold]
            print(
                f"cold: {cold_wall:.3f}s wall, {solutions} solutions "
                f"({solutions / cold_wall:.0f} sols/s aggregate), "
                f"first-solution latency avg {sum(first_lat)/len(first_lat)*1000:.1f}ms "
                f"max {max(first_lat)*1000:.1f}ms"
            )

            warm_wall, warm = run_phase(thread.port, jobs)
            for i, (lines, _w, _f, cached) in enumerate(warm):
                if lines != cold[i][0]:
                    failures.append(f"warm stream {i} diverged from the cold pass")
                if not cached:
                    failures.append(f"warm stream {i} was not served from the store")
            speedup = cold_wall / warm_wall if warm_wall else float("inf")
            print(
                f"warm: {warm_wall:.3f}s wall, replay speedup {speedup:.1f}x "
                f"(gate >= {gate:.1f}x)"
            )
            if speedup < gate:
                failures.append(
                    f"warm replay speedup {speedup:.2f}x below the {gate:.1f}x gate"
                )
            stats.update(
                cold_wall=cold_wall, warm_wall=warm_wall, speedup=speedup,
            )

        # Restart persistence: a fresh server over the same store.
        with ServerThread(
            EnumerationServer(workers=1, store=store_dir)
        ) as thread:
            lines, wall, _first, cached = stream_once(thread.port, jobs[0])
            print(
                f"restart: stream replayed in {wall*1000:.1f}ms "
                f"(cached={cached})"
            )
            if not cached:
                failures.append("post-restart stream was not served from the store")
            if lines != expected[0]:
                failures.append("post-restart stream diverged")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    if failures:
        print("BENCH-SERVE FAILURES:", file=sys.stderr)
        for message in failures:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print(
        f"bench-serve ok: {clients} concurrent clients sustained, "
        f"warm replay {stats['speedup']:.1f}x >= {gate:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Priority-aware admission to the enumeration worker pool.

The server used to gate live enumerations with a plain
``asyncio.Semaphore(workers)`` — strictly FIFO, so one burst of free-tier
traffic queues ahead of every paid request that arrives after it.
:class:`PriorityGate` keeps the same bounded-concurrency contract but
grants freed slots to the **highest-priority waiter** instead of the
oldest one, with one escape hatch: every ``fairness_every``-th grant
goes to the longest-waiting request regardless of priority, so a
saturating stream of high-priority work can delay low tiers but never
starve them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional


class _Slot:
    """Context manager returned by :meth:`PriorityGate.slot`."""

    __slots__ = ("_gate", "_priority")

    def __init__(self, gate: "PriorityGate", priority: int) -> None:
        self._gate = gate
        self._priority = priority

    async def __aenter__(self) -> None:
        await self._gate.acquire(self._priority)

    async def __aexit__(self, *exc: Any) -> None:
        self._gate.release()


class PriorityGate:
    """A counted gate whose waiters are served by priority, fairly.

    Parameters
    ----------
    slots:
        Concurrent holders allowed (the worker-pool size).
    fairness_every:
        Every ``fairness_every``-th grant that has a choice of waiters
        picks the longest-waiting one instead of the highest-priority
        one.  ``0`` disables the escape hatch (pure priority order).

    Examples
    --------
    ::

        gate = PriorityGate(workers)
        async with gate.slot(priority=tenant.priority):
            ...  # drive one worker stream
    """

    def __init__(self, slots: int, fairness_every: int = 4) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self._slots = slots
        self._free = slots
        self._fairness_every = fairness_every
        self._seq = 0
        # (priority, arrival seq, future); selection scans the list —
        # the waiter set is bounded by concurrent client connections.
        self._waiters: List[List[Any]] = []
        self.grants = 0
        self.fairness_grants = 0

    # ------------------------------------------------------------------
    def slot(self, priority: int = 0) -> _Slot:
        """An ``async with`` context holding one slot at ``priority``."""
        return _Slot(self, priority)

    async def acquire(self, priority: int = 0) -> None:
        """Take a slot, waiting behind higher-priority requests."""
        if self._free > 0 and not self._waiters:
            self._free -= 1
            self.grants += 1
            return
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        entry = [priority, self._seq, future]
        self._seq += 1
        self._waiters.append(entry)
        try:
            await future
        except asyncio.CancelledError:
            if entry in self._waiters:
                self._waiters.remove(entry)
            elif future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: give it back.
                self.release()
            raise

    def release(self) -> None:
        """Return a slot and wake the next waiter (if any)."""
        self._free += 1
        self._wake()

    def _wake(self) -> None:
        while self._free > 0 and self._waiters:
            fair_turn = (
                self._fairness_every > 0
                and (self.grants + 1) % self._fairness_every == 0
            )
            if fair_turn:
                entry = min(self._waiters, key=lambda e: e[1])  # oldest
                self.fairness_grants += 1
            else:
                # Highest priority; FIFO within a priority class.
                entry = max(self._waiters, key=lambda e: (e[0], -e[1]))
            self._waiters.remove(entry)
            future: Optional[asyncio.Future] = entry[2]
            if future is None or future.done():
                continue  # cancelled while queued
            self._free -= 1
            self.grants += 1
            future.set_result(None)

    # ------------------------------------------------------------------
    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        return len(self._waiters)

    def as_dict(self) -> Dict[str, int]:
        """Scheduler counters for the metrics endpoint."""
        return {
            "slots": self._slots,
            "free": self._free,
            "waiting": self.waiting,
            "grants": self.grants,
            "fairness_grants": self.fairness_grants,
        }

"""Minimal Steiner forest enumeration (Section 5, Theorems 23/25).

The paper reduces terminal *families* to terminal *pairs*
(``{w1,...,wk} → {w1,w2}, {w1,w3}, ...``, the normalization before
Lemma 21) and grows a partial forest ``F`` one pair at a time:

* branching enumerates ``w``-``w'`` paths in the contracted multigraph
  ``G/E(F)`` — parallel edges kept, edge ids preserved, so each contracted
  path maps straight back to an original edge set (Lemma 21/24's
  one-to-one correspondence);
* the improved node test (Lemma 24) computes bridges of ``G/E(F)``: a
  pending pair has a *unique* valid path iff its endpoints are joined by
  bridges alone; if every pending pair is unique, the node is a leaf and
  the unique completion is extracted by the LCA marking pass of
  Theorem 25 (``F`` + bridges, keep exactly the edges on some pair path).

Solutions are frozensets of edge ids; amortized O(n+m) per solution, and
O(m)-delay with the output-queue regulator (Theorem 25's second half).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.backend import check_backend, compile_undirected, map_query_vertex
from repro.enumeration.events import DISCOVER, EXAMINE, SOLUTION, Event
from repro.enumeration.queue_method import regulate
from repro.exceptions import InvalidInstanceError
from repro.graphs.bridges import find_bridges
from repro.graphs.contraction import contract_edges
from repro.graphs.fastgraph import (
    contracted_kernel,
    fast_bridges,
    fast_component_labels,
)
from repro.graphs.graph import Graph
from repro.graphs.lca import LCAIndex, mark_terminal_paths
from repro.graphs.traversal import component_of, connected_components
from repro.paths.fastpaths import fast_enumerate_st_paths_undirected
from repro.paths.read_tarjan import enumerate_st_paths_undirected

Vertex = Hashable
Solution = FrozenSet[int]
Pair = Tuple[Vertex, Vertex]


def normalize_families(
    graph: Graph, families: Sequence[Sequence[Vertex]]
) -> List[Pair]:
    """Reduce terminal families to pairs (the paper's normalization).

    ``{w1, ..., wk}`` becomes ``{w1, w2}, ..., {w1, wk}``; singleton and
    empty families impose no constraint and are dropped; duplicate pairs
    are kept only once.  Raises if a terminal is missing from the graph.
    """
    pairs: List[Pair] = []
    seen: Set[FrozenSet[Vertex]] = set()
    for family in families:
        distinct = list(dict.fromkeys(family))
        for w in distinct:
            if w not in graph:
                raise InvalidInstanceError(f"terminal {w!r} is not in the graph")
        if len(distinct) < 2:
            continue
        anchor = distinct[0]
        for other in distinct[1:]:
            key = frozenset((anchor, other))
            if key not in seen:
                seen.add(key)
                pairs.append((anchor, other))
    return pairs


def _pairs_connected_in_graph(
    graph: Graph, pairs: Sequence[Pair], meter
) -> bool:
    """Each pair must lie in one connected component of ``G``."""
    label: Dict[Vertex, int] = {}
    for i, comp in enumerate(connected_components(graph, meter=meter)):
        for v in comp:
            label[v] = i
    return all(label[a] == label[b] for a, b in pairs)


class _ForestState:
    """The partial forest ``F`` plus a component id map refreshed per node."""

    __slots__ = ("edges",)

    def __init__(self) -> None:
        self.edges: Set[int] = set()

    def apply(self, eids: Sequence[int]) -> Tuple[int, ...]:
        fresh = tuple(e for e in eids if e not in self.edges)
        self.edges.update(fresh)
        return fresh

    def undo(self, record: Tuple[int, ...]) -> None:
        self.edges.difference_update(record)


def _forest_components(graph: Graph, edges: Set[int]) -> Dict[Vertex, Vertex]:
    """Union-find roots of the forest ``F`` over all graph vertices."""
    parent: Dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(x: Vertex) -> Vertex:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for eid in edges:
        u, v = graph.endpoints(eid)
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    return {v: find(v) for v in parent}


def _unique_completion(
    graph: Graph,
    forest_edges: Set[int],
    bridge_eids: Set[int],
    pairs: Sequence[Pair],
    meter,
) -> Solution:
    """Theorem 25 leaf: extract the unique minimal Steiner forest.

    Candidate forest = ``F`` + bridges of ``G/E(F)``; keep exactly the
    edges marked by the LCA pass over all terminal pairs.
    """
    candidate = set(forest_edges) | set(bridge_eids)
    sub = graph.edge_subgraph(candidate)
    for a, b in pairs:
        sub.add_vertex(a) if a in graph else None
        sub.add_vertex(b) if b in graph else None
    marked: Set[int] = set()
    assigned: Set[Vertex] = set()
    for root in list(sub.vertices()):
        if root in assigned:
            continue
        comp = component_of(sub, root)
        assigned |= comp
        comp_pairs = [(a, b) for a, b in pairs if a in comp and b in comp]
        if not comp_pairs:
            continue
        index = LCAIndex(sub, root)
        marked |= mark_terminal_paths(index, comp_pairs, meter=meter)
    return frozenset(marked)


def _fast_steiner_forest_events(
    graph, pairs: List[Pair], meter, improved: bool
) -> Iterator[Event]:
    """Fast-backend event stream (kernel contraction + kernel paths).

    Per node the contracted graph is rebuilt as a kernel
    (:func:`repro.graphs.fastgraph.contracted_kernel`), whose surviving
    edges appear in the same global order as the object backend's
    ``contract_edges`` output — the stream order never observes the
    component labels themselves, so the solution stream matches.  The
    leaf extraction (:func:`_unique_completion`) is shared with the
    object backend: it runs on the *original* instance either way.
    """
    fg, index = compile_undirected(graph)
    pairs = [(map_query_vertex(index, a), map_query_vertex(index, b)) for a, b in pairs]
    labels = fast_component_labels(fg, meter=meter)
    if any(labels[a] != labels[b] for a, b in pairs):
        return

    state = _ForestState()
    node_counter = 0
    n_space = fg.n_space

    def node_action() -> Tuple[str, object]:
        # Union-find over the partial forest: pending pairs.
        parent = list(range(n_space))
        eu, ev = fg._eu, fg._ev
        for eid in state.edges:
            ru = eu[eid]
            while parent[ru] != ru:
                parent[ru] = parent[parent[ru]]
                ru = parent[ru]
            rv = ev[eid]
            while parent[rv] != rv:
                parent[rv] = parent[parent[rv]]
                rv = parent[rv]
            if ru != rv:
                parent[ru] = rv

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        pending = [(a, b) for a, b in pairs if find(a) != find(b)]
        if not pending:
            return ("leaf", frozenset(state.edges))
        ck, vmap = contracted_kernel(fg, state.edges, meter=meter)
        if meter is not None:
            meter.tick(ck.num_edges + ck.num_vertices)
        if not improved:
            a, b = pending[0]
            return ("branch", (a, b, ck, vmap))
        bridges = fast_bridges(ck, meter=meter)
        bparent = list(range(ck.n_space))
        ceu, cev = ck._eu, ck._ev
        for eid in bridges:
            ru = ceu[eid]
            while bparent[ru] != ru:
                bparent[ru] = bparent[bparent[ru]]
                ru = bparent[ru]
            rv = cev[eid]
            while bparent[rv] != rv:
                bparent[rv] = bparent[bparent[rv]]
                rv = bparent[rv]
            if ru != rv:
                bparent[ru] = rv

        def bfind(x: int) -> int:
            while bparent[x] != x:
                bparent[x] = bparent[bparent[x]]
                x = bparent[x]
            return x

        for a, b in pending:
            if bfind(vmap[a]) != bfind(vmap[b]):
                return ("branch", (a, b, ck, vmap))
        return ("leaf", _unique_completion(fg, state.edges, bridges, pairs, meter))

    def child_paths(branch_payload):
        a, b, ck, vmap = branch_payload
        return fast_enumerate_st_paths_undirected(ck, vmap[a], vmap[b], meter=meter)

    yield (DISCOVER, node_counter, 0)
    kind, payload = node_action()
    if kind == "leaf":
        yield (SOLUTION, payload)
        yield (EXAMINE, node_counter, 0)
        return

    stack: List[List[object]] = [[child_paths(payload), None, node_counter, 0]]
    while stack:
        frame = stack[-1]
        paths, _undo, node_id, depth = frame
        path = next(paths, None)  # type: ignore[arg-type]
        if path is None:
            yield (EXAMINE, node_id, depth)
            stack.pop()
            if frame[1] is not None:
                state.undo(frame[1])
            continue
        record = state.apply(path.arcs)
        node_counter += 1
        yield (DISCOVER, node_counter, depth + 1)
        kind, payload = node_action()
        if kind == "leaf":
            yield (SOLUTION, payload)
            yield (EXAMINE, node_counter, depth + 1)
            state.undo(record)
            continue
        stack.append([child_paths(payload), record, node_counter, depth + 1])


def steiner_forest_events(
    graph: Graph,
    families: Sequence[Sequence[Vertex]],
    meter=None,
    improved: bool = True,
    backend: str = "object",
) -> Iterator[Event]:
    """Event stream of the Steiner-forest enumeration-tree traversal."""
    check_backend(backend)
    pairs = normalize_families(graph, families)
    if not pairs:
        # No constraints: the empty forest is the unique minimal solution.
        yield (DISCOVER, 0, 0)
        yield (SOLUTION, frozenset())
        yield (EXAMINE, 0, 0)
        return
    if backend == "fast":
        yield from _fast_steiner_forest_events(graph, pairs, meter, improved)
        return
    if not _pairs_connected_in_graph(graph, pairs, meter):
        return

    state = _ForestState()
    node_counter = 0

    def node_action() -> Tuple[str, object]:
        """Leaf/branch decision for the current partial forest."""
        roots = _forest_components(graph, state.edges)
        pending = [(a, b) for a, b in pairs if roots[a] != roots[b]]
        if not pending:
            return ("leaf", frozenset(state.edges))
        contraction = contract_edges(graph, state.edges)
        cgraph = contraction.graph
        vmap = contraction.vertex_map
        if meter is not None:
            meter.tick(cgraph.num_edges + cgraph.num_vertices)
        if not improved:
            a, b = pending[0]
            return ("branch", (a, b, cgraph, vmap))
        bridges = find_bridges(cgraph, meter=meter)
        # Union-find over bridge edges: pairs joined by bridges alone have
        # a unique valid path (Lemma 24).
        parent: Dict[Vertex, Vertex] = {v: v for v in cgraph.vertices()}

        def find(x: Vertex) -> Vertex:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for eid in bridges:
            u, v = cgraph.endpoints(eid)
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        for a, b in pending:
            if find(vmap[a]) != find(vmap[b]):
                return ("branch", (a, b, cgraph, vmap))
        return ("leaf", _unique_completion(graph, state.edges, bridges, pairs, meter))

    def child_paths(branch_payload):
        a, b, cgraph, vmap = branch_payload
        return enumerate_st_paths_undirected(cgraph, vmap[a], vmap[b], meter=meter)

    yield (DISCOVER, node_counter, 0)
    kind, payload = node_action()
    if kind == "leaf":
        yield (SOLUTION, payload)
        yield (EXAMINE, node_counter, 0)
        return

    stack: List[List[object]] = [[child_paths(payload), None, node_counter, 0]]
    while stack:
        frame = stack[-1]
        paths, _undo, node_id, depth = frame
        path = next(paths, None)  # type: ignore[arg-type]
        if path is None:
            yield (EXAMINE, node_id, depth)
            stack.pop()
            if frame[1] is not None:
                state.undo(frame[1])
            continue
        record = state.apply(path.arcs)
        node_counter += 1
        yield (DISCOVER, node_counter, depth + 1)
        kind, payload = node_action()
        if kind == "leaf":
            yield (SOLUTION, payload)
            yield (EXAMINE, node_counter, depth + 1)
            state.undo(record)
            continue
        stack.append([child_paths(payload), record, node_counter, depth + 1])


def enumerate_minimal_steiner_forests(
    graph: Graph,
    families: Sequence[Sequence[Vertex]],
    meter=None,
    backend: str = "object",
) -> Iterator[Solution]:
    """Enumerate all minimal Steiner forests of ``(G, {W_1, ..., W_s})``.

    Improved branching: amortized O(n+m) per solution (Theorem 25).
    Yields frozensets of edge ids, each exactly once.

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    >>> sorted(sorted(s) for s in enumerate_minimal_steiner_forests(g, [["a", "b"]]))
    [[0], [1, 2]]
    """
    for event in steiner_forest_events(
        graph, families, meter=meter, improved=True, backend=backend
    ):
        if event[0] == SOLUTION:
            yield event[1]


def enumerate_minimal_steiner_forests_simple(
    graph: Graph,
    families: Sequence[Sequence[Vertex]],
    meter=None,
    backend: str = "object",
) -> Iterator[Solution]:
    """Unimproved branching (Theorem 23 bound): O(t(n+m)) delay."""
    for event in steiner_forest_events(
        graph, families, meter=meter, improved=False, backend=backend
    ):
        if event[0] == SOLUTION:
            yield event[1]


def enumerate_minimal_steiner_forests_linear_delay(
    graph: Graph,
    families: Sequence[Sequence[Vertex]],
    meter=None,
    window: Optional[int] = None,
    backend: str = "object",
) -> Iterator[Solution]:
    """Theorem 25 second half: O(m) delay via the output-queue regulator."""
    events = steiner_forest_events(
        graph, families, meter=meter, improved=True, backend=backend
    )
    kwargs = {} if window is None else {"window": window}
    return regulate(events, prime=graph.num_vertices, **kwargs)


def count_minimal_steiner_forests(
    graph: Graph, families: Sequence[Sequence[Vertex]]
) -> int:
    """Number of minimal Steiner forests (convenience wrapper)."""
    return sum(1 for _ in enumerate_minimal_steiner_forests(graph, families))

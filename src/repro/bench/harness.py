"""Measurement harness for the Table 1 / Figure 1 experiments.

The paper's claims are about *delay* — worst-case work between
consecutive solutions.  :func:`measure_enumeration` runs an enumerator
factory under both instruments (wall clock and the operation meter) and
returns a :class:`Measurement`; :func:`print_table` renders rows the way
EXPERIMENTS.md records them, and :func:`fit_linearity` summarizes how a
series of delays scales against ``n + m`` (the paper's unit).

:func:`measure_batch` is the engine-backed workload mode: it pushes a
batch of :class:`repro.engine.EnumerationJob` specs through
:func:`repro.engine.run_batch` and reports *throughput* (jobs/s,
solutions/s) plus an output digest, so batch-level regressions — and
accidental nondeterminism across worker counts — show up in benchmarks
the same way delay regressions do.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.enumeration.delay import CostMeter, DelayStats, MeteredDelayRecorder


@dataclass
class Measurement:
    """One enumeration run's delay profile.

    ``metered`` delays are in substrate operations (edge scans); ``wall``
    delays in seconds.  ``size`` is the instance's ``n + m``.
    """

    label: str
    size: int
    solutions: int
    metered: DelayStats
    wall_seconds: float

    @property
    def max_delay_ops(self) -> int:
        """Worst metered delay (the paper's bounded quantity)."""
        return int(self.metered.max_delay)

    @property
    def amortized_ops(self) -> float:
        """Metered operations per solution."""
        return self.metered.amortized

    @property
    def normalized_max_delay(self) -> float:
        """Max delay divided by ``n + m`` — flat iff delay is O(n+m)."""
        return self.metered.max_delay / self.size if self.size else 0.0

    @property
    def normalized_amortized(self) -> float:
        """Amortized cost divided by ``n + m``."""
        return self.amortized_ops / self.size if self.size else 0.0


def measure_enumeration(
    label: str,
    size: int,
    factory: Callable[[CostMeter], Iterable],
    limit: Optional[int] = None,
) -> Measurement:
    """Run ``factory(meter)`` to exhaustion (or ``limit`` solutions).

    The factory receives a fresh meter and must return the enumerator
    wired to it.  Wall time covers the same span as the metered stats.
    """
    meter = CostMeter()
    recorder = MeteredDelayRecorder(factory(meter), meter)
    start = time.perf_counter()
    produced = 0
    for _solution in recorder:
        produced += 1
        if limit is not None and produced >= limit:
            break
    wall = time.perf_counter() - start
    return Measurement(label, size, produced, recorder.stats, wall)


def print_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    out=None,
) -> str:
    """Render an aligned text table (and print it); returns the text."""
    widths = [len(h) for h in header]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(rendered)))
    text = "\n".join(lines)
    print(text, file=out)
    return text


@dataclass
class BatchMeasurement:
    """One engine batch run's throughput profile.

    ``digest`` is a SHA-256 over every result's rendered lines in job
    order; two runs of the same batch must agree on it regardless of
    worker count (the engine's determinism contract).
    """

    label: str
    workers: int
    jobs: int
    solutions: int
    wall_seconds: float
    digest: str
    cache_hits: int = 0

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall-clock second."""
        return self.jobs / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def solutions_per_second(self) -> float:
        """Enumerated solutions per wall-clock second."""
        return self.solutions / self.wall_seconds if self.wall_seconds else 0.0


def measure_batch(
    jobs: Sequence,
    workers: int = 1,
    label: str = "batch",
    cache=None,
) -> BatchMeasurement:
    """Run ``jobs`` through the engine pool and time the whole batch.

    ``cache`` is forwarded to :func:`repro.engine.run_batch` (pass an
    :class:`repro.engine.InstanceCache` to measure warm-cache serving;
    the default ``None`` measures pure enumeration throughput).
    """
    import hashlib

    from repro.engine.pool import run_batch

    start = time.perf_counter()
    results = run_batch(jobs, workers=workers, cache=cache)
    wall = time.perf_counter() - start
    hasher = hashlib.sha256()
    for result in results:
        for line in result.lines:
            hasher.update(line.encode())
            hasher.update(b"\n")
        hasher.update(b"\x00")
    return BatchMeasurement(
        label=label,
        workers=workers,
        jobs=len(results),
        solutions=sum(r.count for r in results),
        wall_seconds=wall,
        digest=hasher.hexdigest(),
        cache_hits=sum(1 for r in results if r.cached),
    )


@dataclass
class BackendComparison:
    """One instance's object-vs-fast backend measurement.

    ``identical`` certifies the two backends produced the same ordered
    solution stream before any timing ran; the speedup is
    ``object_seconds / fast_seconds`` over best-of-``reps`` interleaved
    runs (interleaving cancels CPU-frequency drift).
    """

    label: str
    size: int
    solutions: int
    object_seconds: float
    fast_seconds: float
    identical: bool

    @property
    def speedup(self) -> float:
        """Wall-clock ratio object/fast (>1 means the kernel wins)."""
        return (
            self.object_seconds / self.fast_seconds if self.fast_seconds else 0.0
        )

    @property
    def fast_solutions_per_second(self) -> float:
        """Fast-backend throughput."""
        return self.solutions / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def object_solutions_per_second(self) -> float:
        """Object-backend throughput."""
        return self.solutions / self.object_seconds if self.object_seconds else 0.0


def compare_backends(
    label: str,
    size: int,
    factory: Callable[[str], Iterable],
    limit: Optional[int] = None,
    reps: int = 3,
) -> BackendComparison:
    """Time ``factory(backend)`` for both backends on one instance.

    ``factory`` must return a fresh enumerator for ``"object"`` or
    ``"fast"``.  The two streams are first drained once each and
    compared element-by-element (a mismatch raises ``AssertionError`` —
    the backends' equivalence contract is part of the benchmark), then
    each backend is timed ``reps`` times interleaved and the best run
    kept.
    """

    def drain(backend: str) -> list:
        out = []
        for solution in factory(backend):
            out.append(solution)
            if limit is not None and len(out) >= limit:
                break
        return out

    reference = drain("object")
    candidate = drain("fast")
    identical = reference == candidate
    if not identical:
        raise AssertionError(
            f"{label}: fast backend diverged from the object backend "
            f"({len(reference)} vs {len(candidate)} solutions)"
        )
    best_object = best_fast = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        drain("object")
        best_object = min(best_object, time.perf_counter() - start)
        start = time.perf_counter()
        drain("fast")
        best_fast = min(best_fast, time.perf_counter() - start)
    return BackendComparison(
        label=label,
        size=size,
        solutions=len(reference),
        object_seconds=best_object,
        fast_seconds=best_fast,
        identical=identical,
    )


def summarize_backend_comparisons(
    comparisons: Sequence[BackendComparison],
) -> Tuple[float, float]:
    """Aggregate speedups: ``(geometric mean, total-time ratio)``.

    The total-time ratio weighs instances by how long they actually
    take, which is the honest "aggregate throughput" number.
    """
    ratios = [c.speedup for c in comparisons if c.speedup > 0]
    if not ratios:
        return (0.0, 0.0)
    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    total_object = sum(c.object_seconds for c in comparisons)
    total_fast = sum(c.fast_seconds for c in comparisons)
    return (geo, total_object / total_fast if total_fast else 0.0)


def fit_linearity(sizes: Sequence[float], values: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``log(value) ~ a + b·log(size)``.

    Returns ``(exponent b, r²)``.  ``b ≈ 1`` confirms a linear shape,
    ``b ≈ 2`` quadratic, etc.  Points with non-positive values are
    dropped (they carry no scaling information).
    """
    pts = [
        (math.log(s), math.log(v))
        for s, v in zip(sizes, values)
        if s > 0 and v > 0
    ]
    if len(pts) < 2:
        return (0.0, 0.0)
    n = len(pts)
    mx = sum(x for x, _ in pts) / n
    my = sum(y for _, y in pts) / n
    sxx = sum((x - mx) ** 2 for x, _ in pts)
    sxy = sum((x - mx) * (y - my) for x, y in pts)
    if sxx == 0:
        return (0.0, 0.0)
    b = sxy / sxx
    syy = sum((y - my) ** 2 for _, y in pts)
    r2 = (sxy * sxy) / (sxx * syy) if syy > 0 else 1.0
    return (b, r2)

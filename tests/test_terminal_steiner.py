"""Minimal terminal Steiner tree enumeration (Section 5.1)."""

import random

import pytest

from repro.core.baselines import brute_force_minimal_terminal_steiner_trees
from repro.core.terminal_steiner import (
    count_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees_linear_delay,
    enumerate_minimal_terminal_steiner_trees_simple,
    valid_components,
)
from repro.core.verification import is_minimal_terminal_steiner_tree
from repro.exceptions import InvalidInstanceError
from repro.graphs.generators import random_bipartite_terminal_instance
from repro.graphs.graph import Graph
from repro.graphs.spanning import tree_leaves

from conftest import random_simple_graph

ALL_VARIANTS = [
    enumerate_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees_simple,
    enumerate_minimal_terminal_steiner_trees_linear_delay,
]


class TestValidComponents:
    def test_lemma_27_filter(self):
        # component {x} sees both terminals; component {y} sees only w2
        g = Graph.from_edges([("w1", "x"), ("x", "w2"), ("y", "w2")])
        comps = valid_components(g, ["w1", "w2"])
        assert comps == [{"x"}]

    def test_no_valid_component(self):
        g = Graph.from_edges([("w1", "x"), ("y", "w2"), ("x", "w1")] )
        assert valid_components(g, ["w1", "w2"]) == []


class TestBasics:
    def test_two_terminals_is_path_enumeration(self, diamond):
        sols = sorted(sorted(s) for s in enumerate_minimal_terminal_steiner_trees(diamond, ["s", "t"]))
        assert sols == [[0, 1], [2, 3]]

    def test_direct_edge_counts_for_two_terminals(self):
        g = Graph.from_edges([("w1", "w2"), ("w1", "x"), ("x", "w2")])
        sols = set(enumerate_minimal_terminal_steiner_trees(g, ["w1", "w2"]))
        assert frozenset({0}) in sols and len(sols) == 2

    def test_fewer_than_two_terminals_rejected(self, diamond):
        with pytest.raises(InvalidInstanceError):
            list(enumerate_minimal_terminal_steiner_trees(diamond, ["s"]))

    def test_three_terminals_star(self):
        g = Graph.from_edges([("c", "w1"), ("c", "w2"), ("c", "w3")])
        sols = list(enumerate_minimal_terminal_steiner_trees(g, ["w1", "w2", "w3"]))
        assert sols == [frozenset({0, 1, 2})]

    def test_terminal_terminal_edges_unusable_for_three(self):
        # With |W| >= 3 the w1-w2 edge can never appear (Lemma 27)
        g = Graph.from_edges(
            [("w1", "w2"), ("c", "w1"), ("c", "w2"), ("c", "w3")]
        )
        for sol in enumerate_minimal_terminal_steiner_trees(g, ["w1", "w2", "w3"]):
            assert 0 not in sol

    def test_no_solution_when_component_misses_terminal(self):
        g = Graph.from_edges([("w1", "x"), ("x", "w2"), ("y", "w3")])
        assert (
            list(enumerate_minimal_terminal_steiner_trees(g, ["w1", "w2", "w3"])) == []
        )

    def test_solutions_keep_terminals_as_leaves(self):
        g, terminals = random_bipartite_terminal_instance(8, 3, 5, 17)
        for sol in enumerate_minimal_terminal_steiner_trees(g, terminals):
            sub = g.edge_subgraph(sol)
            for w in terminals:
                assert sub.degree(w) == 1
            assert tree_leaves(g, sol) <= set(terminals)


class TestAgainstOracle:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_matches_brute_force(self, variant):
        rng = random.Random(401)
        for _ in range(60):
            g = random_simple_graph(rng, max_n=7)
            t = rng.randint(2, min(4, g.num_vertices))
            terminals = rng.sample(range(g.num_vertices), t)
            want = brute_force_minimal_terminal_steiner_trees(g, terminals)
            got = list(variant(g, terminals))
            assert set(got) == want
            assert len(got) == len(set(got))

    def test_larger_instances_verify(self):
        for seed in range(6):
            g, terminals = random_bipartite_terminal_instance(10, 4, 6, seed)
            count = 0
            for sol in enumerate_minimal_terminal_steiner_trees(g, terminals):
                assert is_minimal_terminal_steiner_tree(g, sol, terminals)
                count += 1
                if count > 150:
                    break

    def test_count_wrapper(self):
        g = Graph.from_edges([("w1", "x"), ("x", "w2"), ("w1", "y"), ("y", "w2")])
        assert count_minimal_terminal_steiner_trees(g, ["w1", "w2"]) == 2

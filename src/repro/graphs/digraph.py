"""Directed multigraph with stable arc identities.

The directed counterpart of :class:`repro.graphs.graph.Graph`, used by the
*s*-*t* path enumerator of Section 3 and the directed Steiner tree
enumerator of Section 5.2.  Arcs carry stable integer ids for the same
reasons edges do in the undirected case (contraction ``D/E(T)``, O(1)
removal/restoration, mapping paths in derived graphs back to the input).

Each vertex additionally keeps its outgoing arcs in insertion order; the
path enumerator's ``F-STP`` subroutine relies on a fixed total order
``≺_v`` on the outgoing arcs of every vertex, and insertion order provides
it deterministically.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, NamedTuple, Optional, Tuple

from repro.exceptions import EdgeNotFound, SelfLoopError, VertexNotFound

Vertex = Hashable


class Arc(NamedTuple):
    """A directed arc ``tail -> head`` with a stable integer identity."""

    aid: int
    tail: Vertex
    head: Vertex


class DiGraph:
    """A mutable directed multigraph without self-loops.

    Examples
    --------
    >>> d = DiGraph()
    >>> a1 = d.add_arc("r", "x")
    >>> a2 = d.add_arc("x", "w")
    >>> [a.head for a in d.out_arcs("r")]
    ['x']
    """

    __slots__ = ("_succ", "_pred", "_arcs", "_next_aid")

    def __init__(self) -> None:
        # vertex -> {aid -> head}; insertion order defines ≺_v
        self._succ: Dict[Vertex, Dict[int, Vertex]] = {}
        # vertex -> {aid -> tail}
        self._pred: Dict[Vertex, Dict[int, Vertex]] = {}
        # aid -> (tail, head)
        self._arcs: Dict[int, Tuple[Vertex, Vertex]] = {}
        self._next_aid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls, arcs: Iterable[Tuple[Vertex, Vertex]], vertices: Iterable[Vertex] = ()
    ) -> "DiGraph":
        """Build a digraph from an iterable of (tail, head) pairs."""
        d = cls()
        for v in vertices:
            d.add_vertex(v)
        for u, v in arcs:
            d.add_arc(u, v)
        return d

    def copy(self) -> "DiGraph":
        """Return an independent copy sharing arc ids with ``self``."""
        d = DiGraph()
        d._succ = {v: dict(out) for v, out in self._succ.items()}
        d._pred = {v: dict(inc) for v, inc in self._pred.items()}
        d._arcs = dict(self._arcs)
        d._next_aid = self._next_aid
        return d

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (``n``)."""
        return len(self._succ)

    @property
    def num_arcs(self) -> int:
        """Number of arcs counting multiplicities (``m``)."""
        return len(self._arcs)

    @property
    def size(self) -> int:
        """``n + m``."""
        return len(self._succ) + len(self._arcs)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiGraph n={self.num_vertices} m={self.num_arcs}>"

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._succ)

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs."""
        for aid, (u, v) in self._arcs.items():
            yield Arc(aid, u, v)

    def arc_ids(self) -> Iterator[int]:
        """Iterate over all arc ids."""
        return iter(self._arcs)

    def has_arc_id(self, aid: int) -> bool:
        """Return True if an arc with id ``aid`` exists."""
        return aid in self._arcs

    def arc(self, aid: int) -> Arc:
        """Return the :class:`Arc` record for ``aid``."""
        try:
            u, v = self._arcs[aid]
        except KeyError:
            raise EdgeNotFound(aid) from None
        return Arc(aid, u, v)

    def arc_endpoints(self, aid: int) -> Tuple[Vertex, Vertex]:
        """Return ``(tail, head)`` for arc ``aid``."""
        try:
            return self._arcs[aid]
        except KeyError:
            raise EdgeNotFound(aid) from None

    def out_arcs(self, vertex: Vertex) -> Iterator[Arc]:
        """Outgoing arcs of ``vertex``, in the fixed order ``≺_v``."""
        for aid, head in self._out(vertex).items():
            yield Arc(aid, vertex, head)

    def in_arcs(self, vertex: Vertex) -> Iterator[Arc]:
        """Incoming arcs of ``vertex``."""
        for aid, tail in self._in(vertex).items():
            yield Arc(aid, tail, vertex)

    def out_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Heads of outgoing arcs (repeated for parallel arcs)."""
        return iter(self._out(vertex).values())

    def in_neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Tails of incoming arcs (repeated for parallel arcs)."""
        return iter(self._in(vertex).values())

    def out_degree(self, vertex: Vertex) -> int:
        """Number of outgoing arcs."""
        return len(self._out(vertex))

    def in_degree(self, vertex: Vertex) -> int:
        """Number of incoming arcs."""
        return len(self._in(vertex))

    def is_source(self, vertex: Vertex) -> bool:
        """True if ``vertex`` has no incoming arcs."""
        return not self._in(vertex)

    def is_sink(self, vertex: Vertex) -> bool:
        """True if ``vertex`` has no outgoing arcs."""
        return not self._out(vertex)

    def out_items(self, vertex: Vertex):
        """``(aid, head)`` pairs of outgoing arcs, in the fixed order ``≺_v``.

        Allocation-free accessor for the path enumerator's hot loops.
        """
        return self._out(vertex).items()

    def in_items(self, vertex: Vertex):
        """``(aid, tail)`` pairs of incoming arcs."""
        return self._in(vertex).items()

    def _out(self, vertex: Vertex) -> Dict[int, Vertex]:
        try:
            return self._succ[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    def _in(self, vertex: Vertex) -> Dict[int, Vertex]:
        try:
            return self._pred[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add ``vertex`` if not present; return it."""
        if vertex not in self._succ:
            self._succ[vertex] = {}
            self._pred[vertex] = {}
        return vertex

    def add_arc(self, tail: Vertex, head: Vertex, aid: Optional[int] = None) -> int:
        """Add an arc ``tail -> head`` and return its id."""
        if tail == head:
            raise SelfLoopError(tail)
        if aid is None:
            aid = self._next_aid
            self._next_aid += 1
        else:
            if aid in self._arcs:
                raise ValueError(f"arc id {aid} already in use")
            if aid >= self._next_aid:
                self._next_aid = aid + 1
        self.add_vertex(tail)
        self.add_vertex(head)
        self._succ[tail][aid] = head
        self._pred[head][aid] = tail
        self._arcs[aid] = (tail, head)
        return aid

    def remove_arc(self, aid: int) -> Tuple[Vertex, Vertex]:
        """Remove arc ``aid``; return ``(tail, head)``."""
        try:
            tail, head = self._arcs.pop(aid)
        except KeyError:
            raise EdgeNotFound(aid) from None
        del self._succ[tail][aid]
        del self._pred[head][aid]
        return (tail, head)

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident arcs."""
        for aid in list(self._out(vertex)):
            self.remove_arc(aid)
        for aid in list(self._in(vertex)):
            self.remove_arc(aid)
        del self._succ[vertex]
        del self._pred[vertex]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "DiGraph":
        """Return the induced subgraph ``D[U]`` (arc ids preserved)."""
        keep = set(vertices)
        d = DiGraph()
        for v in keep:
            if v not in self._succ:
                raise VertexNotFound(v)
            d.add_vertex(v)
        for aid, (u, v) in self._arcs.items():
            if u in keep and v in keep:
                d.add_arc(u, v, aid=aid)
        return d

    def arc_subgraph(self, aids: Iterable[int]) -> "DiGraph":
        """Return the subgraph spanned by the given arcs."""
        d = DiGraph()
        for aid in aids:
            u, v = self.arc_endpoints(aid)
            d.add_arc(u, v, aid=aid)
        return d

    def without_vertices(self, vertices: Iterable[Vertex]) -> "DiGraph":
        """Return ``D[V \\ X]``."""
        drop = set(vertices)
        return self.subgraph(v for v in self._succ if v not in drop)

    def reversed(self) -> "DiGraph":
        """Return the digraph with every arc reversed (same arc ids)."""
        d = DiGraph()
        for v in self._succ:
            d.add_vertex(v)
        for aid, (u, v) in self._arcs.items():
            d.add_arc(v, u, aid=aid)
        return d

"""Resume benchmark: snapshot thaw vs replay fast-forward, gated.

The suspendable-enumerator core (:mod:`repro.engine.suspend`) exists to
make resuming a deep stream O(state) instead of O(offset).  This bench
measures exactly that claim and gates on it:

1. Build a job whose solution stream is ≥ ``BENCH_RESUME_DEPTH``
   (default 10 000) solutions deep, drive a cursor that far, and
   checkpoint — the checkpoint embeds the serialized search state.
2. **Snapshot resume** — ``EnumerationCursor.resume(state)`` thaws the
   frozen branch-and-bound stack and delivers the next solution.
3. **Replay resume** — ``EnumerationCursor.resume(state,
   resume_mode="replay")`` re-runs the enumerator and discards the
   first ``depth`` solutions before delivering the same next solution.

Both resumes must deliver byte-identical tails, and the replay/snapshot
time ratio must be ≥ ``BENCH_RESUME_GATE`` (default 10.0) on both
backends — the acceptance criterion of the suspendable-core refactor.

Environment knobs: ``BENCH_RESUME_DEPTH`` (resume depth),
``BENCH_RESUME_GATE`` (speedup floor), ``BENCH_RESUME_TAIL``
(solutions delivered after the resume; default 64), ``BENCH_RESUME_REPS``
(repetitions, best kept; default 3).

Usage::

    PYTHONPATH=src python benchmarks/bench_resume.py
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Tuple

from repro.engine.cursor import EnumerationCursor
from repro.engine.jobs import EnumerationJob


def deep_job(backend: str, depth: int) -> EnumerationJob:
    """An ``st-path`` job with comfortably more than ``depth`` solutions.

    A ladder graph with ``n`` rungs has ~``2**n`` simple corner-to-corner
    paths; rails + rungs keep the per-solution work small, so the bench
    isolates resume cost rather than enumeration cost.
    """
    rungs = 2
    while 2**rungs <= depth * 2:
        rungs += 1
    edges: List[Tuple[int, int]] = []
    for i in range(rungs):
        edges.append((2 * i, 2 * i + 2))  # top rail
        edges.append((2 * i + 1, 2 * i + 3))  # bottom rail
        edges.append((2 * i, 2 * i + 1))  # rung
    edges.append((2 * rungs, 2 * rungs + 1))  # closing rung
    return EnumerationJob.st_path(
        edges, 0, 2 * rungs + 1, job_id="bench-resume", backend=backend
    )


def measure_backend(
    backend: str, depth: int, tail: int, reps: int
) -> Dict[str, float]:
    """Checkpoint at ``depth`` and time both resume modes."""
    job = deep_job(backend, depth)
    cursor = EnumerationCursor(job)
    prep_start = time.perf_counter()
    head = cursor.take(depth)
    prep_wall = time.perf_counter() - prep_start
    if len(head) < depth:
        raise AssertionError(
            f"instance too shallow: {len(head)} solutions < depth {depth}"
        )
    state = cursor.checkpoint()
    if "snapshot" not in state:
        raise AssertionError("checkpoint did not embed a search snapshot")

    def resume_once(mode: str) -> Tuple[float, float, List[str]]:
        start = time.perf_counter()
        resumed = EnumerationCursor.resume(state, resume_mode=mode)
        got = resumed.take(tail)
        first = time.perf_counter() - start
        return first, time.perf_counter() - start, got

    walls = {"snapshot": float("inf"), "replay": float("inf")}
    tails = {}
    for mode in ("snapshot", "replay"):
        for _ in range(reps):
            _first, wall, got = resume_once(mode)
            walls[mode] = min(walls[mode], wall)
            tails[mode] = got
    if tails["snapshot"] != tails["replay"]:
        raise AssertionError(f"{backend}: resume tails diverged between modes")
    ratio = walls["replay"] / walls["snapshot"] if walls["snapshot"] else 0.0
    print(
        f"{backend:6s} depth {depth}: enumerate {prep_wall*1000:8.1f}ms | "
        f"replay-resume {walls['replay']*1000:8.1f}ms | "
        f"snapshot-resume {walls['snapshot']*1000:8.1f}ms | "
        f"speedup {ratio:8.1f}x"
    )
    return {
        "prep_s": prep_wall,
        "replay_s": walls["replay"],
        "snapshot_s": walls["snapshot"],
        "speedup": ratio,
    }


def main() -> int:
    depth = int(os.environ.get("BENCH_RESUME_DEPTH", "10000"))
    gate = float(os.environ.get("BENCH_RESUME_GATE", "10.0"))
    tail = int(os.environ.get("BENCH_RESUME_TAIL", "64"))
    reps = int(os.environ.get("BENCH_RESUME_REPS", "3"))
    print(
        f"bench_resume: depth={depth} tail={tail} reps={reps} "
        f"gate>={gate:.1f}x (replay/snapshot)"
    )
    failures: List[str] = []
    for backend in ("object", "fast"):
        metrics = measure_backend(backend, depth, tail, reps)
        if metrics["speedup"] < gate:
            failures.append(
                f"{backend}: snapshot-resume speedup {metrics['speedup']:.1f}x "
                f"below the {gate:.1f}x gate"
            )
    if failures:
        print("RESUME GATE FAILED:", file=sys.stderr)
        for message in failures:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print(f"gate passed: snapshot-resume >= {gate:.1f}x over replay on both backends")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

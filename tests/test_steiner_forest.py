"""Minimal Steiner forest enumeration (Section 5, Theorems 23/25)."""

import random

import pytest

from repro.core.baselines import brute_force_minimal_steiner_forests
from repro.core.steiner_forest import (
    count_minimal_steiner_forests,
    enumerate_minimal_steiner_forests,
    enumerate_minimal_steiner_forests_linear_delay,
    enumerate_minimal_steiner_forests_simple,
    normalize_families,
)
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.verification import is_minimal_steiner_forest
from repro.exceptions import InvalidInstanceError
from repro.graphs.generators import random_connected_graph, random_terminal_pairs
from repro.graphs.graph import Graph

from conftest import random_simple_graph

ALL_VARIANTS = [
    enumerate_minimal_steiner_forests,
    enumerate_minimal_steiner_forests_simple,
    enumerate_minimal_steiner_forests_linear_delay,
]


class TestNormalization:
    def test_family_becomes_anchored_pairs(self, diamond):
        pairs = normalize_families(diamond, [["s", "a", "t"]])
        assert pairs == [("s", "a"), ("s", "t")]

    def test_singletons_dropped(self, diamond):
        assert normalize_families(diamond, [["s"], []]) == []

    def test_duplicate_pairs_merged(self, diamond):
        pairs = normalize_families(diamond, [["s", "t"], ["t", "s"]])
        assert len(pairs) == 1

    def test_missing_terminal_rejected(self, diamond):
        with pytest.raises(InvalidInstanceError):
            normalize_families(diamond, [["s", "zzz"]])

    def test_duplicates_within_family_ignored(self, diamond):
        pairs = normalize_families(diamond, [["s", "s", "t"]])
        assert pairs == [("s", "t")]


class TestBasics:
    def test_no_constraints_gives_empty_forest(self, diamond):
        assert list(enumerate_minimal_steiner_forests(diamond, [])) == [frozenset()]
        assert list(enumerate_minimal_steiner_forests(diamond, [["s"]])) == [frozenset()]

    def test_single_pair_matches_steiner_tree(self):
        """|W|=1 family: Steiner Forest ≡ Steiner Tree (paper's remark)."""
        rng = random.Random(307)
        for _ in range(25):
            g = random_simple_graph(rng, max_n=7)
            t = rng.randint(2, min(4, g.num_vertices))
            terminals = rng.sample(range(g.num_vertices), t)
            forest = set(enumerate_minimal_steiner_forests(g, [terminals]))
            tree = set(enumerate_minimal_steiner_trees(g, terminals))
            assert forest == tree

    def test_disconnected_pair_yields_nothing(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert list(enumerate_minimal_steiner_forests(g, [[0, 2]])) == []

    def test_two_independent_pairs(self):
        # two disjoint edges, one pair each: unique forest
        g = Graph.from_edges([(0, 1), (2, 3)])
        sols = list(enumerate_minimal_steiner_forests(g, [[0, 1], [2, 3]]))
        assert sols == [frozenset({0, 1})]

    def test_forest_may_be_disconnected(self):
        g = Graph.from_edges([(0, 1), (2, 3), (1, 2)])
        sols = set(enumerate_minimal_steiner_forests(g, [[0, 1], [2, 3]]))
        assert frozenset({0, 1}) in sols

    def test_intersecting_families_share_structure(self):
        g = Graph.from_edges([("a", "x"), ("x", "b"), ("x", "c")])
        sols = list(enumerate_minimal_steiner_forests(g, [["a", "b"], ["b", "c"]]))
        assert sols == [frozenset({0, 1, 2})]


class TestAgainstOracle:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_matches_brute_force(self, variant):
        rng = random.Random(311)
        for _ in range(50):
            g = random_simple_graph(rng, max_n=6)
            fams = []
            for _ in range(rng.randint(1, 3)):
                k = rng.randint(2, min(3, g.num_vertices))
                fams.append(rng.sample(range(g.num_vertices), k))
            want = brute_force_minimal_steiner_forests(g, fams)
            got = list(variant(g, fams))
            assert set(got) == want
            assert len(got) == len(set(got))

    def test_outputs_verify_on_larger_instances(self):
        rng = random.Random(313)
        for seed in range(8):
            g = random_connected_graph(rng.randint(8, 18), rng.randint(4, 12), seed)
            fams = [list(p) for p in random_terminal_pairs(g, rng.randint(1, 3), seed + 5)]
            for i, sol in enumerate(enumerate_minimal_steiner_forests(g, fams)):
                assert is_minimal_steiner_forest(g, list(sol), fams)
                if i > 100:
                    break

    def test_count_wrapper(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert count_minimal_steiner_forests(g, [[0, 1]]) == 2

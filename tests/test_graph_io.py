"""Graph serialization round-trips and error reporting."""

import io

import pytest

from repro.datagraph.model import DataGraph
from repro.graphs.graph import Graph
from repro.graphs.io import (
    GraphFormatError,
    read_arc_list,
    read_data_graph,
    read_edge_list,
    write_arc_list,
    write_data_graph,
    write_edge_list,
)


class TestEdgeList:
    def test_basic_parse(self):
        g, weights = read_edge_list(io.StringIO("a b\nb c 2.5\n# comment\n\n"))
        assert g.num_edges == 2
        assert weights[0] == 1.0
        assert weights[1] == 2.5

    def test_inline_comments(self):
        g, _ = read_edge_list(io.StringIO("a b # the only edge\n"))
        assert g.num_edges == 1

    def test_round_trip(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        weights = {0: 1.5, 1: 3.0}
        buf = io.StringIO()
        write_edge_list(g, buf, weights)
        buf.seek(0)
        g2, w2 = read_edge_list(buf)
        assert g2.edge_endpoint_multiset() == g.edge_endpoint_multiset()
        assert sorted(w2.values()) == sorted(weights.values())

    def test_bad_column_count(self):
        with pytest.raises(GraphFormatError, match=":1:"):
            read_edge_list(io.StringIO("only-one\n"))

    def test_bad_weight(self):
        with pytest.raises(GraphFormatError, match="bad weight"):
            read_edge_list(io.StringIO("a b xyz\n"))

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            read_edge_list(io.StringIO("a a\n"))

    def test_error_cites_line_number(self):
        try:
            read_edge_list(io.StringIO("a b\nbroken\n"), source="f.txt")
        except GraphFormatError as exc:
            assert exc.line_no == 2
            assert exc.source == "f.txt"
        else:
            pytest.fail("expected GraphFormatError")


class TestArcList:
    def test_parse_and_round_trip(self):
        d, weights = read_arc_list(io.StringIO("r a 2\na w\n"))
        assert d.num_arcs == 2
        assert weights[0] == 2.0
        buf = io.StringIO()
        write_arc_list(d, buf, weights)
        buf.seek(0)
        d2, w2 = read_arc_list(buf)
        assert {(a.tail, a.head) for a in d2.arcs()} == {
            (a.tail, a.head) for a in d.arcs()
        }


class TestDataGraphJson:
    def test_round_trip(self):
        dg = DataGraph()
        dg.add_node("p1", ["steiner", "tree"])
        dg.add_node("p2", ["search"])
        dg.add_link("p1", "p2")
        buf = io.StringIO()
        write_data_graph(dg, buf)
        buf.seek(0)
        dg2 = read_data_graph(buf)
        assert dg2.num_nodes == 2
        assert dg2.keywords_of("p1") == {"steiner", "tree"}
        assert dg2.num_links == 1

    def test_malformed_json(self):
        with pytest.raises(GraphFormatError):
            read_data_graph(io.StringIO("{not json"))

    def test_missing_nodes_key(self):
        with pytest.raises(GraphFormatError, match="nodes"):
            read_data_graph(io.StringIO("{}"))

    def test_link_to_unknown_node(self):
        doc = '{"nodes": {"a": []}, "links": [["a", "ghost"]]}'
        with pytest.raises(GraphFormatError, match="unknown node"):
            read_data_graph(io.StringIO(doc))

    def test_bad_keywords_type(self):
        with pytest.raises(GraphFormatError, match="keywords"):
            read_data_graph(io.StringIO('{"nodes": {"a": "not-a-list"}}'))

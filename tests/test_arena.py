"""The zero-copy instance arena (:mod:`repro.serve.arena`).

Covers the spool format round trip, the integer-compactness gate (and
its inline fallback), digest dedupe, torn-file detection, the
numpy-free decode path, and — end to end — a :class:`WorkerPool` whose
forked workers receive arena refs instead of inline edge lists and
still produce byte-identical streams.
"""

import os

import pytest

from repro.engine.jobs import EnumerationJob, run_job
from repro.serve import arena
from repro.serve.arena import InstanceArena
from repro.serve.workers import WorkerPool

EDGES = ((0, 1), (1, 2), (0, 2), (2, 3))


def test_publish_load_round_trip(tmp_path):
    inst = InstanceArena(str(tmp_path))
    ref = inst.publish(EDGES, vertices=(7,))
    assert ref is not None
    assert ref["edges"] == 4 and ref["vertices"] == 1
    assert os.path.exists(ref["path"])
    edges, vertices = arena.load(ref)
    assert edges == EDGES
    assert vertices == (7,)
    # decode cache: same object back on a second load
    assert arena.load(ref) is not arena.load.__defaults__  # sanity
    assert arena.load(ref)[0] is edges


def test_publish_dedupes_by_digest(tmp_path):
    inst = InstanceArena(str(tmp_path))
    first = inst.publish(EDGES)
    second = inst.publish(EDGES)
    assert first["path"] == second["path"]
    spools = [p for p in os.listdir(tmp_path) if p.endswith(".arena")]
    assert len(spools) == 1


def test_non_integer_instances_stay_inline(tmp_path):
    inst = InstanceArena(str(tmp_path))
    assert inst.publish([("a", "b")]) is None
    assert inst.publish([(0, 1)], vertices=("x",)) is None
    assert inst.publish([(0, 2**40)]) is None  # beyond int32
    assert inst.publish([(0, True)]) is None  # bools are not vertex ids
    spec = {"kind": "st-path", "edges": [["a", "b"]], "source": "a", "target": "b"}
    assert inst.publish_spec(spec) is spec  # untouched → inline path


def test_publish_spec_swaps_payload_for_ref(tmp_path):
    inst = InstanceArena(str(tmp_path))
    job = EnumerationJob.steiner_tree(EDGES, [0, 3], limit=5)
    spec = inst.publish_spec(job.to_dict())
    assert "edges" not in spec and "arena" in spec
    resolved = arena.resolve_spec(spec)
    assert "arena" not in resolved
    assert EnumerationJob.from_dict(resolved) == job


def test_torn_spool_is_rejected(tmp_path):
    inst = InstanceArena(str(tmp_path))
    ref = inst.publish(EDGES)
    arena._DECODED.pop(ref["digest"], None)
    with open(ref["path"], "r+b") as handle:
        handle.truncate(10)
    with pytest.raises(ValueError, match="bytes"):
        arena.load(ref)


def test_mismatched_header_is_rejected(tmp_path):
    inst = InstanceArena(str(tmp_path))
    ref = inst.publish(EDGES)
    arena._DECODED.pop(ref["digest"], None)
    lied = dict(ref, edges=3, vertices=2)  # same total, wrong split
    with pytest.raises(ValueError, match="header"):
        arena.load(lied)


def test_load_without_numpy(tmp_path, monkeypatch):
    inst = InstanceArena(str(tmp_path))
    ref = inst.publish(EDGES, vertices=(9,))
    arena._DECODED.pop(ref["digest"], None)
    monkeypatch.setattr(arena, "_np", None)
    edges, vertices = arena.load(ref)
    assert edges == EDGES and vertices == (9,)
    arena._DECODED.pop(ref["digest"], None)


def test_worker_pool_streams_through_arena(tmp_path):
    """Forked workers resolve arena refs and the streams stay
    byte-identical — including the inline fallback for labeled graphs
    and the per-process decode cache on a repeated dataset."""
    int_job = EnumerationJob.steiner_tree(EDGES, [0, 3], limit=10)
    str_job = EnumerationJob.steiner_tree(
        [("a", "b"), ("b", "c"), ("a", "c")], ["a", "c"], limit=5
    )
    with WorkerPool(1, arena_dir=str(tmp_path)) as pool:
        handle = pool.acquire()
        try:
            for job in (int_job, int_job, str_job):
                expect = run_job(job).lines
                handle.start_stream(job, 0, 64)
                lines = []
                while True:
                    msg = handle.recv()
                    if msg[0] == "chunk":
                        lines.extend(msg[1])
                        handle.credit()
                    elif msg[0] == "end":
                        assert msg[1]["error"] is None, msg[1]
                        break
                assert tuple(lines) == expect
        finally:
            pool.release(handle)
    spools = [p for p in os.listdir(tmp_path) if p.endswith(".arena")]
    assert len(spools) == 1  # one integer dataset → one spool, reused


def test_pool_without_arena_unchanged(tmp_path):
    """No arena_dir → specs travel inline exactly as before."""
    job = EnumerationJob.steiner_tree(EDGES, [0, 3], limit=10)
    expect = run_job(job).lines
    with WorkerPool(1) as pool:
        handle = pool.acquire()
        try:
            assert handle.arena is None
            handle.start_stream(job, 0, 64)
            lines = []
            while True:
                msg = handle.recv()
                if msg[0] == "chunk":
                    lines.extend(msg[1])
                    handle.credit()
                elif msg[0] == "end":
                    assert msg[1]["error"] is None, msg[1]
                    break
            assert tuple(lines) == expect
        finally:
            pool.release(handle)

"""Resumable streaming cursors over enumeration jobs.

A :class:`EnumerationCursor` turns a job into a pull-based stream: take
the first ``k`` solutions, :meth:`checkpoint` (a small JSON-able dict:
job spec + delivered offset + a digest of the delivered prefix + — for
suspendable kinds — a serialized search-state snapshot), persist it
anywhere, and :meth:`resume` later to receive *exactly* the remaining
tail — the concatenation of the two passes equals one uninterrupted run.

Resumption cost, in order of preference:

1. **Snapshot resume** (kinds in
   ``suspendable`` in :mod:`repro.core.capabilities`): the checkpoint embeds
   the frozen branch-and-bound stack (:mod:`repro.engine.suspend`), so
   the resumed cursor continues in O(state) — no re-enumeration, no
   matter how deep the stream position is.
2. **Cache replay**: with a cache attached, delivered prefixes are
   stored on :meth:`checkpoint`, so resuming replays cached solutions
   and only enumerates what was never produced.
3. **Replay fast-forward** (the fallback, and the only option for
   replay-only kinds or ``resume_mode="replay"``): re-run the
   (deterministic) enumerator and discard ``offset`` solutions without
   rendering them — correct, but O(offset).

Every resume is fingerprint-checked: a checkpoint replayed against a
job whose kind, backend or exact-instance fingerprint differs raises
:class:`repro.exceptions.CursorStateError` instead of silently
fast-forwarding the wrong stream, and the prefix digest still guards
against spec tampering on the replay path.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.cache import InstanceCache, job_fingerprint
from repro.core.capabilities import spec as kind_spec
from repro.engine.jobs import (
    BudgetExceeded,
    EnumerationJob,
    JobResult,
    _BudgetMeter,
    iter_structures,
    structure_line,
)
from repro.exceptions import CursorStateError, InvalidInstanceError

import time

#: Valid values for ``resume_mode``.
RESUME_MODES = ("snapshot", "replay")


class _CleanStop(BudgetExceeded):
    """A deadline observed *between* solutions (machine-driven segments).

    Unlike a mid-step abort raised by the substrate meter, the machine
    is at a clean suspension point, so the cursor keeps its snapshot:
    deadline-bounded rounds stay O(state)-resumable.
    """


class EnumerationCursor:
    """A chunked, checkpointable view of one job's solution stream.

    Parameters
    ----------
    job:
        The job to stream.  Its ``limit`` bounds the *total* stream
        length.  Each live enumeration segment gets a fresh allowance:
        the ``deadline`` bounds the segment's wall clock (fast-forward
        included), while the op ``budget`` arms only once delivery
        begins, so budget-stopped cursors always progress across
        resumes.
    cache:
        Optional :class:`InstanceCache`.  Delivered prefixes are stored
        into it on :meth:`checkpoint`/exhaustion so later resumes (and
        unrelated identical jobs) skip recomputation.
    offset:
        Internal — number of solutions already delivered (set by
        :meth:`resume`).
    snapshot:
        Internal — serialized search state to resume from (set by
        :meth:`resume` from the checkpoint's ``snapshot`` field).
    resume_mode:
        ``"snapshot"`` (default) resumes suspendable kinds from the
        embedded search-state snapshot; ``"replay"`` forces the
        fast-forward path (used for benchmarking and as an escape
        hatch).  Replay-only kinds always fast-forward.

    Examples
    --------
    >>> job = EnumerationJob.steiner_tree(
    ...     [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"])
    >>> cur = EnumerationCursor(job)
    >>> cur.take(1)
    ['a-c c-d']
    >>> state = cur.checkpoint()
    >>> EnumerationCursor.resume(state).take(5)
    ['a-b b-c c-d']
    """

    def __init__(
        self,
        job: EnumerationJob,
        cache: Optional[InstanceCache] = None,
        offset: int = 0,
        _expected_digest: Optional[str] = None,
        snapshot: Optional[bytes] = None,
        resume_mode: str = "snapshot",
    ) -> None:
        job.validate()
        if resume_mode not in RESUME_MODES:
            raise InvalidInstanceError(
                f"unknown resume_mode {resume_mode!r}; expected one of {RESUME_MODES}"
            )
        self.job = job
        self.cache = cache
        self.offset = offset  # solutions delivered so far (across resumes)
        self.resume_mode = resume_mode
        self.exhausted = False
        self.stop_reason: Optional[str] = None
        self._delivered: List[str] = []  # lines delivered by THIS cursor object
        # Everything known about positions [0, offset): replayed cache
        # prefix + fast-forwarded lines + delivered lines, with parallel
        # label-level structures (None where unknown).  Complete coverage
        # lets checkpoint() upgrade the cache and digest the full prefix.
        self._known_lines: List[str] = []
        self._known_structures: List[Any] = []
        self._initial_offset = offset
        self._expected_digest = _expected_digest
        self._snapshot_blob = snapshot
        self._iterator: Optional[Iterator[Tuple[str, Any]]] = None
        self._meter: Optional[_BudgetMeter] = None
        self._search = None  # live JobSearch (suspendable kinds only)
        self._dirty = False  # True after a mid-step abort: state unusable

    # ------------------------------------------------------------------
    def take(self, k: int) -> List[str]:
        """Deliver up to ``k`` further solution lines (fewer at the end)."""
        if k < 0:
            raise ValueError("take() needs k >= 0")
        out: List[str] = []
        if self.exhausted:
            return out
        iterator = self._ensure_iterator()
        while len(out) < k:
            if self._remaining_limit() == 0:
                self.exhausted = True
                self.stop_reason = "limit"
                break
            try:
                line, structure = next(iterator)
            except StopIteration:
                self.exhausted = True
                self._record_final()
                break
            except BudgetExceeded as exc:
                self.exhausted = True
                self.stop_reason = exc.reason
                # A between-solutions deadline stop keeps the machine at
                # a clean suspension point; only mid-step aborts (budget
                # or a substrate-raised deadline) poison the snapshot.
                self._dirty = not isinstance(exc, _CleanStop)
                break
            out.append(line)
            self._delivered.append(line)
            self._known_lines.append(line)
            self._known_structures.append(structure)
            self.offset += 1
        return out

    def drain(self, chunk: int = 256) -> List[str]:
        """Deliver everything that remains, reading ``chunk`` at a time."""
        out: List[str] = []
        while not self.exhausted:
            got = self.take(chunk)
            out.extend(got)
            if not got and not self.exhausted:  # pragma: no cover - safety
                break
        return out

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """A JSON-serializable resume token for the current position.

        Also stores the delivered prefix into the attached cache so the
        matching :meth:`resume` costs no re-enumeration, and — for
        suspendable kinds at a clean suspension point — embeds the
        serialized search state so :meth:`resume` is O(state).
        """
        self._store_prefix()
        state: Dict[str, Any] = {
            "version": 1,
            "job": self.job.to_dict(),
            "offset": self.offset,
            "digest": self._prefix_digest(),
        }
        blob = self._current_snapshot()
        if blob is not None:
            state["snapshot"] = base64.b64encode(blob).decode("ascii")
        return state

    def save(self, path: str) -> None:
        """Write :meth:`checkpoint` to ``path`` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.checkpoint(), handle, sort_keys=True)
            handle.write("\n")

    @classmethod
    def resume(
        cls,
        state: Dict[str, Any],
        cache: Optional[InstanceCache] = None,
        job: Optional[EnumerationJob] = None,
        resume_mode: str = "snapshot",
    ) -> "EnumerationCursor":
        """Rebuild a cursor from a :meth:`checkpoint` dict.

        The resumed cursor continues at ``state['offset']``: its next
        :meth:`take` returns exactly what the original cursor would have
        returned next.  When ``job`` is given, the checkpoint must have
        been taken for that job — same kind, same backend, same
        exact-instance fingerprint — or :class:`CursorStateError` is
        raised (a mismatched spec would silently replay the wrong
        stream); the cursor then runs under the *caller's* job, whose
        execution envelope (limit/deadline/budget) may legitimately
        differ from the checkpointed one.
        """
        if state.get("version") != 1:
            raise InvalidInstanceError(f"unknown cursor version {state.get('version')!r}")
        checkpoint_job = EnumerationJob.from_dict(state["job"])
        if job is not None:
            job.validate()
            if (
                job.kind != checkpoint_job.kind
                or job.backend != checkpoint_job.backend
                or job_fingerprint(job) != job_fingerprint(checkpoint_job)
            ):
                raise CursorStateError(
                    "checkpoint does not belong to the job it is resumed "
                    f"against (checkpointed kind={checkpoint_job.kind!r} "
                    f"backend={checkpoint_job.backend!r}, resuming "
                    f"kind={job.kind!r} backend={job.backend!r}, "
                    "fingerprints "
                    + (
                        "match"
                        if job_fingerprint(job) == job_fingerprint(checkpoint_job)
                        else "differ"
                    )
                    + ")"
                )
            checkpoint_job = job
        encoded = state.get("snapshot")
        blob = base64.b64decode(encoded) if encoded else None
        return cls(
            checkpoint_job,
            cache=cache,
            offset=int(state["offset"]),
            _expected_digest=state.get("digest"),
            snapshot=blob,
            resume_mode=resume_mode,
        )

    @classmethod
    def load(
        cls,
        path: str,
        cache: Optional[InstanceCache] = None,
        job: Optional[EnumerationJob] = None,
        resume_mode: str = "snapshot",
    ) -> "EnumerationCursor":
        """Read a JSON checkpoint written by :meth:`save` and resume it."""
        with open(path) as handle:
            return cls.resume(
                json.load(handle), cache=cache, job=job, resume_mode=resume_mode
            )

    # ------------------------------------------------------------------
    def _remaining_limit(self) -> Optional[int]:
        if self.job.limit is None:
            return None
        return max(0, self.job.limit - self.offset)

    def _ensure_iterator(self) -> Iterator[Tuple[str, Any]]:
        if self._iterator is None:
            self._iterator = self._open_stream()
        return self._iterator

    def _try_restore_search(self):
        """A :class:`JobSearch` thawed from the resume snapshot.

        Returns ``None`` to fall back to replay (no snapshot, replay
        mode, replay-only kind, or an unreadable/cross-version payload —
        replay is always correct).  A snapshot that *identifies* a
        different job — kind, backend or fingerprint mismatch, or a
        position that contradicts the checkpoint offset — raises
        :class:`CursorStateError` instead: that is corruption, not a
        degraded path.
        """
        blob = self._snapshot_blob
        if (
            blob is None
            or self.resume_mode != "snapshot"
            or not kind_spec(self.job.kind).suspendable
        ):
            return None
        from repro.core.suspend import SnapshotError, read_snapshot_header
        from repro.engine.suspend import JobSearch

        try:
            header = read_snapshot_header(blob)
        except SnapshotError:
            return None  # unreadable envelope: replay still works
        if (
            header["kind"] != self.job.kind
            or header["backend"] != self.job.backend
            or header["fingerprint"] != job_fingerprint(self.job)
        ):
            raise CursorStateError(
                "cursor snapshot was taken for a different job "
                f"(snapshot kind={header['kind']!r} backend={header['backend']!r})"
            )
        if header.get("emitted") != self.offset:
            raise CursorStateError(
                f"cursor snapshot position {header.get('emitted')!r} does not "
                f"match the checkpoint offset {self.offset}"
            )
        # Machine-driven segments keep the clock out of the substrate
        # meter: the deadline is enforced *between* solutions (see
        # :class:`_CleanStop`), so deadline stops stay snapshotable.
        meter = _BudgetMeter()
        try:
            search = JobSearch.restore(self.job, blob, meter)
        except CursorStateError:
            # Fingerprint already matched above, so this is a payload
            # problem (cross-version pickle, truncation): fall back.
            return None
        # Delivery starts immediately (no fast-forward): arm the budget.
        if self.job.budget is not None:
            meter.budget = meter.count + self.job.budget
        self._meter = meter
        return search

    def _open_stream(self) -> Iterator[Tuple[str, Any]]:
        """Line iterator starting at ``self.offset``.

        Prefers, in order: a complete cached result (zero enumeration),
        the search-state snapshot (O(state) resume), a cached prefix
        replay + live continuation, and finally live enumeration with a
        replay fast-forward.
        """
        start = self.offset
        cached_lines: Tuple[str, ...] = ()
        cached_structures: Optional[Tuple[Any, ...]] = None
        cache_complete = False
        if self.cache is not None:
            stored = self.cache.prefix(self.job)
            if stored is not None:
                cached_lines = stored.lines
                cached_structures = stored.structures
                cache_complete = stored.exhausted

        expected = self._expected_digest
        prefix_hasher = hashlib.sha256() if expected is not None else None

        def check_prefix() -> None:
            if prefix_hasher is not None and prefix_hasher.hexdigest() != expected:
                raise InvalidInstanceError(
                    "cursor checkpoint does not match this job's solution stream"
                )

        def hash_prefix_line(line: str) -> None:
            if prefix_hasher is not None:
                prefix_hasher.update(line.encode())
                prefix_hasher.update(b"\n")

        def remember(line: str, structure: Any) -> None:
            self._known_lines.append(line)
            self._known_structures.append(structure)

        if not (cache_complete and len(cached_lines) >= start):
            search = self._try_restore_search()
            if search is not None:
                if len(cached_lines) >= start:
                    # The cache knows the whole delivered prefix: adopt
                    # it (and verify the digest) so a later checkpoint /
                    # exhaustion can still upgrade the cache entry.
                    for i in range(start):
                        hash_prefix_line(cached_lines[i])
                        remember(
                            cached_lines[i],
                            cached_structures[i]
                            if cached_structures is not None
                            else None,
                        )
                    check_prefix()
                self._search = search
                deadline_at = (
                    (time.monotonic() + self.job.deadline)
                    if self.job.deadline is not None
                    else None
                )

                def snapshot_stream() -> Iterator[Tuple[str, Any]]:
                    while True:
                        pair = search.next()
                        if pair is None:
                            return
                        yield pair
                        if deadline_at is not None and time.monotonic() > deadline_at:
                            raise _CleanStop("deadline")

                return snapshot_stream()

        def stream() -> Iterator[Tuple[str, Any]]:
            covered = min(start, len(cached_lines))
            for i in range(covered):
                hash_prefix_line(cached_lines[i])
                remember(
                    cached_lines[i],
                    cached_structures[i] if cached_structures is not None else None,
                )
            if covered == start:
                check_prefix()
            position = start
            for i in range(start, len(cached_lines)):
                structure = (
                    cached_structures[i] if cached_structures is not None else None
                )
                yield cached_lines[i], structure
                position += 1
            if cache_complete:
                if covered < start:
                    raise InvalidInstanceError(
                        "cursor checkpoint offset exceeds the job's solution stream"
                    )
                return
            # The deadline covers the whole live segment (it is a wall-
            # clock latency bound, fast-forward included), but the op
            # budget arms only when *delivery* begins: otherwise a
            # budget-stopped cursor would re-spend its whole fresh
            # allowance re-skipping the prefix and never make progress
            # across resumes.  With a cache attached the fast-forward is
            # free, so deadline-stopped cursors also progress.
            suspendable = kind_spec(self.job.kind).suspendable
            deadline_at = (
                (time.monotonic() + self.job.deadline)
                if self.job.deadline is not None
                else None
            )
            # Machine-driven segments enforce the deadline between
            # solutions (clean stop, snapshot preserved) instead of
            # letting the substrate meter abort mid-step.
            meter = _BudgetMeter(deadline_at=None if suspendable else deadline_at)
            self._meter = meter
            armed = position == 0
            if armed:
                meter.budget = self.job.budget
            if suspendable:
                # Drive the live segment through the suspendable machine
                # so checkpoints taken later embed a search snapshot.
                from repro.engine.suspend import JobSearch

                search = JobSearch(self.job, meter)
                self._search = search
                source: Iterator[Tuple[str, Any]] = iter(search)
            else:
                source = (
                    (structure_line(self.job, s), s)
                    for s in iter_structures(self.job, meter)
                )
            seen = 0
            for line, structure in source:
                seen += 1
                if seen <= position:
                    if covered < seen <= start:
                        hash_prefix_line(line)
                        remember(line, structure)
                        if seen == start:
                            check_prefix()
                    if (
                        suspendable
                        and deadline_at is not None
                        and time.monotonic() > deadline_at
                    ):
                        raise _CleanStop("deadline")
                    continue
                if not armed:
                    armed = True
                    if self.job.budget is not None:
                        meter.budget = meter.count + self.job.budget
                yield line, structure
                if (
                    suspendable
                    and deadline_at is not None
                    and time.monotonic() > deadline_at
                ):
                    raise _CleanStop("deadline")
            if seen < start:
                # The enumeration ended before reaching the checkpoint
                # offset: the checkpoint belongs to a different job spec.
                raise InvalidInstanceError(
                    "cursor checkpoint offset exceeds the job's solution stream"
                )

        return stream()

    # ------------------------------------------------------------------
    def _current_snapshot(self) -> Optional[bytes]:
        """The search-state blob for :meth:`checkpoint`, if sound."""
        if not kind_spec(self.job.kind).suspendable or self._dirty:
            return None
        if self._search is not None and self._search.emitted == self.offset:
            return self._search.snapshot()
        if self.offset == self._initial_offset:
            # A resumed cursor that has not advanced (or has replayed
            # only cached lines) re-issues the snapshot it was resumed
            # with, so checkpoint-of-a-checkpoint chains stay O(state).
            return self._snapshot_blob
        return None

    def _prefix_digest(self) -> Optional[str]:
        if self.offset and self.offset == len(self._known_lines):
            digest = hashlib.sha256()
            for line in self._known_lines:
                digest.update(line.encode())
                digest.update(b"\n")
            return digest.hexdigest()
        if self.offset == self._initial_offset:
            # A resumed cursor that has not advanced re-issues the digest
            # it was resumed with, so tamper detection survives
            # checkpoint-of-a-checkpoint chains.
            return self._expected_digest
        return None  # prefix not fully known (resumed without cache/digest)

    def _store_prefix(self) -> None:
        if self.cache is None or not self._known_lines:
            return
        if self.offset != len(self._known_lines):
            return  # holes in the prefix: nothing sound to store
        structures: Optional[Tuple[Any, ...]] = tuple(self._known_structures)
        if any(s is None for s in structures):
            structures = None
        complete = self.exhausted and self.stop_reason is None
        # The delivered lines are the stream's first `offset` solutions —
        # a sound prefix to cache no matter *why* the cursor stopped
        # (store() would reject a raw deadline/budget stop_reason, but a
        # prefix at a known offset is deterministic content).
        result = JobResult(
            job_id=self.job.job_id,
            kind=self.job.kind,
            lines=tuple(self._known_lines),
            exhausted=complete,
            stop_reason=None if complete else "limit",
            elapsed=0.0,
            ops=self._meter.count if self._meter else 0,
            structures=structures,
        )
        self.cache.store(self.job, result)

    def _record_final(self) -> None:
        self._store_prefix()

#!/usr/bin/env python
"""Auditing VPN connectivity options with minimal Steiner forests.

An operator runs several point-to-point VPN sessions over a shared
physical network.  A minimal Steiner forest is exactly an irredundant set
of physical links realizing *all* sessions simultaneously; enumerating
the forests answers questions a single optimum cannot:

* how many structurally different provisioning plans exist,
* which physical links appear in every plan (single points of failure),
* how plans trade locality (per-session paths) against sharing.

Run:  python examples/vpn_resilience_audit.py
"""

from collections import Counter

from repro import Graph, enumerate_minimal_steiner_forests
from repro.graphs.bridges import find_bridges


def build_metro_network() -> Graph:
    """Two metro rings joined by a pair of inter-ring links."""
    g = Graph()
    ring1 = ["r1a", "r1b", "r1c", "r1d", "r1e"]
    ring2 = ["r2a", "r2b", "r2c", "r2d"]
    for ring in (ring1, ring2):
        for u, v in zip(ring, ring[1:] + ring[:1]):
            g.add_edge(u, v)
    g.add_edge("r1b", "r2a")
    g.add_edge("r1d", "r2c")
    return g


def main() -> None:
    net = build_metro_network()
    sessions = [
        ["r1a", "r2b"],   # cross-metro session
        ["r1c", "r1e"],   # intra-ring session
        ["r2a", "r2d"],   # second intra-ring session
    ]
    print(f"Physical network: {net.num_vertices} sites, {net.num_edges} links")
    print(f"Sessions to provision: {sessions}\n")

    forests = list(enumerate_minimal_steiner_forests(net, sessions))
    print(f"{len(forests)} minimal provisioning plans\n")

    sizes = Counter(len(f) for f in forests)
    print("== Plan sizes (links used) ==")
    for size in sorted(sizes):
        print(f"  {size} links: {sizes[size]} plans")

    # Links used by every plan are unavoidable for this session mix.
    universal = set.intersection(*(set(f) for f in forests)) if forests else set()
    print("\n== Links in EVERY plan (unavoidable for this session mix) ==")
    if universal:
        for eid in sorted(universal):
            u, v = net.endpoints(eid)
            print(f"  {u}~{v}")
    else:
        print("  none - every link can be routed around")

    # Compare with the physical bridges: a physical bridge used by every
    # plan is a true single point of failure.
    bridges = find_bridges(net)
    spofs = universal & bridges
    print("\n== True single points of failure (bridge AND in every plan) ==")
    if spofs:
        for eid in sorted(spofs):
            u, v = net.endpoints(eid)
            print(f"  {u}~{v}")
    else:
        print("  none - the two inter-ring links back each other up")

    # Cheapest plan and a maximally different alternative.
    cheapest = min(forests, key=len)
    most_different = max(forests, key=lambda f: len(f ^ cheapest))
    print(
        f"\nCheapest plan uses {len(cheapest)} links; the most different "
        f"plan differs in {len(most_different ^ cheapest)} links - "
        "a ready-made failover configuration."
    )


if __name__ == "__main__":
    main()

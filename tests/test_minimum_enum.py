"""Tests for minimum Steiner tree enumeration (repro.core.minimum_enum)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minimum_enum import (
    count_minimum_steiner_trees,
    enumerate_minimum_steiner_trees_dp,
)
from repro.core.optimum import (
    dreyfus_wagner,
    enumerate_minimum_steiner_trees,
    tree_weight,
)
from repro.core.verification import is_minimal_steiner_tree
from repro.exceptions import InvalidInstanceError, NoSolutionError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    random_terminals,
    theta_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.spanning import is_tree


def weights_of(graph, period=7, offset=1):
    return {eid: float((eid * 13) % period + offset) for eid in graph.edge_ids()}


class TestBasics:
    def test_triangle_unit_weights(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        out = list(enumerate_minimum_steiner_trees_dp(g, [0, 2]))
        assert out == [frozenset([2])]

    def test_triangle_tied_weights(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        out = sorted(
            sorted(s)
            for s in enumerate_minimum_steiner_trees_dp(g, [0, 2], {0: 1, 1: 1, 2: 2})
        )
        assert out == [[0, 1], [2]]

    def test_single_terminal(self):
        g = Graph.from_edges([(0, 1)])
        assert list(enumerate_minimum_steiner_trees_dp(g, [0])) == [frozenset()]

    def test_cycle_ties(self):
        # even cycle, antipodal terminals: both arcs are minimum
        g = cycle_graph(6)
        out = list(enumerate_minimum_steiner_trees_dp(g, [0, 3]))
        assert len(out) == 2

    def test_theta_counts_parallel_routes(self):
        g = theta_graph(3, 4)
        assert count_minimum_steiner_trees(g, ["s", "t"]) == 3

    def test_three_terminals_star(self):
        g = Graph.from_edges([("c", "a"), ("c", "b"), ("c", "d")])
        out = list(enumerate_minimum_steiner_trees_dp(g, ["a", "b", "d"]))
        assert out == [frozenset([0, 1, 2])]

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(NoSolutionError):
            list(enumerate_minimum_steiner_trees_dp(g, [0, 3]))

    def test_zero_weight_rejected(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(InvalidInstanceError):
            list(enumerate_minimum_steiner_trees_dp(g, [0, 1], {0: 0.0}))

    def test_missing_terminal_rejected(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(InvalidInstanceError):
            list(enumerate_minimum_steiner_trees_dp(g, [0, 9]))

    def test_no_terminals_rejected(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(InvalidInstanceError):
            list(enumerate_minimum_steiner_trees_dp(g, []))


class TestSolutionQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_output_is_an_optimal_minimal_tree(self, seed):
        g = random_connected_graph(9, 8, seed=seed)
        terms = random_terminals(g, 3, seed=seed)
        weights = weights_of(g)
        optimum, _ = dreyfus_wagner(g, terms, weights)
        out = list(enumerate_minimum_steiner_trees_dp(g, terms, weights))
        assert out
        assert len(set(out)) == len(out)
        for sol in out:
            assert tree_weight(weights, sol) == pytest.approx(optimum)
            assert is_tree(g.edge_subgraph(sol))
            assert is_minimal_steiner_tree(g, sol, terms)

    def test_grid_corner_pairs(self):
        # 2x3 grid, opposite corners: all monotone lattice paths are
        # minimum Steiner trees; C(3,1) = 3 of them
        g = grid_graph(2, 3)
        assert count_minimum_steiner_trees(g, [(0, 0), (1, 2)]) == 3

    def test_complete_graph_direct_edge(self):
        g = complete_graph(6)
        out = list(enumerate_minimum_steiner_trees_dp(g, [0, 5]))
        assert len(out) == 1 and len(next(iter(out))) == 1


@pytest.mark.parametrize("seed", range(10))
def test_matches_filter_route(seed):
    """DP backtracking == (full minimal enumeration, then weight filter)."""
    g = random_connected_graph(8, 7 + seed % 4, seed=seed)
    terms = random_terminals(g, 3, seed=seed)
    weights = weights_of(g, period=4 + seed % 3)
    dp = set(enumerate_minimum_steiner_trees_dp(g, terms, weights))
    filtered = set(enumerate_minimum_steiner_trees(g, terms, weights))
    assert dp == filtered


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    extra=st.integers(min_value=0, max_value=8),
    t=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    period=st.integers(min_value=1, max_value=6),
)
def test_matches_filter_route_property(n, extra, t, seed, period):
    g = random_connected_graph(n, extra, seed=seed)
    terms = random_terminals(g, min(t, n), seed=seed)
    weights = weights_of(g, period=period)
    dp = set(enumerate_minimum_steiner_trees_dp(g, terms, weights))
    filtered = set(enumerate_minimum_steiner_trees(g, terms, weights))
    assert dp == filtered

"""Persistent enumeration workers streaming solution chunks over pipes.

The serving layer needs incremental results (a request must start
streaming before the enumeration finishes), which the batch pool's
run-to-completion workers cannot provide.  :class:`WorkerPool` keeps
``workers`` long-lived processes, each on a duplex pipe, speaking a
tiny credit-based protocol:

==========================================  ====================================
parent → worker                             worker → parent
==========================================  ====================================
``("run", spec, offset, chunk, snapshot)``  ``("chunk", lines, structures, snap)``
``("more",)``  (flow credit)                ``("end", meta)``
``("cancel",)``                             —
``("quit",)``                               —
==========================================  ====================================

After every ``chunk`` the worker **blocks until it receives a credit**
(``more``) or a ``cancel`` — at most one chunk is ever in flight per
stream, which is the bounded per-client queue the server's backpressure
rests on.  Because the worker is parked at the credit wait whenever the
consumer is slow, cancellation is prompt: the server answers the
pending chunk with ``cancel`` instead of ``more`` and the worker
abandons the enumeration and returns to its idle loop, ready for the
next job — no process churn.

Resumable streams: for suspendable kinds
(``suspendable`` in :mod:`repro.core.capabilities`) the ``run`` message may
carry a serialized search-state ``snapshot``
(:mod:`repro.engine.suspend`) — the worker thaws it and continues in
O(state) instead of fast-forwarding, and every ``chunk`` (plus the
clean-``end`` meta) carries a fresh snapshot of the state *after* that
chunk, which is what lets the server checkpoint streams for O(state)
resume and transparently replace a crashed worker mid-stream.  Without
a snapshot (or for replay-only kinds) ``offset`` fast-forwards past the
first ``offset`` solutions of the (deterministic) enumeration without
rendering them.  The execution envelope carries over from
:mod:`repro.engine.jobs`: the job's ``deadline`` bounds the live
segment's wall clock (fast-forward included) and its op ``budget`` arms
when delivery begins, exactly like
:class:`repro.engine.cursor.EnumerationCursor`.

A worker that dies mid-stream (OOM-killed, crashed) surfaces as a
:class:`WorkerDied` to the caller and is replaced by a fresh process;
the server restarts the stream on the replacement from the last chunk's
snapshot.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.capabilities import spec as kind_spec
from repro.engine.jobs import (
    BudgetExceeded,
    EnumerationJob,
    _BudgetMeter,
    iter_structures,
    structure_line,
)

#: Default number of solutions per streamed chunk.
DEFAULT_CHUNK = 64


def _stream_job(
    conn,
    spec: Dict[str, Any],
    offset: int,
    chunk: int,
    snapshot: Optional[bytes] = None,
) -> None:
    """Run one streaming enumeration on the worker side of ``conn``."""
    start = time.perf_counter()
    meter = _BudgetMeter()
    delivered = 0
    stop_reason: Optional[str] = None
    exhausted = False
    error: Optional[str] = None
    buf_lines: list = []
    buf_structures: list = []
    search = None  # suspendable machine (when the kind supports one)
    clean = True  # False after a mid-step abort: snapshot unusable
    last_snap: list = [None, -1]  # [blob, emitted position] from flush()

    def flush() -> bool:
        """Send the buffered chunk; False when the stream was cancelled."""
        nonlocal stop_reason
        if not buf_lines:
            return True
        snap = search.snapshot() if search is not None and clean else None
        if snap is not None:
            last_snap[0], last_snap[1] = snap, search.emitted
        conn.send(("chunk", list(buf_lines), list(buf_structures), snap))
        buf_lines.clear()
        buf_structures.clear()
        reply = conn.recv()
        if reply[0] == "cancel":
            stop_reason = "cancelled"
            return False
        return True

    try:
        if "arena" in spec:
            from repro.serve import arena as _arena

            spec = _arena.resolve_spec(spec)
        job = EnumerationJob.from_dict(spec)
        deadline_at = (
            (time.monotonic() + job.deadline) if job.deadline is not None else None
        )
        meter.deadline_at = deadline_at
        remaining: Optional[int] = None
        if job.limit is not None:
            remaining = max(0, job.limit - offset)
        armed = offset == 0
        if armed:
            meter.budget = job.budget
        if remaining == 0:
            stop_reason = "limit"
        elif kind_spec(job.kind).suspendable:
            from repro.engine.suspend import JobSearch

            # Machine-driven streams enforce the deadline between
            # solutions — a clean suspension point, so deadline stops
            # keep their snapshot — instead of letting the substrate
            # meter abort mid-step.
            meter.deadline_at = None
            if snapshot is not None:
                from repro.exceptions import CursorStateError

                try:
                    search = JobSearch.restore(job, snapshot, meter)
                except CursorStateError:
                    # A damaged, cross-version or mismatched snapshot
                    # degrades to a deterministic offset fast-forward —
                    # a slower resume, never a failed stream.  The fleet
                    # migration path depends on this: the replacement
                    # replica may thaw a checkpoint written by a replica
                    # it shares nothing with but the store directory.
                    search = JobSearch(job, meter)
                else:
                    if search.emitted > offset:
                        # The snapshot ran past the requested position
                        # (an explicit client offset behind the
                        # checkpoint): restart and fast-forward — still
                        # deterministic.
                        search = JobSearch(job, meter)
            else:
                search = JobSearch(job, meter)
            try:
                while True:
                    pair = search.next()
                    if pair is None:
                        exhausted = True
                        break
                    line, structure = pair
                    if search.emitted <= offset:
                        if (
                            deadline_at is not None
                            and time.monotonic() > deadline_at
                        ):
                            stop_reason = "deadline"
                            break
                        continue  # fast-forward the uncovered gap
                    if not armed:
                        armed = True
                        if job.budget is not None:
                            meter.budget = meter.count + job.budget
                    buf_lines.append(line)
                    buf_structures.append(structure)
                    delivered += 1
                    if remaining is not None and delivered >= remaining:
                        stop_reason = "limit"
                        break
                    if deadline_at is not None and time.monotonic() > deadline_at:
                        stop_reason = "deadline"
                        break
                    if len(buf_lines) >= chunk:
                        if not flush():
                            break
            except BudgetExceeded:
                clean = False
                raise
            if exhausted and search.emitted < offset:
                error = "stream offset exceeds the job's solution stream"
                exhausted = False
                stop_reason = "error"
        else:
            seen = 0
            for structure in iter_structures(job, meter):
                seen += 1
                if seen <= offset:
                    continue  # fast-forward: deterministic order, skip cheaply
                if not armed:
                    armed = True
                    if job.budget is not None:
                        meter.budget = meter.count + job.budget
                buf_lines.append(structure_line(job, structure))
                buf_structures.append(structure)
                delivered += 1
                if remaining is not None and delivered >= remaining:
                    stop_reason = "limit"
                    break
                if len(buf_lines) >= chunk:
                    if not flush():
                        break
            else:
                exhausted = True
            if seen < offset and exhausted:
                error = "stream offset exceeds the job's solution stream"
                exhausted = False
                stop_reason = "error"
    except BudgetExceeded as exc:
        stop_reason = exc.reason
    except Exception as exc:  # noqa: BLE001 — a bad job must not kill the worker
        error = f"{type(exc).__name__}: {exc}"
        stop_reason = "error"
        exhausted = False
        clean = False
    try:
        if stop_reason != "cancelled":
            if not flush():
                pass  # cancelled at the final chunk; fall through to "end"
        final_snap = None
        if (
            search is not None
            and clean
            and not exhausted
            and error is None
            and stop_reason != "cancelled"  # drain_to_end discards the meta
        ):
            # The final flush usually froze the state at this exact
            # position already; reuse it instead of re-serializing.
            if last_snap[0] is not None and last_snap[1] == search.emitted:
                final_snap = last_snap[0]
            else:
                final_snap = search.snapshot()
        conn.send(
            (
                "end",
                {
                    "delivered": delivered,
                    "exhausted": exhausted,
                    "stop_reason": stop_reason,
                    "ops": meter.count,
                    "elapsed": round(time.perf_counter() - start, 6),
                    "error": error,
                    "snapshot": final_snap,
                },
            )
        )
    except (EOFError, OSError):
        return  # the parent went away; the idle loop will see EOF too


def _worker_main(conn) -> None:
    """Worker process loop: serve ``run`` requests until ``quit``/EOF."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "quit":
            return
        if msg[0] == "ping":
            conn.send(("pong", os.getpid()))
            continue
        if msg[0] == "run":
            _, spec, offset, chunk, snapshot = msg
            _stream_job(conn, spec, offset, chunk, snapshot)


class WorkerDied(RuntimeError):
    """The worker process exited while a stream was in flight."""


class WorkerHandle:
    """One pooled worker process and its parent-side pipe end."""

    def __init__(self, ctx, arena=None) -> None:
        self._ctx = ctx
        self.arena = arena
        parent, child = ctx.Pipe(duplex=True)
        self.conn = parent
        self.process = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self.process.start()
        child.close()
        self.failed = False

    # -- blocking half: the server calls these through an executor -----
    def start_stream(
        self,
        job: EnumerationJob,
        offset: int,
        chunk: int,
        snapshot: Optional[bytes] = None,
    ) -> None:
        """Dispatch a streaming run to this worker.

        ``snapshot`` (suspendable kinds only) thaws the enumeration at
        ``offset`` in O(state) instead of fast-forwarding.  With an
        arena attached, integer-compact instances travel as a spool-file
        ref instead of an inline edge list — the worker maps the spool
        read-only, so repeated streams of one dataset share a single
        physical copy across every worker (and fleet replica) on the
        machine.
        """
        spec = job.to_dict()
        if self.arena is not None:
            spec = self.arena.publish_spec(spec)
        self.conn.send(("run", spec, offset, chunk, snapshot))

    def recv(self) -> Tuple[Any, ...]:
        """Receive the next protocol message (raises :class:`WorkerDied`)."""
        try:
            return self.conn.recv()
        except (EOFError, OSError) as exc:
            self.failed = True
            raise WorkerDied(f"worker pid={self.process.pid} died mid-stream") from exc

    def credit(self) -> None:
        """Grant the worker one more chunk of flow-control credit."""
        self._send(("more",))

    def cancel(self) -> None:
        """Ask the worker to abandon the in-flight stream."""
        self._send(("cancel",))

    def drain_to_end(self) -> Optional[Dict[str, Any]]:
        """Consume messages until ``end`` so the worker is idle again."""
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                self.failed = True
                return None
            if msg[0] == "end":
                return msg[1]
            if msg[0] == "chunk":
                # The worker is waiting for a credit; repeat the cancel.
                self._send(("cancel",))

    def _send(self, msg) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self.failed = True

    def close(self) -> None:
        """Shut the worker down (gracefully, then forcibly)."""
        self._send(("quit",))
        self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - graceful quit suffices
            self.process.terminate()
            self.process.join(timeout=2)
        self.conn.close()

    @property
    def alive(self) -> bool:
        """True while the worker process is healthy."""
        return not self.failed and self.process.is_alive()


class WorkerPool:
    """A fixed-size pool of persistent streaming workers.

    Parameters
    ----------
    workers:
        Process count; each serves one stream at a time.
    mp_context:
        Multiprocessing start method (default: fork where available —
        workers inherit the warm interpreter).
    arena_dir:
        Optional spool directory for the zero-copy instance arena
        (:mod:`repro.serve.arena`).  When set, integer-compact
        instances are shipped to workers as mmap-backed spool refs
        instead of inline edge lists.

    The pool is synchronous (``acquire`` blocks); the asyncio server
    wraps acquisition and the per-message ``recv`` in its executor.  A
    worker returned in a failed state is replaced transparently.
    """

    def __init__(
        self,
        workers: int = 2,
        mp_context: Optional[str] = None,
        arena_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.size = workers
        self.arena = None
        if arena_dir is not None:
            from repro.serve.arena import InstanceArena

            self.arena = InstanceArena(arena_dir)
        self._idle: list = [
            WorkerHandle(self._ctx, arena=self.arena) for _ in range(workers)
        ]
        self._all: list = list(self._idle)
        self._closed = False

    def acquire(self) -> WorkerHandle:
        """Take an idle worker (caller must :meth:`release` it)."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if not self._idle:
            raise RuntimeError("no idle worker (acquire/release imbalance)")
        return self._idle.pop()

    def release(self, handle: WorkerHandle) -> None:
        """Return ``handle`` to the pool, replacing it if it failed."""
        if self._closed:
            handle.close()
            return
        if not handle.alive:
            try:
                handle.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            if handle in self._all:
                self._all.remove(handle)
            handle = WorkerHandle(self._ctx, arena=self.arena)
            self._all.append(handle)
        self._idle.append(handle)

    def _all_handles(self) -> list:
        """Every live handle, busy ones included (introspection/tests)."""
        return list(self._all)

    def close(self) -> None:
        """Terminate every pooled worker."""
        self._closed = True
        while self._idle:
            self._idle.pop().close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

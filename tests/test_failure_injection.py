"""Failure injection: the public API must fail loudly and predictably.

Every enumerator and substrate gets fed malformed input — missing
vertices, empty terminal sets, self-loops, negative weights, disconnected
instances — and must raise the documented :mod:`repro.exceptions` types
(or yield nothing where emptiness is the documented contract), never a
bare ``KeyError`` from internal dictionaries."""

import pytest

from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.induced_paths import enumerate_chordless_st_paths
from repro.core.optimum import dreyfus_wagner
from repro.core.ranked import k_lightest_minimal_steiner_trees
from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.exceptions import (
    InvalidInstanceError,
    NoSolutionError,
    ReproError,
    SelfLoopError,
    VertexNotFound,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra, shortest_path
from repro.hypergraph.hypergraph import Hypergraph
from repro.paths.yen import yen_k_shortest_paths
from repro.zdd.steiner import build_steiner_tree_zdd


@pytest.fixture
def small():
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


class TestGraphSubstrate:
    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            Graph().add_edge("x", "x")

    def test_self_loop_is_repro_and_value_error(self):
        with pytest.raises(ReproError):
            Graph().add_edge("x", "x")
        with pytest.raises(ValueError):
            Graph().add_edge("x", "x")

    def test_unknown_vertex_query(self, small):
        with pytest.raises(VertexNotFound):
            small.degree(99)

    def test_duplicate_edge_id_rejected(self, small):
        with pytest.raises(ValueError):
            small.add_edge(0, 3, eid=0)

    def test_digraph_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            DiGraph().add_arc("x", "x")


class TestEnumerators:
    def test_steiner_tree_missing_terminal(self, small):
        with pytest.raises(ReproError):
            list(enumerate_minimal_steiner_trees(small, [0, 99]))

    def test_steiner_tree_no_terminals(self, small):
        with pytest.raises(ReproError):
            list(enumerate_minimal_steiner_trees(small, []))

    def test_steiner_tree_disconnected_terminals_yield_nothing(self):
        # infeasibility is an empty enumeration, not an exception (an
        # enumerator's contract: the solution set happens to be empty)
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert list(enumerate_minimal_steiner_trees(g, [0, 3])) == []

    def test_forest_empty_family_list_trivial_solution(self, small):
        # the empty forest is the unique minimal Steiner forest of an
        # empty family collection
        assert list(enumerate_minimal_steiner_forests(small, [])) == [frozenset()]

    def test_forest_family_with_unknown_vertex(self, small):
        with pytest.raises(ReproError):
            list(enumerate_minimal_steiner_forests(small, [[0, 42]]))

    def test_terminal_steiner_edges_between_terminals_unused(self):
        # Lemma 27: solutions never use terminal-terminal edges, but the
        # instance stays feasible through the non-terminal component
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 0)])
        terminal_edge = 0  # the 0-1 edge joins two terminals
        solutions = list(enumerate_minimal_terminal_steiner_trees(g, [0, 1, 3]))
        assert solutions
        assert all(terminal_edge not in sol for sol in solutions)

    def test_directed_root_among_terminals(self):
        d = DiGraph.from_arcs([("r", "a"), ("a", "b")])
        with pytest.raises(ReproError):
            list(enumerate_minimal_directed_steiner_trees(d, ["r", "b"], "r"))

    def test_directed_unreachable_terminal_yields_nothing(self):
        d = DiGraph.from_arcs([("r", "a"), ("b", "a")])
        assert list(enumerate_minimal_directed_steiner_trees(d, ["b"], "r")) == []

    def test_chordless_unknown_endpoint(self, small):
        with pytest.raises(VertexNotFound):
            list(enumerate_chordless_st_paths(small, 0, 77))


class TestWeightedLayers:
    def test_dijkstra_negative_weight(self, small):
        with pytest.raises(InvalidInstanceError):
            dijkstra(small, 0, {0: -3.0})

    def test_shortest_path_unreachable(self):
        g = Graph.from_edges([(0, 1)], vertices=[5])
        with pytest.raises(NoSolutionError):
            shortest_path(g, 0, 5)

    def test_dreyfus_wagner_negative_weight(self, small):
        with pytest.raises(InvalidInstanceError):
            dreyfus_wagner(small, [0, 3], {0: -1.0})

    def test_dreyfus_wagner_disconnected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(NoSolutionError):
            dreyfus_wagner(g, [0, 3])

    def test_ranked_empty_terminals(self, small):
        with pytest.raises(ReproError):
            k_lightest_minimal_steiner_trees(small, [], {}, 3)

    def test_yen_no_path(self):
        g = Graph.from_edges([(0, 1)], vertices=[9])
        with pytest.raises(NoSolutionError):
            list(yen_k_shortest_paths(g, 0, 9))


class TestCompiledStructures:
    def test_zdd_unknown_terminal(self, small):
        with pytest.raises(InvalidInstanceError):
            build_steiner_tree_zdd(small, [0, 99])

    def test_zdd_empty_terminals(self, small):
        with pytest.raises(InvalidInstanceError):
            build_steiner_tree_zdd(small, [])

    def test_hypergraph_empty_edge(self):
        with pytest.raises(InvalidInstanceError):
            Hypergraph([1, 2], [set()])

    def test_hypergraph_edge_outside_universe(self):
        with pytest.raises(InvalidInstanceError):
            Hypergraph([1], [{2}])


class TestExceptionHierarchy:
    """Every library error is catchable as ReproError, and the graph
    lookup errors double as KeyError for dict-style call sites."""

    def test_vertex_not_found_is_key_error(self, small):
        with pytest.raises(KeyError):
            small.degree(99)

    def test_invalid_instance_is_value_error(self):
        with pytest.raises(ValueError):
            Hypergraph([1], [{2}])

    def test_no_solution_is_invalid_instance(self):
        assert issubclass(NoSolutionError, InvalidInstanceError)
        assert issubclass(InvalidInstanceError, ReproError)

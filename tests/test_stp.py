"""Tests for SteinLib STP file support (repro.graphs.stp)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.exceptions import InvalidInstanceError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_connected_graph, random_terminals
from repro.graphs.graph import Graph
from repro.graphs.stp import (
    STPFormatError,
    format_stp,
    parse_stp,
    read_stp,
    relabel_to_stp,
    stp_from_parts,
    write_stp,
)

MINIMAL = """33D32945 STP File, STP Format Version 1.0
SECTION Comment
Name "tiny"
Creator "unit test"
END

SECTION Graph
Nodes 4
Edges 4
E 1 2 1
E 2 3 2
E 3 4 1.5
E 1 4 10
END

SECTION Terminals
Terminals 2
T 1
T 4
END

EOF
"""


class TestParse:
    def test_parses_graph_and_terminals(self):
        inst = parse_stp(MINIMAL)
        assert inst.num_vertices == 4
        assert inst.num_edges == 4
        assert inst.terminals == [1, 4]
        assert inst.name == "tiny"
        assert inst.comments == {"Creator": "unit test"}
        assert not inst.is_directed

    def test_weights_by_insertion_order(self):
        inst = parse_stp(MINIMAL)
        assert inst.weights == {0: 1.0, 1: 2.0, 2: 1.5, 3: 10.0}

    def test_missing_magic_rejected(self):
        with pytest.raises(STPFormatError):
            parse_stp("SECTION Graph\nEND\nEOF")

    def test_isolated_declared_nodes_created(self):
        text = MINIMAL.replace("Nodes 4", "Nodes 6")
        inst = parse_stp(text)
        assert inst.num_vertices == 6

    def test_declared_nodes_too_small_rejected(self):
        with pytest.raises(STPFormatError):
            parse_stp(MINIMAL.replace("Nodes 4", "Nodes 2"))

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(STPFormatError):
            parse_stp(MINIMAL.replace("Edges 4", "Edges 3"))

    def test_terminal_count_mismatch_rejected(self):
        with pytest.raises(STPFormatError):
            parse_stp(MINIMAL.replace("Terminals 2", "Terminals 5"))

    def test_unknown_terminal_vertex_rejected(self):
        with pytest.raises(STPFormatError):
            parse_stp(MINIMAL.replace("T 4", "T 9"))

    def test_weightless_edge_defaults_to_one(self):
        text = MINIMAL.replace("E 1 2 1", "E 1 2")
        assert parse_stp(text).weights[0] == 1.0

    def test_nested_section_rejected(self):
        bad = MINIMAL.replace("SECTION Graph", "SECTION Graph\nSECTION Graph")
        with pytest.raises(STPFormatError):
            parse_stp(bad)

    def test_content_outside_section_rejected(self):
        bad = MINIMAL.replace("SECTION Graph", "E 1 2 3\nSECTION Graph")
        with pytest.raises(STPFormatError):
            parse_stp(bad)

    def test_self_loop_rejected(self):
        bad = MINIMAL.replace("E 1 2 1", "E 1 1 1")
        with pytest.raises(STPFormatError):
            parse_stp(bad)

    def test_coordinates_section_ignored(self):
        text = MINIMAL.replace(
            "EOF", "SECTION Coordinates\nDD 1 0 0\nEND\nEOF"
        )
        assert parse_stp(text).num_vertices == 4


DIRECTED = """33D32945 STP File, STP Format Version 1.0
SECTION Graph
Nodes 3
Arcs 3
A 1 2 1
A 2 3 1
A 1 3 5
END
SECTION Terminals
Terminals 2
Root 1
T 2
T 3
END
EOF
"""


class TestDirected:
    def test_arcs_build_digraph(self):
        inst = parse_stp(DIRECTED)
        assert inst.is_directed
        assert isinstance(inst.graph, DiGraph)
        assert inst.root == 1
        assert inst.num_edges == 3

    def test_mixed_edge_arc_rejected(self):
        bad = DIRECTED.replace("A 1 3 5", "E 1 3 5")
        with pytest.raises(STPFormatError):
            parse_stp(bad)


class TestRoundTrip:
    def test_format_then_parse_preserves_structure(self):
        inst = parse_stp(MINIMAL)
        again = parse_stp(format_stp(inst))
        assert again.num_vertices == inst.num_vertices
        assert again.terminals == inst.terminals
        assert sorted(again.weights.values()) == sorted(inst.weights.values())

    def test_directed_round_trip(self):
        inst = parse_stp(DIRECTED)
        again = parse_stp(format_stp(inst))
        assert again.is_directed
        assert again.root == 1

    def test_file_round_trip(self, tmp_path):
        inst = parse_stp(MINIMAL)
        path = tmp_path / "tiny.stp"
        write_stp(inst, path)
        assert read_stp(path).terminals == [1, 4]

    def test_non_integer_vertices_rejected_on_write(self):
        g = Graph.from_edges([("a", "b")])
        inst = stp_from_parts(g, ["a"])
        with pytest.raises(InvalidInstanceError):
            format_stp(inst)


class TestHelpers:
    def test_stp_from_parts_fills_unit_weights(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        inst = stp_from_parts(g, [1, 3])
        assert inst.weights == {0: 1.0, 1: 1.0}

    def test_relabel_preserves_edge_ids(self):
        g = Graph.from_edges([("x", "y"), ("y", "z")])
        relabeled, terminals, mapping = relabel_to_stp(g, ["x", "z"])
        assert sorted(relabeled.vertices()) == [1, 2, 3]
        assert sorted(relabeled.edge_ids()) == [0, 1]
        assert terminals == [mapping["x"], mapping["z"]]

    def test_relabeled_instance_enumerates_identically(self):
        g = random_connected_graph(9, 8, seed=2)
        terms = random_terminals(g, 3, seed=2)
        shifted = Graph()
        for e in g.edges():
            shifted.add_edge(e.u + 1, e.v + 1, eid=e.eid)
        inst = stp_from_parts(shifted, [t + 1 for t in terms], name="w")
        reparsed = parse_stp(format_stp(inst))
        direct = {
            frozenset(t)
            for t in enumerate_minimal_steiner_trees(shifted, inst.terminals)
        }
        via_file = {
            frozenset(t)
            for t in enumerate_minimal_steiner_trees(
                reparsed.graph, reparsed.terminals
            )
        }
        # edge ids may differ between graphs; compare endpoint multisets
        def as_endpoints(graph, trees):
            return {
                frozenset((min(graph.endpoints(e)), max(graph.endpoints(e))) for e in t)
                for t in trees
            }

        assert as_endpoints(shifted, direct) == as_endpoints(reparsed.graph, via_file)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    extra=st.integers(min_value=0, max_value=12),
    t=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=9_999),
)
def test_round_trip_property(n, extra, t, seed):
    g0 = random_connected_graph(n, extra, seed=seed)
    terms0 = random_terminals(g0, min(t, n), seed=seed)
    g, terms, _ = relabel_to_stp(g0, terms0)
    weights = {eid: float((eid * 13) % 7 + 1) for eid in g.edge_ids()}
    inst = stp_from_parts(g, terms, weights, name="prop")
    again = parse_stp(format_stp(inst))
    assert again.num_vertices == g.num_vertices
    assert again.num_edges == g.num_edges
    assert sorted(again.terminals) == sorted(terms)
    assert sorted(again.weights.values()) == sorted(weights.values())

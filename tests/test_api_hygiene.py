"""API hygiene: every public name resolves, is documented, and the
package exports stay sorted and duplicate-free."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.datagraph",
    "repro.engine",
    "repro.enumeration",
    "repro.graphs",
    "repro.hypergraph",
    "repro.paths",
    "repro.zdd",
]

MODULES = [
    "repro.bench.harness",
    "repro.bench.workloads",
    "repro.cli",
    "repro.core.baselines",
    "repro.core.induced_paths",
    "repro.core.minimum_enum",
    "repro.core.ranked",
    "repro.core.verification",
    "repro.datagraph.ranked",
    "repro.engine.cache",
    "repro.engine.cursor",
    "repro.engine.jobs",
    "repro.engine.pool",
    "repro.engine.service",
    "repro.enumeration.render",
    "repro.exceptions",
    "repro.graphs.interop",
    "repro.graphs.shortest_paths",
    "repro.graphs.stp",
    "repro.hypergraph.dualization",
    "repro.paths.yen",
    "repro.zdd.steiner",
    "repro.zdd.zdd",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for public in module.__all__:
        assert hasattr(module, public), f"{name}.{public} does not resolve"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_and_unique(name):
    module = importlib.import_module(name)
    exported = [n for n in module.__all__ if n != "__version__"]
    assert len(set(exported)) == len(exported), f"duplicates in {name}.__all__"
    assert exported == sorted(exported, key=str.lower), (
        f"{name}.__all__ is not sorted"
    )


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for public in module.__all__:
        if public == "__version__":
            continue
        obj = getattr(module, public)
        if callable(obj) and not (inspect.getdoc(obj) or "").strip():
            undocumented.append(public)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])

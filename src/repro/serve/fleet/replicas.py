"""Replica process management + registration helpers.

:class:`ReplicaProcess` launches one ``repro serve`` HTTP replica as a
real child process (``python -m repro serve --port 0 ...``), parses the
announced ephemeral port from its stderr, and can stop it gracefully
(``SIGTERM``) or brutally (``SIGKILL`` — what the chaos harness uses to
simulate a crashed host).  :func:`join_router` / :func:`leave_router`
are the blocking client calls behind ``repro serve --join`` and the
fleet CLI's membership management.

Everything here is synchronous on purpose: process supervision runs in
the CLI / test harness, not on the router's event loop.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.exceptions import ReproError


class ReplicaExited(ReproError):
    """A replica process died (or never announced its port)."""


def _parse_router_url(router: str) -> Tuple[str, int]:
    """``(host, port)`` from a router URL or bare ``host:port``."""
    if "//" not in router:
        router = f"http://{router}"
    parts = urlsplit(router)
    if parts.hostname is None or parts.port is None:
        raise ReproError(
            f"router address {router!r} must look like http://HOST:PORT"
        )
    return parts.hostname, parts.port


def _fleet_post(router: str, path: str, payload: Dict, timeout: float) -> Dict:
    host, port = _parse_router_url(router)
    body = json.dumps(payload)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {}
        if response.status != 200:
            detail = parsed.get("error") or repr(raw[:200])
            raise ReproError(
                f"router rejected {path} ({response.status}): {detail}"
            )
        return parsed
    finally:
        conn.close()


def join_router(
    router: str, name: str, host: str, port: int, timeout: float = 30.0
) -> Dict:
    """Register a running replica with the fleet router (blocking)."""
    return _fleet_post(
        router, "/fleet/join", {"name": name, "host": host, "port": port}, timeout
    )


def leave_router(router: str, name: str, timeout: float = 30.0) -> Dict:
    """Deregister a replica from the fleet router (blocking)."""
    return _fleet_post(router, "/fleet/leave", {"name": name}, timeout)


class ReplicaProcess:
    """One ``repro serve`` replica running as a child process.

    Parameters
    ----------
    name:
        The replica's fleet name (also passed as ``--name``).
    store:
        Shared :class:`~repro.serve.store.ResultStore` directory —
        every replica in a fleet points at the same one.
    registry, tenants:
        Optional dataset-registry / tenant directories.
    join:
        Router URL; when given the replica self-registers after binding
        (``repro serve --join``).
    checkpoint_every:
        Mid-stream checkpoint cadence forwarded to the server — the
        knob that makes SIGKILL migration resumable from a snapshot.
    sndbuf:
        Per-connection send-buffer bound forwarded as ``--sndbuf`` (see
        :class:`~repro.serve.server.EnumerationServer`).
    extra_args:
        Additional raw CLI arguments.
    """

    def __init__(
        self,
        name: str,
        store: Optional[str] = None,
        registry: Optional[str] = None,
        tenants: Optional[str] = None,
        host: str = "127.0.0.1",
        workers: int = 1,
        chunk: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        sndbuf: Optional[int] = None,
        join: Optional[str] = None,
        extra_args: Sequence[str] = (),
        env: Optional[Dict[str, str]] = None,
        startup_timeout: float = 60.0,
    ) -> None:
        self.name = name
        self.store = store
        self.registry = registry
        self.tenants = tenants
        self.host = host
        self.workers = workers
        self.chunk = chunk
        self.checkpoint_every = checkpoint_every
        self.sndbuf = sndbuf
        self.join = join
        self.extra_args = list(extra_args)
        self.env = env
        self.startup_timeout = startup_timeout
        self.port: Optional[int] = None
        self._process: Optional[subprocess.Popen] = None
        self._stderr: Deque[str] = deque(maxlen=200)
        self._drain: Optional[threading.Thread] = None
        self._announced = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def command(self) -> List[str]:
        """The argv this replica runs with."""
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.workers),
            "--name",
            self.name,
        ]
        if self.store is not None:
            cmd += ["--store", self.store]
        if self.registry is not None:
            cmd += ["--registry", self.registry]
        if self.tenants is not None:
            cmd += ["--tenants", self.tenants]
        if self.chunk is not None:
            cmd += ["--chunk", str(self.chunk)]
        if self.checkpoint_every is not None:
            cmd += ["--checkpoint-every", str(self.checkpoint_every)]
        if self.sndbuf is not None:
            cmd += ["--sndbuf", str(self.sndbuf)]
        if self.join is not None:
            cmd += ["--join", self.join]
        cmd += self.extra_args
        return cmd

    def start(self) -> "ReplicaProcess":
        """Spawn the child and block until it announces its port."""
        if self._process is not None:
            raise RuntimeError(f"replica {self.name!r} already started")
        env = dict(os.environ if self.env is None else self.env)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._announced.clear()
        self._process = subprocess.Popen(
            self.command(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        self._drain = threading.Thread(target=self._drain_stderr, daemon=True)
        self._drain.start()
        deadline = time.monotonic() + self.startup_timeout
        while not self._announced.wait(timeout=0.05):
            if self._process.poll() is not None:
                raise ReplicaExited(
                    f"replica {self.name!r} exited with code "
                    f"{self._process.returncode} before binding:\n"
                    + "".join(self._stderr)
                )
            if time.monotonic() > deadline:
                self.kill()
                raise ReplicaExited(
                    f"replica {self.name!r} did not announce a port within "
                    f"{self.startup_timeout:g}s:\n" + "".join(self._stderr)
                )
        return self

    def _drain_stderr(self) -> None:
        process = self._process
        if process is None or process.stderr is None:  # pragma: no cover
            return
        for line in process.stderr:
            self._stderr.append(line)
            if self.port is None and line.startswith("serving on "):
                address = line[len("serving on "):].strip()
                try:
                    self.port = int(address.rsplit(":", 1)[1])
                except (IndexError, ValueError):  # pragma: no cover
                    continue
                self._announced.set()
        # EOF: the child is gone; unblock any waiter so start() can
        # report the exit instead of timing out.
        self._announced.set()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        """The child's PID (``None`` before :meth:`start`)."""
        return self._process.pid if self._process is not None else None

    @property
    def running(self) -> bool:
        """Whether the child process is currently alive."""
        return self._process is not None and self._process.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        """The child's exit code once it has exited."""
        return self._process.returncode if self._process is not None else None

    def stderr_tail(self) -> str:
        """The last captured stderr lines (diagnostics)."""
        return "".join(self._stderr)

    def kill(self) -> None:
        """SIGKILL the replica — the chaos harness's crash primitive.

        No shutdown hook runs: in-flight streams drop mid-chunk and no
        final checkpoint is written, exactly like a crashed host.  Only
        the periodic ``checkpoint_every`` snapshots in the shared store
        survive for the router to migrate from.
        """
        if self._process is None or self._process.poll() is not None:
            return
        try:
            self._process.send_signal(signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
            pass
        self._process.wait(timeout=30)

    def terminate(self, timeout: float = 10.0) -> None:
        """Graceful stop: SIGTERM, escalating to SIGKILL on a hang."""
        if self._process is None or self._process.poll() is not None:
            return
        try:
            self._process.terminate()
        except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
            return
        try:
            self._process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.kill()

    def __enter__(self) -> "ReplicaProcess":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.terminate()

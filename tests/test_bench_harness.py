"""The measurement harness and workload definitions themselves."""

import io

import pytest

from repro.bench.harness import fit_linearity, measure_enumeration, print_table
from repro.bench.workloads import (
    directed_size_sweep,
    directed_terminal_sweep,
    forced_tail_instance,
    forest_size_sweep,
    path_grid_sweep,
    path_theta_sweep,
    steiner_tree_grid_instance,
    steiner_tree_size_sweep,
    steiner_tree_terminal_sweep,
    terminal_steiner_size_sweep,
)
from repro.core.steiner_tree import count_minimal_steiner_trees
from repro.enumeration.delay import CostMeter
from repro.graphs.traversal import is_connected, reachable_from


class TestMeasureEnumeration:
    def test_counts_and_size(self):
        def factory(meter: CostMeter):
            def gen():
                for i in range(5):
                    meter.tick(10)
                    yield i

            return gen()

        m = measure_enumeration("toy", 100, factory)
        assert m.solutions == 5
        assert m.size == 100
        assert m.metered.total == 50
        assert m.amortized_ops == 10
        assert m.max_delay_ops == 10
        assert m.normalized_max_delay == pytest.approx(0.1)
        assert m.wall_seconds >= 0

    def test_limit(self):
        m = measure_enumeration(
            "toy", 1, lambda meter: iter(range(100)), limit=7
        )
        assert m.solutions == 7

    def test_zero_size_guarded(self):
        m = measure_enumeration("toy", 0, lambda meter: iter([1]))
        assert m.normalized_max_delay == 0.0


class TestFitLinearity:
    def test_perfect_linear(self):
        exp, r2 = fit_linearity([10, 100, 1000], [20, 200, 2000])
        assert exp == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_perfect_quadratic(self):
        exp, _ = fit_linearity([10, 100, 1000], [100, 10000, 1000000])
        assert exp == pytest.approx(2.0)

    def test_degenerate_inputs(self):
        assert fit_linearity([1], [1]) == (0.0, 0.0)
        assert fit_linearity([1, 1], [2, 3]) == (0.0, 0.0)
        assert fit_linearity([0, 10], [0, 10]) == (0.0, 0.0)

    def test_constant_values(self):
        exp, r2 = fit_linearity([10, 100], [5, 5])
        assert exp == pytest.approx(0.0)


class TestPrintTable:
    def test_alignment_and_float_format(self):
        out = io.StringIO()
        text = print_table(
            "title", ("a", "bb"), [(1, 2.34567), (100, 0.5)], out=out
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "2.346" in text
        assert out.getvalue().startswith("title")


class TestWorkloads:
    def test_size_sweep_monotone(self):
        sizes = [i.size for i in steiner_tree_size_sweep()]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 10 * sizes[0]

    def test_terminal_sweep_fixed_graph(self):
        insts = steiner_tree_terminal_sweep()
        assert len({id(i.graph) for i in insts}) == 1
        assert [len(i.terminals) for i in insts] == [2, 4, 8, 16]

    def test_forced_tail_shape(self):
        inst = forced_tail_instance(5, 7)
        # terminals: diamond-source + 7 tail vertices
        assert len(inst.terminals) == 8
        assert count_minimal_steiner_trees(inst.graph, inst.terminals) == 32

    def test_forest_sweep_pairs_connected(self):
        for inst in forest_size_sweep()[:2]:
            assert is_connected(inst.graph)
            assert all(len(f) == 2 for f in inst.families)

    def test_terminal_steiner_sweep_valid(self):
        for inst in terminal_steiner_size_sweep()[:2]:
            for w in inst.terminals:
                assert w in inst.graph

    def test_directed_sweeps_reachable(self):
        for inst in directed_size_sweep()[:2]:
            reach = reachable_from(inst.digraph, inst.root)
            assert all(w in reach for w in inst.terminals)
        for inst in directed_terminal_sweep()[:2]:
            reach = reachable_from(inst.digraph, inst.root)
            assert all(w in reach for w in inst.terminals)

    def test_path_sweeps_well_formed(self):
        for name, g, s, t in path_theta_sweep() + path_grid_sweep():
            assert s in g and t in g

    def test_grid_instance(self):
        inst = steiner_tree_grid_instance(3, 3)
        assert inst.graph.num_vertices == 9
        assert len(inst.terminals) == 2

"""Exact minimum-weight Steiner trees (Dreyfus–Wagner).

The enumeration paper deliberately sidesteps optimization (minimum Steiner
tree is NP-hard, Karp 1972), but the classic Dreyfus–Wagner dynamic
program [11 in the paper] is the natural companion substrate: it scores
the enumeration output, powers the ranked-enumeration extension
(:mod:`repro.core.ranked`), and gives the examples a ground truth.

``dreyfus_wagner`` runs in O(3^t · n + 2^t · m log n): exponential in the
number of terminals (as it must be), polynomial in the graph.  Edge
weights are arbitrary non-negative numbers supplied per edge id.

The DP over subsets ``S ⊆ W`` and vertices ``v``:

* ``cost[S][v]`` = weight of a minimum Steiner tree for ``S ∪ {v}``;
* merge step: ``cost[S][v] ≤ cost[A][v] + cost[S\\A][v]`` over proper
  subsets ``A``;
* grow step: Dijkstra relaxation of ``cost[S][·]`` through the graph.

Parent pointers reconstruct an optimal edge set, which (for positive
weights) is also an inclusion-minimal Steiner tree — the bridge between
the optimization and enumeration worlds that the tests verify.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import InvalidInstanceError, NoSolutionError
from repro.graphs.graph import Graph

Vertex = Hashable
Weight = float


def uniform_weights(graph: Graph) -> Dict[int, Weight]:
    """Weight 1 per edge: minimum weight = minimum number of edges."""
    return {eid: 1.0 for eid in graph.edge_ids()}


def dreyfus_wagner(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Optional[Mapping[int, Weight]] = None,
) -> Tuple[Weight, FrozenSet[int]]:
    """A minimum-weight Steiner tree of ``(G, W)``.

    Returns ``(total weight, edge ids)``.  Raises
    :class:`NoSolutionError` if the terminals are not connected and
    :class:`InvalidInstanceError` on malformed input (missing terminals,
    negative weights).

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    >>> w = {0: 1.0, 1: 1.0, 2: 5.0}
    >>> cost, edges = dreyfus_wagner(g, ["a", "c"], w)
    >>> cost, sorted(edges)
    (2.0, [0, 1])
    """
    terms = list(dict.fromkeys(terminals))
    if not terms:
        raise InvalidInstanceError("at least one terminal is required")
    for w in terms:
        if w not in graph:
            raise InvalidInstanceError(f"terminal {w!r} is not in the graph")
    if weights is None:
        weights = uniform_weights(graph)
    for eid in graph.edge_ids():
        if weights.get(eid, 0) < 0:
            raise InvalidInstanceError("negative edge weights are not supported")
    if len(terms) == 1:
        return (0.0, frozenset())

    t = len(terms)
    full = (1 << t) - 1
    INF = float("inf")

    # cost[S] maps vertex -> best weight for terminals(S) ∪ {v}
    cost: Dict[int, Dict[Vertex, Weight]] = {}
    # parent[S][v] = ("edge", eid, prev_vertex) | ("merge", A)  for rebuild
    parent: Dict[int, Dict[Vertex, Tuple]] = {}

    for i, w in enumerate(terms):
        s = 1 << i
        cost[s] = {w: 0.0}
        parent[s] = {w: ("base",)}

    def dijkstra(s: int) -> None:
        """Relax cost[s] through the graph (grow step)."""
        dist = cost[s]
        par = parent[s]
        heap = [(d, repr(v), v) for v, d in dist.items()]
        heapq.heapify(heap)
        settled: Set[Vertex] = set()
        while heap:
            d, _tie, v = heapq.heappop(heap)
            if v in settled or d > dist.get(v, INF):
                continue
            settled.add(v)
            for eid, u in graph.incident_items(v):
                nd = d + weights.get(eid, 0.0)
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    par[u] = ("edge", eid, v)
                    heapq.heappush(heap, (nd, repr(u), u))

    # subsets in increasing popcount/numeric order; numeric order suffices
    # because every proper subset of S is numerically smaller.
    for s in range(1, full + 1):
        if s & (s - 1) == 0:
            if s in cost:
                dijkstra(s)
            continue
        dist: Dict[Vertex, Weight] = {}
        par: Dict[Vertex, Tuple] = {}
        # merge step over proper non-empty subsets containing the lowest bit
        low = s & (-s)
        a = (s - 1) & s
        while a:
            if a & low:  # canonical split: A contains the lowest bit
                b = s ^ a
                ca, cb = cost.get(a, {}), cost.get(b, {})
                smaller, larger, sa = (ca, cb, a) if len(ca) <= len(cb) else (cb, ca, s ^ a)
                for v, da in smaller.items():
                    db = larger.get(v)
                    if db is None:
                        continue
                    nd = da + db
                    if nd < dist.get(v, INF):
                        dist[v] = nd
                        par[v] = ("merge", sa)
            a = (a - 1) & s
        cost[s] = dist
        parent[s] = par
        dijkstra(s)

    finals = cost[full]
    root = terms[0]
    if root not in finals or finals[root] == INF:
        raise NoSolutionError("terminals are not connected in the graph")

    # Reconstruct the edge set.
    edges: Set[int] = set()
    stack = [(full, root)]
    while stack:
        s, v = stack.pop()
        record = parent[s].get(v)
        if record is None or record[0] == "base":
            continue
        if record[0] == "edge":
            _, eid, prev = record
            edges.add(eid)
            stack.append((s, prev))
        else:
            _, a = record
            stack.append((a, v))
            stack.append((s ^ a, v))
    return (finals[root], frozenset(edges))


def minimum_steiner_weight(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Optional[Mapping[int, Weight]] = None,
) -> Weight:
    """Just the optimal weight."""
    return dreyfus_wagner(graph, terminals, weights)[0]


def enumerate_minimum_steiner_trees(
    graph: Graph,
    terminals: Sequence[Vertex],
    weights: Optional[Mapping[int, Weight]] = None,
    meter=None,
):
    """All *minimum*-weight minimal Steiner trees (Table 1's [10] row).

    The paper's Table 1 cites an O(n)-delay special-purpose algorithm for
    enumerating minimum Steiner trees; reproducing that algorithm is out
    of scope (different paper), so this substitute pairs the
    Dreyfus–Wagner optimum with the linear-delay minimal enumeration and
    filters.  Correct, deterministic, and amortized-linear in the number
    of *minimal* solutions — the honest complexity caveat is documented
    in EXPERIMENTS.md.

    With uniform weights this enumerates the minimum-edge-count Steiner
    trees.  Yields frozensets of edge ids.
    """
    from repro.core.steiner_tree import enumerate_minimal_steiner_trees

    if weights is None:
        weights = uniform_weights(graph)
    optimum, _tree = dreyfus_wagner(graph, terminals, weights)
    for solution in enumerate_minimal_steiner_trees(graph, terminals, meter=meter):
        if abs(tree_weight(weights, solution) - optimum) < 1e-9:
            yield solution


def tree_weight(weights: Mapping[int, Weight], eids: Iterable[int]) -> Weight:
    """Total weight of an edge set."""
    return sum(weights.get(eid, 0.0) for eid in eids)

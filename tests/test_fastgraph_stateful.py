"""Stateful property tests for the fast kernel's undo-log invariants.

A hypothesis rule-based machine drives random interleavings of
``add_vertex`` / ``add_edge`` / ``remove_edge`` / ``remove_vertex`` /
``contract_edge`` / ``set_weight`` / ``checkpoint`` / ``rollback``
(including *nested* checkpoints) against two oracles:

* an **object graph** mirror (plus a weight dict) receiving the same
  mutations — the kernel must agree with it structurally (alive sets,
  endpoints, degrees, weights) after every rule;
* a **byte-exact snapshot** of the kernel's own internals taken at each
  checkpoint — a later rollback must restore it *exactly*, including
  per-vertex incidence order and the ``_posu``/``_posv`` swap-and-pop
  bookkeeping (DESIGN.md §3.2's "rollback is byte-exact" invariant).

This is the stateful coverage the differential tests in
``test_backend_equivalence.py`` assume: those check that enumeration
streams agree *given* a healthy kernel; this machine checks the kernel
stays healthy under arbitrary mutation interleavings.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.graphs.fastgraph import FastGraph
from repro.graphs.graph import Graph

VERTICES = st.integers(min_value=0, max_value=7)
WEIGHTS = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0, 3.25, 7.0])


def kernel_fingerprint(fg: FastGraph) -> dict:
    """Everything rollback promises to restore, byte for byte."""
    return {
        "n": fg.num_vertices,
        "m": fg.num_edges,
        "vorder": list(fg.vertices()),
        "eorder": list(fg.edge_ids()),
        "endpoints": {eid: fg.endpoints(eid) for eid in fg.edge_ids()},
        "inc": {v: list(fg.incident_ids(v)) for v in fg.vertices()},
        "posu": {eid: fg._posu[eid] for eid in fg.edge_ids()},
        "posv": {eid: fg._posv[eid] for eid in fg.edge_ids()},
        "wf": {eid: fg._wf[eid] for eid in fg.edge_ids()},
        "wi": {eid: fg._wi[eid] for eid in fg.edge_ids()},
    }


class FastGraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fg = FastGraph()
        self.oracle = Graph()  # structural oracle
        self.weights = {}  # eid -> weight oracle
        # stack of (undo mark, kernel fingerprint, oracle copy, weights copy)
        self.marks = []

    # -- mutations ------------------------------------------------------
    @rule(v=VERTICES)
    def add_vertex(self, v):
        self.fg.add_vertex(v)
        self.oracle.add_vertex(v)

    @rule(u=VERTICES, v=VERTICES, w=WEIGHTS)
    def add_edge(self, u, v, w):
        if u == v:
            return
        eid = self.fg.add_edge(u, v)
        self.oracle.add_edge(u, v, eid=eid)
        self.fg.set_weight(eid, w)
        self.weights[eid] = float(w)

    @precondition(lambda self: self.fg.num_edges > 0)
    @rule(data=st.data(), w=WEIGHTS)
    def set_weight(self, data, w):
        eid = data.draw(st.sampled_from(sorted(self.fg.edge_ids())))
        self.fg.set_weight(eid, w)
        self.weights[eid] = float(w)

    @precondition(lambda self: self.fg.num_edges > 0)
    @rule(data=st.data())
    def remove_edge(self, data):
        eid = data.draw(st.sampled_from(sorted(self.fg.edge_ids())))
        u, v = self.fg.remove_edge(eid)
        assert {u, v} == set(self.oracle.endpoints(eid))
        self.oracle.remove_edge(eid)
        self.weights.pop(eid, None)

    @precondition(lambda self: self.fg.num_vertices > 0)
    @rule(data=st.data())
    def remove_vertex(self, data):
        v = data.draw(st.sampled_from(sorted(self.fg.vertices())))
        self.fg.remove_vertex(v)
        self.oracle.remove_vertex(v)
        live = set(self.oracle.edge_ids())
        self.weights = {e: w for e, w in self.weights.items() if e in live}

    @precondition(lambda self: self.fg.num_edges > 0)
    @rule(data=st.data())
    def contract_edge(self, data):
        eid = data.draw(st.sampled_from(sorted(self.fg.edge_ids())))
        u, v = self.fg.endpoints(eid)
        survivor = self.fg.contract_edge(eid)
        loser = v if survivor == u else u
        # Mirror on the object oracle: re-point the loser's edges at the
        # survivor (parallel edges become self-loops and are dropped).
        self.oracle.remove_edge(eid)
        self.weights.pop(eid, None)
        for other_eid in list(self.oracle.incident_ids(loser)):
            a, b = self.oracle.endpoints(other_eid)
            other = b if a == loser else a
            self.oracle.remove_edge(other_eid)
            if other == survivor:
                self.weights.pop(other_eid, None)
            else:
                self.oracle.add_edge(survivor, other, eid=other_eid)
        self.oracle.remove_vertex(loser)

    # -- checkpoint / rollback (nested) ---------------------------------
    @rule()
    def checkpoint(self):
        self.marks.append(
            (
                self.fg.checkpoint(),
                kernel_fingerprint(self.fg),
                self.oracle.copy(),
                dict(self.weights),
            )
        )

    @precondition(lambda self: self.marks)
    @rule(data=st.data())
    def rollback(self, data):
        # Roll back to a random (possibly outer) checkpoint, discarding
        # the nested ones above it — the nested-checkpoint case.
        depth = data.draw(st.integers(min_value=0, max_value=len(self.marks) - 1))
        mark, fingerprint, oracle, weights = self.marks[depth]
        del self.marks[depth:]
        self.fg.rollback(mark)
        assert kernel_fingerprint(self.fg) == fingerprint, (
            "rollback did not restore the byte-exact checkpoint state"
        )
        self.oracle = oracle
        self.weights = weights

    # -- invariants (kernel ≡ object oracle, structurally) --------------
    @invariant()
    def counts_match(self):
        assert self.fg.num_vertices == self.oracle.num_vertices
        assert self.fg.num_edges == self.oracle.num_edges

    @invariant()
    def structure_matches(self):
        assert set(self.fg.vertices()) == set(self.oracle.vertices())
        assert set(self.fg.edge_ids()) == set(self.oracle.edge_ids())
        for eid in self.fg.edge_ids():
            assert set(self.fg.endpoints(eid)) == set(self.oracle.endpoints(eid))
        for v in self.fg.vertices():
            assert self.fg.degree(v) == self.oracle.degree(v)
            assert set(self.fg.incident_ids(v)) == set(self.oracle.incident_ids(v))

    @invariant()
    def weights_match(self):
        for eid in self.fg.edge_ids():
            expected = self.weights.get(eid, 0.0)
            assert self.fg.weight(eid) == expected
            wi = self.fg._wi[eid]
            if float(expected).is_integer():
                assert wi == int(expected)
            else:
                assert wi is None

    @invariant()
    def position_bookkeeping_consistent(self):
        fg = self.fg
        for eid in fg.edge_ids():
            u, v = fg.endpoints(eid)
            assert fg._inc[u][fg._posu[eid]] == eid
            assert fg._inc[v][fg._posv[eid]] == eid

    @invariant()
    def caches_rebuild_consistently(self):
        fg = self.fg
        pairs = fg.incidence_pairs()
        for v in fg.vertices():
            expected = [(e, fg._esum[e] - v) for e in fg._inc[v]]
            assert pairs[v] == expected


FastGraphMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestFastGraphMachine = FastGraphMachine.TestCase


def test_rollback_restores_order_after_revive():
    """Pinned machine counterexample: removing a vertex/edge and re-adding
    it inside a checkpoint scope used to leave the revived id at the
    *end* of the iteration order after rollback instead of its original
    position (the undo log never restored the order tombstone)."""
    fg = FastGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    mark = fg.checkpoint()
    fg.remove_vertex(0)
    fg.add_vertex(0)
    fg.add_edge(0, 1, eid=0)  # revive a dead edge id with new endpoints
    fg.rollback(mark)
    assert list(fg.vertices()) == [0, 1, 2]
    assert list(fg.edge_ids()) == [0, 1, 2]
    assert fg.endpoints(0) == (0, 1)
    assert [list(fg.incident_ids(v)) for v in (0, 1, 2)] == [[0, 2], [0, 1], [1, 2]]


def test_total_weight_matches_tree_weight_order():
    """total_weight must reproduce tree_weight's float result exactly
    (same additions, same order) — the ranked contract's foundation."""
    from repro.core.optimum import tree_weight

    fg = FastGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
    mapping = {0: 0.1, 1: 0.2, 2: 0.30000000000000004, 3: 7.0, 4: 1e-9}
    fg.load_weights(mapping)
    for eids in [frozenset(), frozenset({0}), frozenset({0, 1, 2}),
                 frozenset({0, 1, 2, 3, 4})]:
        assert fg.total_weight(eids) == tree_weight(mapping, eids)
    assert fg.exact_total_weight(frozenset({3})) == 7
    assert fg.exact_total_weight(frozenset({0, 3})) is None


def test_weighted_contraction_folds_parallel_minima():
    from repro.graphs.fastgraph import contracted_kernel_weighted

    # 0-1 contracted; parallel bundle between {0,1} and 2 folds to the
    # lightest edge (id 2, weight 0.5); tie on {0,1}-3 keeps smaller id.
    fg = FastGraph.from_edges(
        [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]
    )
    fg.load_weights({0: 1.0, 1: 2.0, 2: 0.5, 3: 4.0, 4: 4.0, 5: 9.0})
    ck, vmap = contracted_kernel_weighted(fg, [0])
    assert vmap[0] == vmap[1]
    kept = sorted(ck.edge_ids())
    assert kept == [2, 3, 5]  # min of {1,2}, min-id of tied {3,4}, lone 5
    assert ck.weight(2) == 0.5 and ck.weight(3) == 4.0 and ck.weight(5) == 9.0
    assert ck.exact_total_weight(frozenset({3, 5})) == 13

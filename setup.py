"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on interpreters
where PEP 660 editable installs are unavailable.
"""

from setuptools import setup

setup()

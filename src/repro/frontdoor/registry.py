"""Named datasets: register a graph once, query it by name forever.

``POST /datasets`` (or ``repro dataset add``) stores a graph under a
caller-chosen name; every later request references the name instead of
shipping the edge list.  Payloads are **content-addressed by the
isomorphism-stable instance digest** (:func:`repro.engine.cache.instance_key`
over a terminal-free probe job), the same key the result store uses —
so registering a relabeled copy of an existing dataset stores **no
second payload**: the new name becomes another pointer to the shared
payload, and the engine's canonical result cache is shared between the
two names automatically.

Layout under ``root`` (all writes atomic; ``root=None`` = memory only)::

    names/<sha256(name)>.json   {"name", "digest", counts, created}
    payloads/<digest>.json      {"edges", "vertices", "node_keywords"}
    usage.json                  per-name use counts + last keywords

Use counts drive the server's cache warming: the most-queried datasets
get their data graphs (and last compiled queries) rebuilt at startup.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.engine.cache import instance_key
from repro.engine.jobs import EnumerationJob
from repro.exceptions import ReproError

_SCHEMA = 1
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class DatasetError(ReproError):
    """Invalid dataset operation (bad name, unknown dataset, conflict)."""


class DatasetRecord(NamedTuple):
    """One registered dataset name."""

    name: str
    digest: str
    num_vertices: int
    num_edges: int
    created: float
    uses: int = 0


def dataset_digest(
    edges: Sequence[Tuple[Any, Any]],
    vertices: Sequence[Any] = (),
    node_keywords: Optional[Sequence[Tuple[Any, Sequence[str]]]] = None,
) -> str:
    """The isomorphism-stable digest of a graph payload.

    A terminal-free Steiner probe job feeds the same canonical-signature
    machinery the result store keys on, so relabeled copies of one graph
    collapse to one digest (falling back to the exact digest when the
    symmetry-refinement budget trips — dedupe then needs label equality).
    Keyword annotations are folded in through the canonical vertex
    order, so two structurally identical graphs with *different*
    keyword tables never collide, while a relabeled copy whose keywords
    moved with its labels still can (dedupe misses are harmless; a
    false merge would silently drop annotations).
    """
    probe = EnumerationJob(
        kind="steiner-tree",
        edges=tuple((u, v) for u, v in edges),
        vertices=tuple(vertices),
    )
    digest, order = instance_key(probe)
    if not node_keywords:
        return digest
    pos = (
        {v: i for i, v in enumerate(order)} if order is not None else {}
    )
    canon = sorted(
        (
            (0, pos[node]) if node in pos else (1, repr(node)),
            tuple(sorted(str(kw) for kw in kws)),
        )
        for node, kws in node_keywords
        if kws
    )
    if not canon:
        return digest
    return hashlib.sha256((digest + repr(canon)).encode()).hexdigest()


class DatasetRegistry:
    """Content-addressed named graph store.

    Parameters
    ----------
    root:
        Directory for the registry files; ``None`` keeps the registry
        in memory (useful for tests and ephemeral servers).

    Examples
    --------
    >>> reg = DatasetRegistry(None)
    >>> rec, deduped = reg.add("tri", [("a", "b"), ("b", "c"), ("a", "c")])
    >>> rec.num_edges, deduped
    (3, False)
    >>> reg.add("tri2", [("x", "y"), ("y", "z"), ("x", "z")])[1]
    True
    """

    def __init__(self, root: Optional[str]) -> None:
        self.root = root
        self._lock = threading.Lock()
        # memory tier (always populated; the disk tier mirrors it)
        self._names: Dict[str, Dict[str, Any]] = {}
        self._payloads: Dict[str, Dict[str, Any]] = {}
        self._uses: Dict[str, int] = {}
        self._last_keywords: Dict[str, List[str]] = {}
        self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _names_dir(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "names")

    def _payloads_dir(self) -> str:
        assert self.root is not None
        return os.path.join(self.root, "payloads")

    def _name_path(self, name: str) -> str:
        digest = hashlib.sha256(name.encode()).hexdigest()[:40]
        return os.path.join(self._names_dir(), f"{digest}.json")

    @staticmethod
    def _write_atomic(path: str, payload: Dict[str, Any]) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _load(self) -> None:
        if self.root is None:
            return
        try:
            listing = os.listdir(self._names_dir())
        except FileNotFoundError:
            listing = []
        for entry in listing:
            if not entry.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._names_dir(), entry)) as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("schema") != _SCHEMA:
                continue
            self._names[record["name"]] = record
        for digest in {r["digest"] for r in self._names.values()}:
            path = os.path.join(self._payloads_dir(), f"{digest}.json")
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if payload.get("schema") == _SCHEMA:
                self._payloads[digest] = payload
        usage_path = os.path.join(self.root, "usage.json")
        try:
            with open(usage_path) as handle:
                usage = json.load(handle)
        except (OSError, json.JSONDecodeError):
            usage = None
        if usage and usage.get("schema") == _SCHEMA:
            self._uses = {str(k): int(v) for k, v in usage.get("uses", {}).items()}
            self._last_keywords = {
                str(k): list(v) for k, v in usage.get("keywords", {}).items()
            }

    def _persist_usage(self) -> None:
        if self.root is None:
            return
        self._write_atomic(
            os.path.join(self.root, "usage.json"),
            {
                "schema": _SCHEMA,
                "uses": self._uses,
                "keywords": self._last_keywords,
            },
        )

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        edges: Sequence[Tuple[Any, Any]],
        vertices: Sequence[Any] = (),
        node_keywords: Optional[Sequence[Tuple[Any, Sequence[str]]]] = None,
    ) -> Tuple[DatasetRecord, bool]:
        """Register ``edges`` under ``name``; returns ``(record, deduped)``.

        ``deduped`` is True when an isomorphic payload was already
        stored (the name points at the existing payload).  Re-adding an
        existing name is idempotent for the same graph and a
        :class:`DatasetError` for a different one.
        """
        if not _NAME_RE.match(name or ""):
            raise DatasetError(
                f"invalid dataset name {name!r} (want [A-Za-z0-9._-], "
                "max 64 chars, leading alphanumeric)"
            )
        edge_tuple = tuple((u, v) for u, v in edges)
        if not edge_tuple and not vertices:
            raise DatasetError("dataset needs at least one edge or vertex")
        digest = dataset_digest(edge_tuple, vertices, node_keywords)
        with self._lock:
            existing = self._names.get(name)
            if existing is not None and existing["digest"] != digest:
                raise DatasetError(
                    f"dataset {name!r} already registered with a different graph"
                )
            deduped = digest in self._payloads or any(
                r["digest"] == digest for r in self._names.values()
            )
            if digest not in self._payloads:
                payload = {
                    "schema": _SCHEMA,
                    "edges": [[u, v] for u, v in edge_tuple],
                    "vertices": list(vertices),
                    "node_keywords": [
                        [node, sorted(kws)] for node, kws in (node_keywords or [])
                    ],
                }
                self._payloads[digest] = payload
                if self.root is not None:
                    self._write_atomic(
                        os.path.join(self._payloads_dir(), f"{digest}.json"),
                        payload,
                    )
            vertex_set = {v for e in edge_tuple for v in e} | set(vertices)
            record = {
                "schema": _SCHEMA,
                "name": name,
                "digest": digest,
                "num_vertices": len(vertex_set),
                "num_edges": len(edge_tuple),
                "created": existing["created"] if existing else time.time(),
            }
            self._names[name] = record
            if self.root is not None:
                self._write_atomic(self._name_path(name), record)
            return self._record(record), deduped

    def _record(self, raw: Dict[str, Any]) -> DatasetRecord:
        return DatasetRecord(
            name=raw["name"],
            digest=raw["digest"],
            num_vertices=int(raw["num_vertices"]),
            num_edges=int(raw["num_edges"]),
            created=float(raw["created"]),
            uses=self._uses.get(raw["name"], 0),
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def describe(self, name: str) -> Optional[DatasetRecord]:
        """The record for ``name``, or ``None``."""
        raw = self._names.get(name)
        return self._record(raw) if raw is not None else None

    def payload(self, name: str) -> Dict[str, Any]:
        """The stored graph payload for ``name``.

        Raises :class:`DatasetError` for unknown names (the server maps
        this to a 404).
        """
        raw = self._names.get(name)
        if raw is None:
            raise DatasetError(f"unknown dataset {name!r}")
        payload = self._payloads.get(raw["digest"])
        if payload is None:
            raise DatasetError(f"dataset {name!r} payload is missing")
        return payload

    def list(self) -> List[DatasetRecord]:
        """All registered datasets, sorted by name."""
        return [self._record(self._names[n]) for n in sorted(self._names)]

    def remove(self, name: str) -> bool:
        """Unregister ``name``; drops the payload when unreferenced."""
        with self._lock:
            raw = self._names.pop(name, None)
            if raw is None:
                return False
            if self.root is not None:
                try:
                    os.unlink(self._name_path(name))
                except FileNotFoundError:
                    pass
            digest = raw["digest"]
            if not any(r["digest"] == digest for r in self._names.values()):
                self._payloads.pop(digest, None)
                if self.root is not None:
                    try:
                        os.unlink(
                            os.path.join(self._payloads_dir(), f"{digest}.json")
                        )
                    except FileNotFoundError:
                        pass
            self._uses.pop(name, None)
            self._last_keywords.pop(name, None)
            self._persist_usage()
            return True

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    # usage + warming hints
    # ------------------------------------------------------------------
    def record_use(self, name: str, keywords: Sequence[str] = ()) -> None:
        """Count one query against ``name`` (drives cache warming)."""
        with self._lock:
            self._uses[name] = self._uses.get(name, 0) + 1
            if keywords:
                self._last_keywords[name] = list(keywords)
            self._persist_usage()

    def popular(self, k: int) -> List[str]:
        """The ``k`` most-used dataset names (most queried first)."""
        ranked = sorted(
            self._names, key=lambda n: (-self._uses.get(n, 0), n)
        )
        return ranked[: max(0, k)]

    def last_keywords(self, name: str) -> List[str]:
        """The keywords of ``name``'s most recent answer query."""
        return list(self._last_keywords.get(name, []))

    # ------------------------------------------------------------------
    # job-spec resolution
    # ------------------------------------------------------------------
    def resolve_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Expand a ``{"dataset": name, ...}`` job spec into edges.

        Leaves specs without a ``dataset`` reference untouched.  The
        dataset's edges / vertices / keyword table are injected; a spec
        that also ships its own ``edges`` is rejected as ambiguous.
        """
        if "dataset" not in spec:
            return spec
        name = spec["dataset"]
        if not isinstance(name, str):
            raise DatasetError("'dataset' must be a string name")
        if spec.get("edges"):
            raise DatasetError("give either 'dataset' or 'edges', not both")
        payload = self.payload(name)
        resolved = {k: v for k, v in spec.items() if k != "dataset"}
        resolved["edges"] = [list(e) for e in payload["edges"]]
        if payload.get("vertices"):
            resolved["vertices"] = list(payload["vertices"])
        if payload.get("node_keywords") and "node_keywords" not in resolved:
            resolved["node_keywords"] = [
                [node, list(kws)] for node, kws in payload["node_keywords"]
            ]
        self.record_use(name, resolved.get("keywords") or ())
        return resolved

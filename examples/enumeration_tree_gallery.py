#!/usr/bin/env python
"""Gallery: render improved enumeration trees (the paper's Figure 1).

The output-queue argument of Theorem 20 rests on the *shape* of the
improved enumeration tree: every internal node has at least two
children, so internal nodes never outnumber leaves, and the tree
decomposes into a preprocessing prefix plus post-preprocessing subtrees
``T_1, …, T_ℓ``.  This example renders that structure for three
instances of growing size, and checks the shape claims on each.

Run:  python examples/enumeration_tree_gallery.py
"""

from repro.core.steiner_tree import steiner_tree_events
from repro.enumeration.render import EnumerationTree, render_figure1
from repro.graphs.generators import (
    random_connected_graph,
    random_terminals,
    theta_graph,
)


def show(title, graph, terminals, n=None) -> None:
    print(f"\n=== {title} ===")
    tree = EnumerationTree.from_events(steiner_tree_events(graph, terminals))
    print(render_figure1(tree, n=n))
    # the Lemma 16 / Lemma 18 shape claims
    assert tree.min_internal_children >= 2, "improved tree must branch"
    assert tree.num_internal <= tree.num_leaves
    print(
        f"shape check: {tree.num_internal} internal <= {tree.num_leaves} "
        f"leaves; min branching {tree.min_internal_children} >= 2"
    )


def main() -> None:
    theta = theta_graph(3, 3)
    show("theta graph (3 disjoint s-t paths)", theta, ["s", "t"])

    g = random_connected_graph(9, 6, seed=11)
    show("small random graph, 3 terminals", g, random_terminals(g, 3, seed=11), n=3)

    g = random_connected_graph(11, 6, seed=5)
    show(
        "larger random graph, 3 terminals",
        g,
        random_terminals(g, 3, seed=5),
        n=8,
    )


if __name__ == "__main__":
    main()

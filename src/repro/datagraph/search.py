"""A small keyword-search engine over a data graph.

Wraps the K-fragment enumerators in the shape a search application
actually uses: a long-lived engine object holding the corpus, a
``query()`` call returning ranked answers with execution statistics, and
an ``explain()`` renderer for debugging why an answer was returned.

This is the layer the paper's introduction gestures at ("a core component
in several keyword search systems"): everything below it — query-graph
construction, Steiner enumeration, delay guarantees — is the library.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.datagraph.kfragments import (
    Fragment,
    directed_kfragments,
    strong_kfragments,
    undirected_kfragments,
)
from repro.datagraph.model import DataGraph

Node = Hashable
Keyword = str

VARIANTS = ("undirected", "strong", "directed")


@dataclass
class QueryResult:
    """Answers plus execution statistics for one query."""

    keywords: Tuple[Keyword, ...]
    variant: str
    answers: List[Fragment]
    enumerated: int          # fragments pulled from the enumerator
    truncated: bool          # True if the limit stopped the enumeration
    seconds: float

    def __len__(self) -> int:
        return len(self.answers)


class KeywordSearchEngine:
    """Query interface over a fixed :class:`DataGraph`.

    Parameters
    ----------
    datagraph:
        The corpus.
    default_limit:
        Enumeration cap per query (linear delay makes the cap a real
        latency bound, not a heuristic).
    backend:
        Default enumeration backend for every query: ``"object"``
        (reference) or ``"fast"`` (integer kernel).  Per-query override
        via :meth:`query`'s ``backend`` argument.  Both produce the same
        answer stream (queries run on the compiled integer-compact query
        graph); ``"fast"`` is the production choice.

    Examples
    --------
    >>> dg = DataGraph()
    >>> _ = dg.add_node("a", ["x"]); _ = dg.add_node("b", ["y"])
    >>> _ = dg.add_link("a", "b")
    >>> engine = KeywordSearchEngine(dg)
    >>> result = engine.query(["x", "y"])
    >>> len(result), result.answers[0].size
    (1, 1)
    """

    def __init__(
        self,
        datagraph: DataGraph,
        default_limit: int = 1000,
        backend: str = "object",
    ) -> None:
        from repro.core.backend import check_backend

        if default_limit < 1:
            raise ValueError("default_limit must be positive")
        self.datagraph = datagraph
        self.default_limit = default_limit
        self.backend = check_backend(backend, kind="kfragments")
        self._query_count = 0

    # ------------------------------------------------------------------
    def query(
        self,
        keywords: Sequence[Keyword],
        variant: str = "undirected",
        root: Optional[Node] = None,
        limit: Optional[int] = None,
        top: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Run a keyword query.

        ``limit`` caps the enumeration (default: engine default);
        ``top`` keeps only the k smallest answers of the enumerated set;
        ``backend`` overrides the engine's default backend for this
        query.  Raises :class:`InvalidInstanceError` for unknown
        keywords and :class:`ValueError` for bad parameters — a typo
        should fail loud, not return an empty result page.
        """
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if variant == "directed" and root is None:
            raise ValueError("directed queries need a root node")
        cap = self.default_limit if limit is None else limit
        if cap < 1:
            raise ValueError("limit must be positive")
        chosen = self.backend if backend is None else backend

        if variant == "undirected":
            source = undirected_kfragments(self.datagraph, keywords, backend=chosen)
        elif variant == "strong":
            source = strong_kfragments(self.datagraph, keywords, backend=chosen)
        else:
            source = directed_kfragments(
                self.datagraph, keywords, root, backend=chosen
            )

        started = time.perf_counter()
        answers: List[Fragment] = []
        truncated = False
        for fragment in source:
            answers.append(fragment)
            if len(answers) >= cap:
                truncated = True
                break
        seconds = time.perf_counter() - started
        enumerated = len(answers)
        answers.sort(key=lambda f: (f.size, f.matches))
        if top is not None:
            answers = answers[: max(0, top)]
        self._query_count += 1
        return QueryResult(
            tuple(dict.fromkeys(keywords)), variant, answers, enumerated, truncated, seconds
        )

    # ------------------------------------------------------------------
    def explain(self, fragment: Fragment) -> str:
        """Human-readable rendering of one answer."""
        lines = [f"answer with {fragment.size} structural edge(s)"]
        for kw, node in fragment.matches:
            lines.append(f"  keyword {kw!r} matched node {node!r}")
        for eid in sorted(fragment.structural_edges):
            u, v = self.datagraph.graph.endpoints(eid)
            lines.append(f"  connector: {u!r} ~ {v!r}")
        return "\n".join(lines)

    def suggest(self, prefix: str, limit: int = 10) -> List[Keyword]:
        """Keywords starting with ``prefix`` (sorted by document
        frequency, then alphabetically) — the autocomplete primitive."""
        candidates = [
            kw for kw in self.datagraph.vocabulary() if str(kw).startswith(prefix)
        ]
        candidates.sort(
            key=lambda kw: (-len(self.datagraph.nodes_with_keyword(kw)), str(kw))
        )
        return candidates[:limit]

    @property
    def queries_served(self) -> int:
        """Number of queries processed by this engine instance."""
        return self._query_count

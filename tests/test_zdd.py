"""Tests for the ZDD substrate and the frontier Steiner construction."""

import pytest

try:  # only the Kirchhoff determinant oracle needs numpy
    import numpy as np
except ImportError:
    np = None

needs_numpy = pytest.mark.skipif(np is None, reason="numpy unavailable")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.verification import is_steiner_subgraph
from repro.exceptions import InvalidInstanceError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_terminals,
    theta_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.spanning import is_tree, tree_leaves
from repro.zdd.steiner import (
    bfs_edge_order,
    build_steiner_tree_zdd,
    count_steiner_trees_zdd,
    enumerate_minimal_steiner_trees_zdd,
    spanning_tree_zdd,
)
from repro.zdd.zdd import BOTTOM, TOP, ZDDBuilder, family_zdd


class TestZDDSubstrate:
    def test_family_round_trip(self):
        sets = [{1, 2}, {2}, set(), {1, 3}]
        z = family_zdd(sets, [1, 2, 3])
        assert z.count() == 4
        assert {frozenset(s) for s in z} == {frozenset(s) for s in sets}

    def test_empty_family(self):
        z = family_zdd([], [1, 2])
        assert z.is_empty()
        assert z.count() == 0
        assert list(z) == []

    def test_unit_family(self):
        z = family_zdd([set()], [1])
        assert z.count() == 1
        assert list(z) == [frozenset()]

    def test_membership(self):
        z = family_zdd([{1, 2}, {3}], [1, 2, 3])
        assert {1, 2} in z
        assert {3} in z
        assert {1} not in z
        assert {1, 2, 3} not in z
        assert {99} not in z

    def test_min_size_and_histogram(self):
        z = family_zdd([{1, 2}, {3}, {1, 2, 3}], [1, 2, 3])
        assert z.min_size() == 1
        assert z.count_by_size() == {1: 1, 2: 1, 3: 1}

    def test_min_size_of_empty_family_raises(self):
        with pytest.raises(InvalidInstanceError):
            family_zdd([], [1]).min_size()

    def test_element_outside_universe_rejected(self):
        with pytest.raises(InvalidInstanceError):
            family_zdd([{9}], [1])

    def test_zero_suppression_shares_structure(self):
        builder = ZDDBuilder({7: 0})
        assert builder.make(7, TOP, BOTTOM) == TOP

    def test_hash_consing(self):
        builder = ZDDBuilder({5: 0, 6: 1})
        a = builder.make(6, BOTTOM, TOP)
        b = builder.make(6, BOTTOM, TOP)
        assert a == b

    def test_variable_order_enforced(self):
        builder = ZDDBuilder({5: 0, 6: 1})
        child = builder.make(5, BOTTOM, TOP)
        with pytest.raises(InvalidInstanceError):
            builder.make(6, child, TOP)


def matrix_tree_count(graph: Graph) -> int:
    """Kirchhoff's theorem: spanning tree count = any cofactor of the
    Laplacian.  Independent oracle for the ZDD construction."""
    vertices = sorted(graph.vertices(), key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    lap = np.zeros((n, n))
    for edge in graph.edges():
        i, j = index[edge.u], index[edge.v]
        lap[i, i] += 1
        lap[j, j] += 1
        lap[i, j] -= 1
        lap[j, i] -= 1
    minor = lap[1:, 1:]
    return int(round(float(np.linalg.det(minor)))) if n > 1 else 1


class TestSpanningTrees:
    @pytest.mark.parametrize(
        "graph, expected",
        [
            (cycle_graph(3), 3),
            (cycle_graph(5), 5),
            (complete_graph(4), 16),
            (complete_graph(5), 125),  # Cayley: 5^3
            (path_graph(6), 1),
        ],
    )
    def test_known_counts(self, graph, expected):
        assert spanning_tree_zdd(graph).count() == expected

    @needs_numpy
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_matrix_tree_theorem(self, seed):
        g = random_connected_graph(7, 6 + seed % 4, seed=seed)
        assert spanning_tree_zdd(g).count() == matrix_tree_count(g)

    def test_grid_graph(self):
        g = grid_graph(3, 3)
        assert spanning_tree_zdd(g).count() == 192
        if np is not None:
            assert matrix_tree_count(g) == 192

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidInstanceError):
            spanning_tree_zdd(Graph())


class TestSteinerZDD:
    def test_doc_example(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        z = build_steiner_tree_zdd(g, ["a", "d"])
        assert sorted(sorted(s) for s in z) == [[0, 1, 3], [2, 3]]

    def test_single_terminal_minimal_is_bare_vertex(self):
        g = Graph.from_edges([(0, 1)])
        z = build_steiner_tree_zdd(g, [0])
        assert list(z) == [frozenset()]

    def test_single_terminal_nonminimal_counts_subtrees(self):
        # path 0-1-2: subtrees containing 0: {}, {01}, {01,12}
        g = path_graph(3)
        z = build_steiner_tree_zdd(g, [0], minimal=False)
        assert z.count() == 3

    def test_isolated_terminal_pair_infeasible(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert build_steiner_tree_zdd(g, [0, 2]).is_empty()

    def test_isolated_single_terminal(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert build_steiner_tree_zdd(g, [2], minimal=False).count() == 1

    def test_disconnected_terminals_infeasible(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert build_steiner_tree_zdd(g, [0, 3]).is_empty()

    def test_terminal_not_in_graph_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_steiner_tree_zdd(Graph.from_edges([(0, 1)]), [5])

    def test_no_terminals_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_steiner_tree_zdd(Graph.from_edges([(0, 1)]), [])

    def test_edgeless_graph_two_terminals(self):
        g = Graph.from_edges([], vertices=[0, 1])
        assert build_steiner_tree_zdd(g, [0, 1]).is_empty()

    def test_theta_graph_st_paths(self):
        # theta(3, 4): 3 internally disjoint s-t paths; minimal Steiner
        # trees of the two hubs are exactly those paths
        g = theta_graph(3, 4)
        z = build_steiner_tree_zdd(g, ["s", "t"])
        assert z.count() == 3

    def test_multiedges_counted_separately(self):
        g = Graph()
        g.add_edge("u", "v")
        g.add_edge("u", "v")
        z = build_steiner_tree_zdd(g, ["u", "v"])
        assert z.count() == 2

    def test_nonminimal_superset_of_minimal(self):
        g = random_connected_graph(8, 7, seed=4)
        terms = random_terminals(g, 3, seed=4)
        minimal = set(build_steiner_tree_zdd(g, terms, minimal=True))
        trees = set(build_steiner_tree_zdd(g, terms, minimal=False))
        assert minimal <= trees
        # filtering the tree family by all-leaves-terminal = minimal family
        filtered = set()
        for eids in trees:
            if all(leaf in set(terms) for leaf in tree_leaves(g, eids)):
                filtered.add(eids)
        assert filtered == minimal

    def test_explicit_edge_order_same_family(self):
        g = random_connected_graph(7, 6, seed=9)
        terms = random_terminals(g, 3, seed=9)
        default = set(build_steiner_tree_zdd(g, terms))
        reversed_order = sorted(g.edge_ids(), reverse=True)
        other = set(build_steiner_tree_zdd(g, terms, edge_order=reversed_order))
        assert default == other

    def test_bad_edge_order_rejected(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(InvalidInstanceError):
            build_steiner_tree_zdd(g, [0, 2], edge_order=[0])

    def test_count_helper(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert count_steiner_trees_zdd(g, [0, 2]) == 2
        assert count_steiner_trees_zdd(g, [0, 2], minimal=False) == 4

    def test_every_member_is_a_steiner_tree(self):
        g = random_connected_graph(9, 9, seed=17)
        terms = random_terminals(g, 4, seed=17)
        for eids in build_steiner_tree_zdd(g, terms, minimal=False):
            sub = g.edge_subgraph(eids)
            assert is_tree(sub)
            assert is_steiner_subgraph(g, eids, terms)


class TestBfsEdgeOrder:
    def test_is_permutation(self):
        g = random_connected_graph(10, 12, seed=1)
        order = bfs_edge_order(g, 0)
        assert sorted(order) == sorted(g.edge_ids())

    def test_covers_disconnected_edges(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert sorted(bfs_edge_order(g, 0)) == [0, 1]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=9),
    extra=st.integers(min_value=0, max_value=8),
    t=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_zdd_equals_direct_enumeration(n, extra, t, seed):
    """The compiled family is exactly the linear-delay enumerator's output."""
    g = random_connected_graph(n, extra, seed=seed)
    terms = random_terminals(g, min(t, n), seed=seed)
    direct = {frozenset(s) for s in enumerate_minimal_steiner_trees(g, terms)}
    compiled = set(enumerate_minimal_steiner_trees_zdd(g, terms))
    assert compiled == direct


@needs_numpy
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    extra=st.integers(min_value=0, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_spanning_count_matches_kirchhoff(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    assert spanning_tree_zdd(g).count() == matrix_tree_count(g)

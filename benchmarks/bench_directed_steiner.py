"""T1-dst — minimal directed Steiner tree enumeration (Table 1 row
"Directed Steiner Tree").

Claims exercised:

* amortized O(n+m) per solution (Theorem 36), linear in the size sweep;
* the prior work's delay O(mt(|T_i|+|T_{i-1}|)) carries an explicit
  factor t; with a forced directed tail, the unimproved variant's delay
  grows with t while this work's stays flat.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import fit_linearity, measure_enumeration, print_table
from repro.bench.workloads import directed_size_sweep
from repro.core.directed_steiner import (
    enumerate_minimal_directed_steiner_trees,
    enumerate_minimal_directed_steiner_trees_linear_delay,
    enumerate_minimal_directed_steiner_trees_simple,
)
from repro.graphs.digraph import DiGraph

from benchutil import make_drainer

LIMIT = 250


def forced_tail_directed(num_diamonds: int, tail: int):
    """Directed analogue of the forced-tail family: diamond chain from the
    root, then a forced directed path of terminals."""
    d = DiGraph()
    prev = ("j", 0)
    for i in range(num_diamonds):
        up, down, nxt = ("u", i), ("d", i), ("j", i + 1)
        d.add_arc(("j", i), up)
        d.add_arc(("j", i), down)
        d.add_arc(up, nxt)
        d.add_arc(down, nxt)
        prev = nxt
    terminals = []
    for i in range(tail):
        p = ("tail", i)
        d.add_arc(prev, p)
        terminals.append(p)
        prev = p
    return f"dforced(d={num_diamonds},t={tail})", d, terminals, ("j", 0)


@pytest.mark.parametrize("inst", directed_size_sweep(), ids=lambda i: i.name)
def test_improved_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_directed_steiner_trees(
                inst.digraph, inst.terminals, inst.root
            ),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize("inst", directed_size_sweep()[:3], ids=lambda i: i.name)
def test_simple_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_directed_steiner_trees_simple(
                inst.digraph, inst.terminals, inst.root
            ),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize("inst", directed_size_sweep()[:3], ids=lambda i: i.name)
def test_linear_delay_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_directed_steiner_trees_linear_delay(
                inst.digraph, inst.terminals, inst.root
            ),
            LIMIT,
        )
    )
    assert count > 0


def test_size_scaling_table(benchmark):
    """Amortized ops/solution scale linearly with n+m."""
    rows, sizes, costs = [], [], []
    for inst in directed_size_sweep():
        m = measure_enumeration(
            inst.name,
            inst.size,
            lambda meter, i=inst: enumerate_minimal_directed_steiner_trees(
                i.digraph, i.terminals, i.root, meter=meter
            ),
            limit=LIMIT,
        )
        sizes.append(m.size)
        costs.append(m.amortized_ops)
        rows.append(
            (m.label, m.size, m.solutions, int(m.amortized_ops), m.normalized_amortized)
        )
    exponent, r2 = fit_linearity(sizes, costs)
    print()
    print_table(
        "T1-dst: amortized ops/solution vs n+m (this work)",
        ("instance", "n+m", "solutions", "ops/solution", "normalized"),
        rows,
    )
    print(f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); paper predicts 1.0")
    assert 0.6 <= exponent <= 1.5
    benchmark(lambda: None)


def test_terminal_factor_table(benchmark):
    """The prior work's delay factor t, exposed by the forced tail."""
    rows, ours_norm, base_norm = [], [], []
    for tail in (2, 4, 8, 16, 32):
        name, d, terminals, root = forced_tail_directed(6, tail)
        size = d.size
        m_ours = measure_enumeration(
            name,
            size,
            lambda meter, dd=d, tt=terminals, rr=root: (
                enumerate_minimal_directed_steiner_trees(dd, tt, rr, meter=meter)
            ),
        )
        m_base = measure_enumeration(
            name,
            size,
            lambda meter, dd=d, tt=terminals, rr=root: (
                enumerate_minimal_directed_steiner_trees_simple(dd, tt, rr, meter=meter)
            ),
        )
        ours_norm.append(m_ours.normalized_max_delay)
        base_norm.append(m_base.normalized_max_delay)
        rows.append(
            (
                tail,
                m_ours.solutions,
                m_ours.max_delay_ops,
                m_base.max_delay_ops,
                m_ours.normalized_max_delay,
                m_base.normalized_max_delay,
            )
        )
    print()
    print_table(
        "T1-dst: max delay vs t on directed forced tails (ours vs unimproved)",
        ("t", "solutions", "ours (ops)", "baseline (ops)", "ours/(n+m)", "baseline/(n+m)"),
        rows,
    )
    assert max(ours_norm) / min(ours_norm) < 3
    assert base_norm[-1] / base_norm[0] > 2.5
    benchmark(lambda: None)

"""Resumable streaming cursors over enumeration jobs.

A :class:`EnumerationCursor` turns a job into a pull-based stream: take
the first ``k`` solutions, :meth:`checkpoint` (a small JSON-able dict:
job spec + delivered offset + a digest of the delivered prefix), persist
it anywhere, and :meth:`resume` later to receive *exactly* the remaining
tail — the concatenation of the two passes equals one uninterrupted run.

Resumption cost: the cursor records every delivered prefix in the
instance cache (when one is attached), so resuming replays cached
solutions with **no re-enumeration** up to the checkpoint and beyond it
only enumerates what was never produced.  Without a cache the resumed
cursor fast-forwards by re-running the (deterministic) enumerator and
discarding ``offset`` solutions without rendering them — correct, and
cheap relative to delivering them, but not free; attach a cache to make
resume O(delivered) instead.

The prefix digest lets :meth:`resume` fail loudly when a checkpoint is
replayed against a modified job spec.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.cache import InstanceCache
from repro.engine.jobs import (
    BudgetExceeded,
    EnumerationJob,
    JobResult,
    _BudgetMeter,
    iter_structures,
    structure_line,
)
from repro.exceptions import InvalidInstanceError

import time


class EnumerationCursor:
    """A chunked, checkpointable view of one job's solution stream.

    Parameters
    ----------
    job:
        The job to stream.  Its ``limit`` bounds the *total* stream
        length.  Each live enumeration segment gets a fresh allowance:
        the ``deadline`` bounds the segment's wall clock (fast-forward
        included), while the op ``budget`` arms only once delivery
        begins, so budget-stopped cursors always progress across
        resumes.  Attach a cache to make the fast-forward free (then
        deadline-stopped cursors progress too).
    cache:
        Optional :class:`InstanceCache`.  Delivered prefixes are stored
        into it on :meth:`checkpoint`/exhaustion so later resumes (and
        unrelated identical jobs) skip recomputation.
    offset:
        Internal — number of solutions already delivered (set by
        :meth:`resume`).

    Examples
    --------
    >>> job = EnumerationJob.steiner_tree(
    ...     [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"])
    >>> cur = EnumerationCursor(job)
    >>> cur.take(1)
    ['a-c c-d']
    >>> state = cur.checkpoint()
    >>> EnumerationCursor.resume(state).take(5)
    ['a-b b-c c-d']
    """

    def __init__(
        self,
        job: EnumerationJob,
        cache: Optional[InstanceCache] = None,
        offset: int = 0,
        _expected_digest: Optional[str] = None,
    ) -> None:
        job.validate()
        self.job = job
        self.cache = cache
        self.offset = offset  # solutions delivered so far (across resumes)
        self.exhausted = False
        self.stop_reason: Optional[str] = None
        self._delivered: List[str] = []  # lines delivered by THIS cursor object
        # Everything known about positions [0, offset): replayed cache
        # prefix + fast-forwarded lines + delivered lines, with parallel
        # label-level structures (None where unknown).  Complete coverage
        # lets checkpoint() upgrade the cache and digest the full prefix.
        self._known_lines: List[str] = []
        self._known_structures: List[Any] = []
        self._initial_offset = offset
        self._expected_digest = _expected_digest
        self._iterator: Optional[Iterator[Tuple[str, Any]]] = None
        self._meter: Optional[_BudgetMeter] = None

    # ------------------------------------------------------------------
    def take(self, k: int) -> List[str]:
        """Deliver up to ``k`` further solution lines (fewer at the end)."""
        if k < 0:
            raise ValueError("take() needs k >= 0")
        out: List[str] = []
        if self.exhausted:
            return out
        iterator = self._ensure_iterator()
        while len(out) < k:
            if self._remaining_limit() == 0:
                self.exhausted = True
                self.stop_reason = "limit"
                break
            try:
                line, structure = next(iterator)
            except StopIteration:
                self.exhausted = True
                self._record_final()
                break
            except BudgetExceeded as exc:
                self.exhausted = True
                self.stop_reason = exc.reason
                break
            out.append(line)
            self._delivered.append(line)
            self._known_lines.append(line)
            self._known_structures.append(structure)
            self.offset += 1
        return out

    def drain(self, chunk: int = 256) -> List[str]:
        """Deliver everything that remains, reading ``chunk`` at a time."""
        out: List[str] = []
        while not self.exhausted:
            got = self.take(chunk)
            out.extend(got)
            if not got and not self.exhausted:  # pragma: no cover - safety
                break
        return out

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """A JSON-serializable resume token for the current position.

        Also stores the delivered prefix into the attached cache so the
        matching :meth:`resume` costs no re-enumeration.
        """
        self._store_prefix()
        return {
            "version": 1,
            "job": self.job.to_dict(),
            "offset": self.offset,
            "digest": self._prefix_digest(),
        }

    def save(self, path: str) -> None:
        """Write :meth:`checkpoint` to ``path`` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.checkpoint(), handle, sort_keys=True)
            handle.write("\n")

    @classmethod
    def resume(
        cls, state: Dict[str, Any], cache: Optional[InstanceCache] = None
    ) -> "EnumerationCursor":
        """Rebuild a cursor from a :meth:`checkpoint` dict.

        The resumed cursor continues at ``state['offset']``: its next
        :meth:`take` returns exactly what the original cursor would have
        returned next.
        """
        if state.get("version") != 1:
            raise InvalidInstanceError(f"unknown cursor version {state.get('version')!r}")
        job = EnumerationJob.from_dict(state["job"])
        return cls(
            job,
            cache=cache,
            offset=int(state["offset"]),
            _expected_digest=state.get("digest"),
        )

    @classmethod
    def load(cls, path: str, cache: Optional[InstanceCache] = None) -> "EnumerationCursor":
        """Read a JSON checkpoint written by :meth:`save` and resume it."""
        with open(path) as handle:
            return cls.resume(json.load(handle), cache=cache)

    # ------------------------------------------------------------------
    def _remaining_limit(self) -> Optional[int]:
        if self.job.limit is None:
            return None
        return max(0, self.job.limit - self.offset)

    def _ensure_iterator(self) -> Iterator[Tuple[str, Any]]:
        if self._iterator is None:
            self._iterator = self._open_stream()
        return self._iterator

    def _open_stream(self) -> Iterator[Tuple[str, Any]]:
        """Line iterator starting at ``self.offset``.

        Prefers the cache (cached solutions replay with zero enumeration,
        and if the cached entry is exhausted the whole tail is served
        from it); falls back to live enumeration with a fast-forward.
        """
        start = self.offset
        cached_lines: Tuple[str, ...] = ()
        cached_structures: Optional[Tuple[Any, ...]] = None
        cache_complete = False
        if self.cache is not None:
            stored = self.cache.prefix(self.job)
            if stored is not None:
                cached_lines = stored.lines
                cached_structures = stored.structures
                cache_complete = stored.exhausted

        expected = self._expected_digest
        prefix_hasher = hashlib.sha256() if expected is not None else None

        def check_prefix() -> None:
            if prefix_hasher is not None and prefix_hasher.hexdigest() != expected:
                raise InvalidInstanceError(
                    "cursor checkpoint does not match this job's solution stream"
                )

        def hash_prefix_line(line: str) -> None:
            if prefix_hasher is not None:
                prefix_hasher.update(line.encode())
                prefix_hasher.update(b"\n")

        def remember(line: str, structure: Any) -> None:
            self._known_lines.append(line)
            self._known_structures.append(structure)

        def stream() -> Iterator[Tuple[str, Any]]:
            covered = min(start, len(cached_lines))
            for i in range(covered):
                hash_prefix_line(cached_lines[i])
                remember(
                    cached_lines[i],
                    cached_structures[i] if cached_structures is not None else None,
                )
            if covered == start:
                check_prefix()
            position = start
            for i in range(start, len(cached_lines)):
                structure = (
                    cached_structures[i] if cached_structures is not None else None
                )
                yield cached_lines[i], structure
                position += 1
            if cache_complete:
                if covered < start:
                    raise InvalidInstanceError(
                        "cursor checkpoint offset exceeds the job's solution stream"
                    )
                return
            # The deadline covers the whole live segment (it is a wall-
            # clock latency bound, fast-forward included), but the op
            # budget arms only when *delivery* begins: otherwise a
            # budget-stopped cursor would re-spend its whole fresh
            # allowance re-skipping the prefix and never make progress
            # across resumes.  With a cache attached the fast-forward is
            # free, so deadline-stopped cursors also progress.
            meter = _BudgetMeter(
                deadline_at=(
                    (time.monotonic() + self.job.deadline)
                    if self.job.deadline is not None
                    else None
                ),
            )
            self._meter = meter
            armed = position == 0
            if armed:
                meter.budget = self.job.budget
            seen = 0
            for structure in iter_structures(self.job, meter):
                seen += 1
                if seen <= position:
                    if covered < seen <= start:
                        line = structure_line(self.job, structure)
                        hash_prefix_line(line)
                        remember(line, structure)
                        if seen == start:
                            check_prefix()
                    continue
                if not armed:
                    armed = True
                    if self.job.budget is not None:
                        meter.budget = meter.count + self.job.budget
                yield structure_line(self.job, structure), structure
            if seen < start:
                # The enumeration ended before reaching the checkpoint
                # offset: the checkpoint belongs to a different job spec.
                raise InvalidInstanceError(
                    "cursor checkpoint offset exceeds the job's solution stream"
                )

        return stream()

    def _prefix_digest(self) -> Optional[str]:
        if self.offset and self.offset == len(self._known_lines):
            digest = hashlib.sha256()
            for line in self._known_lines:
                digest.update(line.encode())
                digest.update(b"\n")
            return digest.hexdigest()
        if self.offset == self._initial_offset:
            # A resumed cursor that has not advanced re-issues the digest
            # it was resumed with, so tamper detection survives
            # checkpoint-of-a-checkpoint chains.
            return self._expected_digest
        return None  # prefix not fully known (resumed without cache/digest)

    def _store_prefix(self) -> None:
        if self.cache is None or not self._known_lines:
            return
        if self.offset != len(self._known_lines):
            return  # holes in the prefix: nothing sound to store
        structures: Optional[Tuple[Any, ...]] = tuple(self._known_structures)
        if any(s is None for s in structures):
            structures = None
        complete = self.exhausted and self.stop_reason is None
        # The delivered lines are the stream's first `offset` solutions —
        # a sound prefix to cache no matter *why* the cursor stopped
        # (store() would reject a raw deadline/budget stop_reason, but a
        # prefix at a known offset is deterministic content).
        result = JobResult(
            job_id=self.job.job_id,
            kind=self.job.kind,
            lines=tuple(self._known_lines),
            exhausted=complete,
            stop_reason=None if complete else "limit",
            elapsed=0.0,
            ops=self._meter.count if self._meter else 0,
            structures=structures,
        )
        self.cache.store(self.job, result)

    def _record_final(self) -> None:
        self._store_prefix()

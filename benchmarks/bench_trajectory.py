"""Benchmark trajectory: pinned quick subset → JSON snapshot → gate.

CI runs this on every push (the ``bench-trajectory`` job): it measures a
pinned subset of enumeration jobs on **every claimed backend** (object,
fast, and — where the capability registry claims it and numpy is
installed — vector, including the dense aggregate vector gate), writes
``BENCH_<short-sha>.json`` (uploaded as an artifact, so the repository
accumulates a throughput history), and fails if throughput regressed
more than the tolerance against the committed
``benchmarks/BENCH_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_trajectory.py \
        [--out BENCH_abc1234.json] [--baseline benchmarks/BENCH_baseline.json]

Environment knobs:

``BENCH_TRAJECTORY_TOLERANCE``
    Allowed fractional regression (default ``0.2`` = 20%).
``BENCH_TRAJECTORY_SKIP_ABSOLUTE``
    Set to ``1`` to gate only the object/fast speedup ratios (useful on
    hardware unrelated to the baseline's; ratios are machine-stable,
    absolute sols/s are not).

The pinned subset covers every enumerator kind the engine serves, one
mid-size instance each, with solution limits chosen so a full run stays
in the tens of seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Tuple

from repro.bench.workloads import (
    directed_size_sweep,
    forest_size_sweep,
    steiner_tree_size_sweep,
    terminal_steiner_size_sweep,
)
from repro.engine.jobs import EnumerationJob, run_job

#: Measurement repetitions per (kind, backend); best run is kept.
REPS = 3

#: Extra repetitions for kinds whose wall is short enough to be
#: jitter-dominated at 3 reps (best-of converges with more samples); the
#: dense vector-gate entries run seconds-long walls, where best-of-2 is
#: already timing-stable and a third rep only stretches the run.
REPS_OVERRIDE = {"minimum-enum": 7, "steiner-tree-dense": 2, "st-path-dense": 2}

#: Hard speedup floors (fast over object), independent of the baseline:
#: the kinds ported in the matrix-closing PR must hold ≥1.5x.
SPEEDUP_FLOORS: Dict[str, float] = {
    "induced-steiner": 1.5,
    "group-steiner": 1.5,
    "minimum-enum": 1.5,
    "fk-dualization": 1.5,
    "directed-steiner": 1.5,
}

#: Kinds measured on the vector backend as well (the VECTOR_KINDS among
#: the pinned jobs; numpy-gated at run time).
VECTOR_MEASURED = frozenset({"steiner-tree", "terminal-steiner", "st-path"})

#: Hard aggregate floor for the vector backend on the pinned *dense*
#: instance: summed object wall over summed vector wall across the
#: steiner-tree + st-path dense entries must stay ≥5x.  Density is the
#: lever — the bitset kernel consumes a whole adjacency row per
#: Python-int OR, so its edge over the scalar backends grows with m/n;
#: on the sparse size-sweep instances the intrinsic ratio is only ~2x.
VECTOR_AGGREGATE_FLOOR = 5.0

#: The dense entries the aggregate is computed over.
VECTOR_DENSE_KINDS = ("steiner-tree-dense", "st-path-dense")


def _line_graph_edges(base) -> List[Tuple[int, int]]:
    """Edge list of the line graph on ``base``'s edge ids (claw-free)."""
    pairs = set()
    for v in base.vertices():
        inc = sorted(e.eid for e in base.incident(v))
        for i in range(len(inc)):
            for j in range(i + 1, len(inc)):
                pairs.add((inc[i], inc[j]))
    return sorted(pairs)


def pinned_jobs() -> List[Tuple[str, EnumerationJob]]:
    """One pinned job per enumerator kind (deterministic instances)."""
    from repro.datagraph.model import synthetic_data_graph

    st = steiner_tree_size_sweep()[2]
    sf = forest_size_sweep()[2]
    ts = terminal_steiner_size_sweep()[2]
    ds = directed_size_sweep()[2]
    dg = synthetic_data_graph(240, 120, 80, 2, seed=13)
    vocab = sorted(
        dg.vocabulary(), key=lambda kw: (len(dg.nodes_with_keyword(kw)), kw)
    )
    return [
        ("steiner-tree", EnumerationJob.steiner_tree(st.graph, st.terminals, limit=300)),
        ("steiner-forest", EnumerationJob.steiner_forest(sf.graph, sf.families, limit=200)),
        (
            "terminal-steiner",
            EnumerationJob.terminal_steiner(ts.graph, ts.terminals, limit=200),
        ),
        (
            "directed-steiner",
            EnumerationJob.directed_steiner(ds.digraph, ds.terminals, ds.root, limit=200),
        ),
        (
            "st-path",
            EnumerationJob.st_path(st.graph, st.terminals[0], st.terminals[1], limit=400),
        ),
        (
            "chordless-path",
            EnumerationJob.chordless_path(
                st.graph, st.terminals[0], st.terminals[1], limit=200
            ),
        ),
        ("kfragments", EnumerationJob.kfragments(dg, vocab[:4], limit=300)),
        ("induced-steiner", _induced_steiner_job()),
    ]


def _induced_steiner_job() -> EnumerationJob:
    """A claw-free (line graph) instance for the induced-Steiner kind."""
    from repro.graphs.generators import random_connected_graph

    base = random_connected_graph(18, 14, 11)
    edges = _line_graph_edges(base)
    eids = sorted(base.edge_ids())
    terminals = [eids[0], eids[len(eids) // 2], eids[-1]]
    return EnumerationJob.induced_steiner(edges, terminals, limit=200)


def pinned_direct() -> List[Tuple[str, "object"]]:
    """Pinned measurements for layers without an EnumerationJob kind.

    Each entry is ``(kind, runner)`` with ``runner(backend) -> (lines,
    count)``; lines must be byte-identical across backends.
    """
    import random
    from itertools import islice

    from repro.core.ranked import enumerate_approximately_by_weight

    inst = steiner_tree_size_sweep()[2]
    job = EnumerationJob.steiner_tree(inst.graph, inst.terminals)
    graph, _labels, index_of = job.instantiate_indexed()
    terminals = [index_of[t] for t in job.terminals]
    rng = random.Random(7)
    weights = {e: rng.choice([1.0, 2.0, 3.0]) for e in graph.edge_ids()}

    def ranked_runner(backend: str):
        lines = tuple(
            f"{w:g} " + ",".join(map(str, sorted(sol)))
            for w, sol in islice(
                enumerate_approximately_by_weight(
                    graph, terminals, weights, lookahead=64, backend=backend
                ),
                300,
            )
        )
        return lines, len(lines)

    # serve-replay: the warm-store replay path of repro.serve.  The
    # "object" column is a cold enumeration (plus the store write-back),
    # the "fast" column a warm ResultStore replay of the same job — so
    # the reported "speedup" is the replay advantage the serving layer
    # gates on (benchmarks/bench_serve.py measures it over the full
    # network path; this entry keeps it on the per-commit trajectory).
    import tempfile

    from repro.serve.store import ResultStore

    # A big limit keeps the warm replay wall in the tens of
    # milliseconds, where the cold/warm ratio is timing-stable enough
    # to gate (a ~5ms replay would make the ratio pure jitter).
    serve_inst = steiner_tree_size_sweep()[3]
    serve_job = EnumerationJob.steiner_tree(
        serve_inst.graph, serve_inst.terminals, limit=2000
    )
    serve_store = ResultStore(tempfile.mkdtemp(prefix="bench-traj-serve-"))

    def serve_replay_runner(backend: str):
        if backend == "object":  # cold: enumerate + persist
            result = run_job(serve_job)
            serve_store.store(serve_job, result)
            return result.lines, result.count
        replay = serve_store.lookup(serve_job)  # warm: replay from disk
        if replay is None:
            raise AssertionError("serve-replay: warm lookup missed")
        return replay.lines, replay.count

    # resume: snapshot thaw vs replay fast-forward at a deep cursor
    # position (benchmarks/bench_resume.py gates the full 10k-depth
    # criterion; this entry keeps the ratio on the per-commit
    # trajectory).  The "object" column resumes by replay, the "fast"
    # column by thawing the checkpoint's search-state snapshot — the
    # reported "speedup" is the O(state)-resume advantage.
    from repro.engine.cursor import EnumerationCursor

    resume_depth = 3000
    resume_job = _resume_job(resume_depth)
    resume_cursor = EnumerationCursor(resume_job)
    if len(resume_cursor.take(resume_depth)) < resume_depth:
        raise AssertionError("resume: instance too shallow for the pinned depth")
    resume_state = resume_cursor.checkpoint()
    if "snapshot" not in resume_state:
        raise AssertionError("resume: checkpoint did not embed a snapshot")

    def resume_runner(backend: str):
        mode = "replay" if backend == "object" else "snapshot"
        resumed = EnumerationCursor.resume(resume_state, resume_mode=mode)
        lines = tuple(resumed.take(64))
        return lines, len(lines)

    # group-steiner: brute-force enumeration, object verifier vs the
    # kernel's bitmask judge (same candidate order, swapped accept test)
    from repro.core.group_steiner import enumerate_minimal_group_steiner_trees_brute
    from repro.graphs.generators import random_connected_graph, random_terminals

    gs_graph = random_connected_graph(11, 7, 9)
    gs_families = [random_terminals(gs_graph, 3, 9 + i) for i in range(3)]

    def group_steiner_runner(backend: str):
        lines = tuple(
            f"v:{sol.vertex}"
            if sol.vertex is not None
            else ",".join(map(str, sorted(sol.edges)))
            for sol in enumerate_minimal_group_steiner_trees_brute(
                gs_graph, gs_families, max_edges=5, backend=backend
            )
        )
        return lines, len(lines)

    # minimum-enum: the Dreyfus–Wagner table + tight-move walk; a dense
    # instance keeps the relaxation loop (where the kernel's flat arrays
    # pay off) the dominant cost
    from repro.core.minimum_enum import enumerate_minimum_steiner_trees_dp

    me_graph = random_connected_graph(80, 600, 3)
    me_terms = random_terminals(me_graph, 7, 4)
    me_rng = random.Random(3)
    me_weights = {e: float(me_rng.choice([1, 1, 2, 3])) for e in me_graph.edge_ids()}

    def minimum_enum_runner(backend: str):
        lines = tuple(
            ",".join(map(str, sorted(sol)))
            for sol in enumerate_minimum_steiner_trees_dp(
                me_graph, me_terms, me_weights, backend=backend
            )
        )
        return lines, len(lines)

    # fk-dualization: incremental FK transversal enumeration, frozenset
    # recursion vs the single-int bitmask mirror
    from repro.hypergraph.dualization import enumerate_minimal_transversals_fk
    from repro.hypergraph.hypergraph import Hypergraph

    fk_rng = random.Random(17)
    fk_universe = list(range(16))
    fk_edges = [
        frozenset(fk_rng.sample(fk_universe, fk_rng.choice([2, 3, 3, 4, 4])))
        for _ in range(16)
    ]
    fk_hypergraph = Hypergraph(fk_universe, fk_edges)

    def fk_runner(backend: str):
        lines = tuple(
            ",".join(map(str, sorted(sol, key=repr)))
            for sol in enumerate_minimal_transversals_fk(
                fk_hypergraph, backend=backend
            )
        )
        return lines, len(lines)

    return [
        ("ranked-approx", ranked_runner),
        ("serve-replay", serve_replay_runner),
        ("resume", resume_runner),
        ("group-steiner", group_steiner_runner),
        ("minimum-enum", minimum_enum_runner),
        ("fk-dualization", fk_runner),
    ]


def dense_vector_jobs() -> List[Tuple[str, EnumerationJob]]:
    """The pinned dense jobs behind the aggregate vector gate."""
    from repro.bench.workloads import dense_vector_instance

    inst = dense_vector_instance()
    w = inst.terminals
    return [
        (
            "steiner-tree-dense",
            EnumerationJob.steiner_tree(inst.graph, inst.terminals, limit=480),
        ),
        ("st-path-dense", EnumerationJob.st_path(inst.graph, w[0], w[1], limit=480)),
    ]


def _resume_job(depth: int) -> EnumerationJob:
    """A ladder-graph st-path job ≥ ``depth`` solutions deep (see
    benchmarks/bench_resume.py)."""
    rungs = 2
    while 2**rungs <= depth * 2:
        rungs += 1
    edges = []
    for i in range(rungs):
        edges.extend([(2 * i, 2 * i + 2), (2 * i + 1, 2 * i + 3), (2 * i, 2 * i + 1)])
    edges.append((2 * rungs, 2 * rungs + 1))
    return EnumerationJob.st_path(
        edges, 0, 2 * rungs + 1, job_id="traj-resume", backend="fast"
    )


def _with_backend(job: EnumerationJob, backend: str) -> EnumerationJob:
    from dataclasses import replace

    return replace(job, backend=backend)


def measure() -> Dict[str, dict]:
    """Run the pinned subset on every claimed backend; per-kind metrics."""
    from repro.graphs.vecgraph import vec_available

    vector_on = vec_available()
    runners: List[Tuple[str, "object", Tuple[str, ...]]] = []
    for kind, job in pinned_jobs():

        def job_runner(backend: str, job=job):
            result = run_job(_with_backend(job, backend))
            return result.lines, result.count

        backends = ("object", "fast")
        if vector_on and kind in VECTOR_MEASURED:
            backends = ("object", "fast", "vector")
        runners.append((kind, job_runner, backends))
    runners.extend((kind, runner, ("object", "fast")) for kind, runner in pinned_direct())
    if vector_on:
        # the dense aggregate gate: vector vs object only — the sparse
        # pinned jobs above already keep fast honest on these kinds
        for kind, job in dense_vector_jobs():

            def dense_runner(backend: str, job=job):
                result = run_job(_with_backend(job, backend))
                return result.lines, result.count

            runners.append((kind, dense_runner, ("object", "vector")))
    else:
        print(
            "numpy unavailable: vector columns and the dense aggregate"
            " gate are skipped",
            file=sys.stderr,
        )

    kinds: Dict[str, dict] = {}
    for kind, runner, backends in runners:
        entry: Dict[str, dict] = {}
        lines = {}
        best = {backend: float("inf") for backend in backends}
        solutions = {backend: 0 for backend in backends}
        # interleave the backends so a load spike lands on both sides of
        # the ratio instead of inflating one backend's every rep
        for _ in range(REPS_OVERRIDE.get(kind, REPS)):
            for backend in backends:
                start = time.perf_counter()
                out, count = runner(backend)
                wall = time.perf_counter() - start
                best[backend] = min(best[backend], wall)
                solutions[backend] = count
                lines[backend] = out
        for backend in backends:
            wall = best[backend]
            entry[backend] = {
                "wall_s": round(wall, 6),
                "solutions": solutions[backend],
                "sols_per_s": round(solutions[backend] / wall, 2) if wall else 0.0,
                "jobs_per_s": round(1.0 / wall, 3) if wall else 0.0,
            }
        for backend in backends[1:]:
            if lines[backend] != lines["object"]:
                raise AssertionError(
                    f"{kind}: {backend} backend output diverged from object backend"
                )
        obj_wall = entry["object"]["wall_s"]
        report = f"{kind:18s} object {obj_wall*1000:7.1f}ms"
        if "fast" in entry:
            fast_wall = entry["fast"]["wall_s"]
            entry["speedup"] = round(obj_wall / fast_wall, 3) if fast_wall else 0.0
            report += f"  fast {fast_wall*1000:7.1f}ms  speedup {entry['speedup']:.2f}x"
        if "vector" in entry:
            vec_wall = entry["vector"]["wall_s"]
            entry["speedup_vector"] = (
                round(obj_wall / vec_wall, 3) if vec_wall else 0.0
            )
            report += (
                f"  vector {vec_wall*1000:7.1f}ms"
                f"  v-speedup {entry['speedup_vector']:.2f}x"
            )
        kinds[kind] = entry
        print(report)
    agg = vector_aggregate(kinds)
    if agg is not None:
        print(f"vector dense aggregate: {agg:.2f}x over object")
    return kinds


def vector_aggregate(kinds: Dict[str, dict]) -> "float | None":
    """Summed object wall over summed vector wall across the dense
    entries, or ``None`` when they were not measured (no numpy)."""
    entries = [kinds.get(kind) for kind in VECTOR_DENSE_KINDS]
    if any(e is None or "vector" not in e for e in entries):
        return None
    obj = sum(e["object"]["wall_s"] for e in entries)
    vec = sum(e["vector"]["wall_s"] for e in entries)
    return (obj / vec) if vec else 0.0


def git_short_sha() -> str:
    """Current short commit sha (``unknown`` outside a work tree)."""
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha[:7]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def gate(
    current: Dict[str, dict],
    baseline: Dict[str, dict],
    tolerance: float,
    skip_absolute: bool,
) -> List[str]:
    """Compare against the baseline; return regression messages."""
    from repro.graphs.vecgraph import vec_available

    vector_on = vec_available()
    failures: List[str] = []
    for kind, floor_speedup in SPEEDUP_FLOORS.items():
        cur = current.get(kind)
        if cur is None:
            failures.append(f"{kind}: missing from the current run")
        elif cur["speedup"] < floor_speedup:
            failures.append(
                f"{kind}: speedup {cur['speedup']:.2f}x below the"
                f" {floor_speedup:.1f}x floor"
            )
    agg = vector_aggregate(current)
    if agg is None:
        if vector_on:
            failures.append("vector-gate: dense vector entries missing")
    elif agg < VECTOR_AGGREGATE_FLOOR:
        failures.append(
            f"vector-gate: dense aggregate {agg:.2f}x below the"
            f" {VECTOR_AGGREGATE_FLOOR:.1f}x floor"
        )
    for kind, base in baseline.items():
        cur = current.get(kind)
        if cur is None:
            # vector-only entries legitimately vanish on no-numpy hosts
            if not (kind in VECTOR_DENSE_KINDS and not vector_on):
                failures.append(f"{kind}: missing from the current run")
            continue
        floor = 1.0 - tolerance
        base_speedup = base.get("speedup", 0.0)
        if base_speedup and cur.get("speedup", 0.0) < floor * base_speedup:
            failures.append(
                f"{kind}: speedup {cur.get('speedup', 0.0):.2f}x regressed >"
                f"{tolerance:.0%} vs baseline {base_speedup:.2f}x"
            )
        base_vec = base.get("speedup_vector", 0.0)
        cur_vec = cur.get("speedup_vector", 0.0)
        if base_vec and vector_on and cur_vec < floor * base_vec:
            failures.append(
                f"{kind}: vector speedup {cur_vec:.2f}x regressed >"
                f"{tolerance:.0%} vs baseline {base_vec:.2f}x"
            )
        if skip_absolute:
            continue
        for backend in ("object", "fast", "vector"):
            if backend == "vector" and not vector_on:
                continue
            base_rate = base.get(backend, {}).get("sols_per_s", 0.0)
            cur_rate = cur.get(backend, {}).get("sols_per_s", 0.0)
            if base_rate and cur_rate < floor * base_rate:
                failures.append(
                    f"{kind}/{backend}: {cur_rate:.0f} sols/s regressed >"
                    f"{tolerance:.0%} vs baseline {base_rate:.0f}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_<short-sha>.json)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "BENCH_baseline.json"),
        help="committed baseline to gate against ('' disables the gate)",
    )
    args = parser.parse_args(argv)

    tolerance = float(os.environ.get("BENCH_TRAJECTORY_TOLERANCE", "0.2"))
    skip_absolute = os.environ.get("BENCH_TRAJECTORY_SKIP_ABSOLUTE", "") == "1"

    kinds = measure()
    sha = git_short_sha()
    payload = {
        "schema": 1,
        "sha": sha,
        "python": sys.version.split()[0],
        "reps": REPS,
        "kinds": kinds,
    }
    out_path = args.out or f"BENCH_{sha}.json"
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = gate(kinds, baseline.get("kinds", {}), tolerance, skip_absolute)
        if failures:
            print("THROUGHPUT REGRESSION:", file=sys.stderr)
            for message in failures:
                print(f"  - {message}", file=sys.stderr)
            return 1
        print(
            f"gate passed vs {args.baseline} "
            f"(tolerance {tolerance:.0%}, absolute={'off' if skip_absolute else 'on'})"
        )
    elif args.baseline:
        print(f"no baseline at {args.baseline}; gate skipped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Instance cache: canonical hashing + LRU result store with disk spill.

Two jobs that describe the *same* instance should pay for enumeration
once.  "Same" is stronger than textual equality: a relabeled copy of a
solved graph (vertex names permuted, edge list reordered) is the same
instance, and serving it from cache only needs the relabeling map.

:func:`canonical_signature` computes a complete isomorphism invariant
for a job's instance-plus-query: colour-refinement (1-WL) seeded with
the vertices' query roles (terminal / family membership / root / source
/ target / keyword bag), followed by an individualization search that
returns the lexicographically least certificate over all refinement-
consistent vertex orders.  Because the certificate *contains* the full
adjacency under the chosen order, equal certificates imply genuinely
isomorphic instances — the key is sound, never merely probabilistic.
The search is exponential on highly symmetric inputs, so it carries a
work budget; when exceeded, :class:`InstanceCache` falls back to an
exact label-sensitive key (still correct, just not relabel-stable for
that instance).  The budget depends only on the instance's symmetry
structure, never on its labels, so relabeled copies agree on which tier
they use.

Cached solutions are stored as canonical-index structures and translated
back through the requesting job's own canonical order on a hit, so a hit
for a relabeled instance is rendered in the *caller's* vertex names.
A hit replays the donor's enumeration order; for a relabeled instance
that may be a permutation of the order a fresh run would use, but the
solution set is identical.  Order-sensitive serves are therefore gated
on an exact-instance fingerprint: relabeled hits serve only *complete*
solution sets (a ``limit`` that would truncate one misses instead — a
limit at or above the complete count serves it whole), and
cursor prefixes are served only to the identical instance (splicing a
donor-ordered prefix onto a different job's live stream would duplicate
and drop solutions).

Entries evicted from the LRU can spill to a directory as pickles and
are transparently reloaded on the next miss.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.capabilities import spec as kind_spec
from repro.engine.jobs import (
    EnumerationJob,
    JobResult,
    structure_line,
)

#: Abort the individualization search after this many refinement passes.
#: Structure-determined (independent of labels), so relabeled copies of
#: an instance always agree on canonical-vs-exact key tier.
_CANON_BUDGET = 4096


class _CanonBudgetExceeded(Exception):
    pass


def _job_vertices_and_roles(job: EnumerationJob):
    """All instance vertices plus a hashable query-role token per vertex."""
    vertices: List[Any] = []
    seen = set()

    def add(v):
        if v not in seen:
            seen.add(v)
            vertices.append(v)

    for u, v in job.edges:
        add(u)
        add(v)
    for v in job.vertices:
        add(v)
    roles: Dict[Any, tuple] = {v: () for v in vertices}
    for t in job.terminals:
        add(t)
        roles.setdefault(t, ())
        roles[t] = roles[t] + ("T",)
    for i, family in enumerate(job.families):
        for t in family:
            add(t)
            roles.setdefault(t, ())
            roles[t] = roles[t] + (("F", i),)
    for name in ("root", "source", "target"):
        v = getattr(job, name)
        if v is not None:
            add(v)
            roles.setdefault(v, ())
            roles[v] = roles[v] + (name,)
    return vertices, {v: tuple(sorted(map(repr, roles[v]))) for v in vertices}


def _refine(
    n: int,
    out_adj: Sequence[Sequence[int]],
    in_adj: Optional[Sequence[Sequence[int]]],
    colors: List[int],
) -> List[int]:
    """Colour refinement (1-WL) to a fixed point; returns dense colours."""
    while True:
        if in_adj is None:
            sigs = [
                (colors[v], tuple(sorted(colors[u] for u in out_adj[v])))
                for v in range(n)
            ]
        else:
            sigs = [
                (
                    colors[v],
                    tuple(sorted(colors[u] for u in out_adj[v])),
                    tuple(sorted(colors[u] for u in in_adj[v])),
                )
                for v in range(n)
            ]
        palette = {sig: i for i, sig in enumerate(sorted(set(sigs)))}
        new = [palette[sig] for sig in sigs]
        if new == colors:
            return colors
        colors = new


def canonical_signature(job: EnumerationJob) -> Optional[Tuple[List[Any], tuple]]:
    """Canonical vertex order and certificate for ``job``'s instance.

    Returns ``(order, certificate)`` where ``order[i]`` is the vertex in
    canonical position ``i``, or ``None`` when the kind is not
    relabelable or the symmetry search exceeds its budget.  Two jobs get
    equal certificates iff their role-annotated instances are isomorphic.
    """
    if not kind_spec(job.kind).relabelable:
        return None
    vertices, roles = _job_vertices_and_roles(job)
    n = len(vertices)
    index = {v: i for i, v in enumerate(vertices)}
    directed = job.is_directed
    out_adj: List[List[int]] = [[] for _ in range(n)]
    in_adj: Optional[List[List[int]]] = [[] for _ in range(n)] if directed else None
    edge_pairs: List[Tuple[int, int]] = []
    for u, v in job.edges:
        iu, iv = index[u], index[v]
        edge_pairs.append((iu, iv))
        out_adj[iu].append(iv)
        if directed:
            in_adj[iv].append(iu)  # type: ignore[index]
        else:
            out_adj[iv].append(iu)

    role_palette = {r: i for i, r in enumerate(sorted(set(roles.values())))}
    role_color = [role_palette[roles[v]] for v in vertices]
    budget = [_CANON_BUDGET]

    def refine(colors: List[int]) -> List[int]:
        budget[0] -= 1
        if budget[0] < 0:
            raise _CanonBudgetExceeded
        return _refine(n, out_adj, in_adj, colors)

    def certificate(order: List[int]) -> tuple:
        pos = [0] * n
        for p, v in enumerate(order):
            pos[v] = p
        role_seq = tuple(roles[vertices[v]] for v in order)
        if directed:
            enc = tuple(sorted((pos[a], pos[b]) for a, b in edge_pairs))
        else:
            enc = tuple(
                sorted(
                    (min(pos[a], pos[b]), max(pos[a], pos[b])) for a, b in edge_pairs
                )
            )
        return (role_seq, enc)

    best: List[Optional[Tuple[tuple, List[int]]]] = [None]

    def search(colors: List[int]) -> None:
        classes: Dict[int, List[int]] = {}
        for v in range(n):
            classes.setdefault(colors[v], []).append(v)
        non_singleton = sorted(
            (len(members), color)
            for color, members in classes.items()
            if len(members) > 1
        )
        if not non_singleton:
            order = sorted(range(n), key=lambda v: colors[v])
            cert = certificate(order)
            if best[0] is None or cert < best[0][0]:
                best[0] = (cert, order)
            return
        _, color = non_singleton[0]
        next_color = n  # strictly larger than any dense colour in use
        for v in classes[color]:
            branched = list(colors)
            branched[v] = next_color
            search(refine(branched))

    try:
        search(refine(role_color))
    except _CanonBudgetExceeded:
        return None
    assert best[0] is not None
    cert, order = best[0]
    return ([vertices[v] for v in order], cert)


def _digest(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def job_fingerprint(job: EnumerationJob) -> str:
    """Exact-instance identity (labels, edge order, query params).

    Two jobs with equal fingerprints produce identical enumeration
    streams, so order-sensitive serves (cursor prefixes, limit
    truncation) are gated on fingerprint equality; canonical-key hits
    with a different fingerprint are relabelings whose stream is a
    permutation of the requester's own.
    """
    return _digest(
        (
            "fp",
            job.kind,
            job.edges,
            job.vertices,
            job.terminals,
            job.families,
            job.root,
            job.source,
            job.target,
            job.keywords,
            job.node_keywords,
        )
    )


def instance_key(job: EnumerationJob) -> Tuple[str, Optional[List[Any]]]:
    """The cache key for ``job`` plus its canonical order (if available).

    Execution-envelope fields (``limit``, ``deadline``, ``budget``,
    ``shards``, ``job_id``) are deliberately excluded: they shape *how
    much* of the result is delivered, not what the result is.
    """
    signature = canonical_signature(job)
    if signature is not None:
        order, cert = signature
        return _digest(("canon", job.kind, tuple(job.keywords), cert)), order
    exact = (
        "exact",
        job.kind,
        job.edges,
        job.vertices,
        job.terminals,
        job.families,
        job.root,
        job.source,
        job.target,
        job.keywords,
        job.node_keywords,
    )
    return _digest(exact), None


def to_canonical(kind: str, structures, order: List[Any]) -> tuple:
    """Re-express label-level ``structures`` in canonical vertex indices."""
    pos = {v: i for i, v in enumerate(order)}
    if kind_spec(kind).result_shape in ("vertex-set", "path"):
        return tuple(tuple(pos[v] for v in s) for s in structures)
    return tuple(tuple((pos[u], pos[v]) for u, v in s) for s in structures)


def from_canonical(job: EnumerationJob, canonical, order: List[Any]) -> tuple:
    """Translate canonical-index structures into ``job``'s own labels."""
    if kind_spec(job.kind).result_shape == "vertex-set":
        # Vertex sets are rendered sorted by repr (matching
        # iter_structures); paths keep their traversal order.
        return tuple(
            tuple(sorted((order[i] for i in s), key=repr)) for s in canonical
        )
    if kind_spec(job.kind).result_shape == "path":
        return tuple(tuple(order[i] for i in s) for s in canonical)
    structures = []
    for s in canonical:
        if job.is_directed:
            pairs = [(order[i], order[j]) for i, j in s]
        else:
            pairs = [tuple(sorted((order[i], order[j]), key=repr)) for i, j in s]
        pairs.sort(key=lambda p: (repr(p[0]), repr(p[1])))
        structures.append(tuple(pairs))
    return tuple(structures)


@dataclass
class _Entry:
    """One cached enumeration: solutions plus completeness metadata."""

    payload: tuple  # canonical structures, or rendered lines when order is None
    canonical: bool
    exhausted: bool
    fingerprint: str  # exact-instance identity of the donor job
    # The donor's own rendered lines (canonical entries only): lets an
    # exact-fingerprint hit skip the canonical->label translation and
    # re-rendering entirely — the donor's stream IS the requester's.
    lines: Optional[tuple] = None


def line_result(job: EnumerationJob, lines: tuple, exhausted: bool) -> JobResult:
    """A replayed result served straight from stored rendered lines.

    Exactly :func:`entry_result` on a raw-line payload — the named
    wrapper marks the exact-fingerprint fast path (no canonical
    translation) at its call sites.
    """
    return entry_result(job, tuple(lines), False, exhausted, None)


def cacheable(result: JobResult) -> bool:
    """True when ``result`` is sound to record for future replay.

    Deadline- and budget-stopped runs are rejected: their cut point is
    timing-dependent, so replaying them would be nondeterministic.
    Errored runs carry no reusable content either.
    """
    return result.stop_reason not in ("deadline", "budget") and result.error is None


def entry_usable(
    job: EnumerationJob, same_fingerprint: bool, exhausted: bool, count: int
) -> bool:
    """Serve gating shared by :class:`InstanceCache` and the disk store.

    An exact-fingerprint entry is the job's own stream, so a stored
    prefix may satisfy a ``limit`` by truncation.  A relabeled entry is
    a permutation of the job's stream, so only the *complete* solution
    set may be served (truncating it would return a different subset
    than a fresh limited run would).
    """
    if same_fingerprint:
        return exhausted or (job.limit is not None and count >= job.limit)
    return exhausted and (job.limit is None or job.limit >= count)


def entry_result(
    job: EnumerationJob,
    payload: tuple,
    canonical: bool,
    exhausted: bool,
    order: Optional[List[Any]],
    apply_limit: bool = True,
) -> JobResult:
    """Materialize a stored entry as a :class:`JobResult` for ``job``.

    Canonical payloads are translated through ``order`` into the job's
    own labels; raw-line payloads are served verbatim.  With
    ``apply_limit`` the job's ``limit`` truncates the stream (the stored
    entry may know more solutions than the job asked for).
    """
    structures: Optional[tuple]
    if canonical:
        if order is None:
            raise RuntimeError("canonical cache entry hit through a non-canonical key")
        structures = from_canonical(job, payload, order)
        lines = tuple(structure_line(job, s) for s in structures)
    else:
        structures = None
        lines = payload
    stop_reason = None
    if apply_limit and job.limit is not None and len(lines) >= job.limit:
        lines = lines[: job.limit]
        structures = structures[: job.limit] if structures is not None else None
        exhausted = False
        stop_reason = "limit"
    elif not exhausted:
        stop_reason = "limit"
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        lines=lines,
        exhausted=exhausted,
        stop_reason=stop_reason,
        elapsed=0.0,
        ops=0,
        cached=True,
        structures=structures,
    )


@dataclass
class CacheStats:
    """Counters exposed for tests, benchmarks and the service stats op."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON serving."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
        }


class InstanceCache:
    """LRU cache of enumeration results keyed by canonical instance hash.

    Parameters
    ----------
    maxsize:
        In-memory entry cap; least-recently-used entries beyond it are
        evicted (to disk when ``spill_dir`` is set, otherwise dropped).
    spill_dir:
        Directory for evicted entries.  Created on demand; entries are
        pickled one file per key and reloaded transparently on a miss.

    Examples
    --------
    >>> from repro.engine.jobs import EnumerationJob, run_job
    >>> cache = InstanceCache(maxsize=8)
    >>> job = EnumerationJob.steiner_tree([("a", "b"), ("b", "c")], ["a", "c"])
    >>> cache.store(job, run_job(job))
    >>> relabeled = EnumerationJob.steiner_tree([("x", "y"), ("y", "z")], ["x", "z"])
    >>> cache.lookup(relabeled).lines
    ('x-y y-z',)
    """

    def __init__(self, maxsize: int = 256, spill_dir: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.spill_dir = spill_dir
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        # Memo for the (expensive) canonicalization, bounded alongside
        # the entry LRU so lookup()+store() pay for it once per job.
        self._key_memo: "OrderedDict[EnumerationJob, Tuple[str, Optional[List[Any]]]]" = (
            OrderedDict()
        )

    def _instance_key(self, job: EnumerationJob) -> Tuple[str, Optional[List[Any]]]:
        memo = self._key_memo
        hit = memo.get(job)
        if hit is not None:
            memo.move_to_end(job)
            return hit
        computed = instance_key(job)
        memo[job] = computed
        while len(memo) > 4 * self.maxsize:
            memo.popitem(last=False)
        return computed

    # ------------------------------------------------------------------
    def lookup(self, job: EnumerationJob) -> Optional[JobResult]:
        """Return a complete :class:`JobResult` for ``job``, or ``None``.

        Serves only when the stored enumeration satisfies the job in
        full: the entry is exhausted, or the job has a ``limit`` the
        stored prefix covers.  Results are marked ``cached=True``.
        """
        key, order = self._instance_key(job)
        entry = self._load(key)
        if entry is None:
            self.stats.misses += 1
            return None
        same = entry.fingerprint == job_fingerprint(job)
        if not entry_usable(job, same, entry.exhausted, len(entry.payload)):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if same and entry.canonical and entry.lines is not None:
            return line_result(job, entry.lines, entry.exhausted)
        return self._result_from_entry(job, entry, order)

    def prefix(self, job: EnumerationJob) -> Optional[JobResult]:
        """The stored solution prefix for ``job``, complete or not.

        Unlike :meth:`lookup` this also serves incomplete entries (e.g.
        a checkpointed cursor's delivered prefix) and never truncates to
        the job's ``limit``; the result's ``exhausted`` flag says whether
        the stored prefix is the whole enumeration.  Returns ``None``
        only on a true miss.
        """
        key, order = self._instance_key(job)
        entry = self._load(key)
        if entry is None or entry.fingerprint != job_fingerprint(job):
            # A relabeled donor's prefix is in the donor's order; splicing
            # it onto this job's live enumeration would duplicate some
            # solutions and drop others, so only exact matches serve.
            return None
        return self._result_from_entry(job, entry, order, apply_limit=False)

    def store(self, job: EnumerationJob, result: JobResult) -> None:
        """Record ``result`` for ``job``.

        Deadline- and budget-stopped runs are not cached (their cut point
        is timing-dependent, so replaying them would be nondeterministic).
        An existing entry is only replaced by one that knows strictly
        more solutions.
        """
        if not cacheable(result):
            return
        key, order = self._instance_key(job)
        if order is not None and result.structures is None:
            return  # canonical entries need structures to translate on hit
        existing = self._load(key)
        if existing is not None:
            upgrades = result.exhausted and not existing.exhausted
            if existing.exhausted or (
                len(existing.payload) >= result.count and not upgrades
            ):
                return
        fingerprint = job_fingerprint(job)
        if order is not None:
            payload = to_canonical(job.kind, result.structures, order)
            entry = _Entry(
                payload, True, result.exhausted, fingerprint, tuple(result.lines)
            )
        else:
            entry = _Entry(tuple(result.lines), False, result.exhausted, fingerprint)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.stores += 1
        self._shrink()

    def adopt_entry(
        self,
        job: EnumerationJob,
        payload: tuple,
        canonical: bool,
        exhausted: bool,
        fingerprint: str,
        lines: Optional[tuple] = None,
    ) -> None:
        """Insert a pre-built entry for ``job``'s key (tier promotion).

        Used by the disk tier to promote a hit into memory without
        re-deriving structures.  The caller asserts the payload matches
        the entry shape ``job``'s key implies (canonical payload iff the
        key canonicalizes).
        """
        key, order = self._instance_key(job)
        if canonical != (order is not None):
            return  # shape mismatch: refuse rather than corrupt the tier
        self._entries[key] = _Entry(payload, canonical, exhausted, fingerprint, lines)
        self._entries.move_to_end(key)
        self.stats.stores += 1
        self._shrink()

    def clear(self) -> None:
        """Drop all in-memory entries (spilled files are left on disk)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _result_from_entry(
        self,
        job: EnumerationJob,
        entry: _Entry,
        order: Optional[List[Any]],
        apply_limit: bool = True,
    ) -> JobResult:
        return entry_result(
            job, entry.payload, entry.canonical, entry.exhausted, order, apply_limit
        )

    # ------------------------------------------------------------------
    # LRU + spill machinery
    # ------------------------------------------------------------------
    def _load(self, key: str) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if self.spill_dir is None:
            return None
        path = self._spill_path(key)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
        self.stats.disk_hits += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._shrink(exclude=key)
        return entry

    def _shrink(self, exclude: Optional[str] = None) -> None:
        while len(self._entries) > self.maxsize:
            key = next(iter(self._entries))
            if key == exclude:  # pragma: no cover - maxsize >= 1 guards this
                break
            entry = self._entries.pop(key)
            self.stats.evictions += 1
            if self.spill_dir is not None:
                self._spill(key, entry)

    def _spill(self, key: str, entry: _Entry) -> None:
        os.makedirs(self.spill_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.spill_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle)
            os.replace(tmp, self._spill_path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _spill_path(self, key: str) -> str:
        return os.path.join(self.spill_dir, f"{key}.pkl")

"""A-kfrag — keyword search end-to-end (the paper's §1 motivation).

Claims exercised: K-fragment enumeration inherits the linear delay of the
underlying Steiner enumerators, so the first answers of a keyword query
arrive after O(n+m) work regardless of how many answers exist — the
property Kimelfeld and Sagiv identified as the core requirement of
keyword search systems.

Run directly (``PYTHONPATH=src python benchmarks/bench_kfragments.py``)
for the gated backend comparison over undirected / strong / ranked
keyword queries: fragment streams are verified byte-identical per query
before timing, and the run **fails** if the aggregate fast-vs-object
speedup (max of geometric mean and total-time ratio) drops below 2x
(override via ``BENCH_BACKEND_GATE``).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.bench.harness import (
    compare_backends,
    measure_enumeration,
    print_table,
    summarize_backend_comparisons,
)
from repro.datagraph.kfragments import (
    strong_kfragments,
    top_k_fragments,
    undirected_kfragments,
)
from repro.datagraph.model import synthetic_data_graph
from repro.datagraph.ranked import ranked_kfragments

from benchutil import make_drainer

CORPora = [
    ("corpus-s", synthetic_data_graph(60, 30, 40, 2, seed=11)),
    ("corpus-m", synthetic_data_graph(120, 60, 60, 2, seed=12)),
    ("corpus-l", synthetic_data_graph(240, 120, 80, 2, seed=13)),
]



def _rare_query(dg, count=2):
    """Pick the rarest keywords so the answer set stays enumerable."""
    vocab = sorted(dg.vocabulary(), key=lambda kw: (len(dg.nodes_with_keyword(kw)), kw))
    return vocab[:count]


@pytest.mark.parametrize("case", CORPora, ids=lambda c: c[0])
def test_undirected_query(benchmark, case):
    name, dg = case
    query = _rare_query(dg)
    count = benchmark(make_drainer(lambda: undirected_kfragments(dg, query), 100))
    assert count > 0


@pytest.mark.parametrize("case", CORPora[:2], ids=lambda c: c[0])
def test_strong_query(benchmark, case):
    name, dg = case
    query = _rare_query(dg)
    count = benchmark(make_drainer(lambda: strong_kfragments(dg, query), 100))
    assert count >= 0


@pytest.mark.parametrize("case", CORPora[:2], ids=lambda c: c[0])
def test_top_k_latency(benchmark, case):
    name, dg = case
    query = _rare_query(dg)
    top = benchmark(lambda: top_k_fragments(dg, query, 5, exhaustive=False))
    assert len(top) > 0


def test_first_answer_latency_table(benchmark):
    """Time-to-first-fragment stays linear in corpus size."""
    rows = []
    for name, dg in CORPora:
        query = _rare_query(dg)
        size = dg.graph.size
        m = measure_enumeration(
            name,
            size,
            lambda meter, d=dg, q=query: undirected_kfragments(d, q, meter=meter),
            limit=25,
        )
        first_delay = m.metered.delays[0] if m.metered.delays else 0
        rows.append((name, size, m.solutions, int(first_delay), first_delay / size))
    print()
    print_table(
        "A-kfrag: work before the first keyword-search answer",
        ("corpus", "n+m", "answers (cap 25)", "first-answer ops", "normalized"),
        rows,
    )
    norms = [r[4] for r in rows]
    assert max(norms) / max(min(norms), 1e-9) < 10
    benchmark(lambda: None)


# ----------------------------------------------------------------------
# backend comparison (the `python benchmarks/bench_kfragments.py` mode)
# ----------------------------------------------------------------------
LIMIT = 300  # fragments per query


def query_workload():
    """(label, size, factory) triples across the three ported query
    shapes and the realistic 2–5 keyword query mix (more keywords =
    more terminals = more branching, the regime keyword search actually
    stresses; 2-keyword queries degenerate to path enumeration, gated
    separately in bench_paths.py)."""
    cases = []
    for name, dg in CORPora:
        for nkw in (2, 3, 4, 5):
            query = _rare_query(dg, nkw)
            cases.append(
                (
                    f"undirected-k{nkw}/{name}",
                    dg.graph.size,
                    lambda backend, d=dg, q=query: undirected_kfragments(
                        d, q, backend=backend
                    ),
                )
            )
    for name, dg in CORPora[1:]:
        for nkw in (3, 4, 5):
            query = _rare_query(dg, nkw)
            cases.append(
                (
                    f"strong-k{nkw}/{name}",
                    dg.graph.size,
                    lambda backend, d=dg, q=query: strong_kfragments(
                        d, q, backend=backend
                    ),
                )
            )
        query = _rare_query(dg, 3)
        cases.append(
            (
                f"ranked-k3/{name}",
                dg.graph.size,
                lambda backend, d=dg, q=query: ranked_kfragments(
                    d, q, lookahead=64, backend=backend
                ),
            )
        )
    return cases


def run_backend_comparison(out=sys.stdout, min_speedup: float = None):
    """Compare keyword-query backends; assert the aggregate gate."""
    if min_speedup is None:
        min_speedup = float(os.environ.get("BENCH_BACKEND_GATE", "2.0"))
    comparisons = []
    for label, size, factory in query_workload():
        comparisons.append(compare_backends(label, size, factory, limit=LIMIT))
    geo, total = summarize_backend_comparisons(comparisons)
    print_table(
        "A-kfrag backend comparison (byte-identical fragment streams)",
        ("query", "n+m", "answers", "object s", "fast s", "speedup"),
        [
            (c.label, c.size, c.solutions, c.object_seconds, c.fast_seconds, c.speedup)
            for c in comparisons
        ],
        out=out,
    )
    print(
        f"aggregate speedup: geomean {geo:.2f}x, total-time {total:.2f}x "
        f"(gate: >= {min_speedup:.1f}x)",
        file=out,
    )
    if max(geo, total) < min_speedup:
        raise AssertionError(
            f"fast keyword-search backend speedup {max(geo, total):.2f}x "
            f"below the {min_speedup:.1f}x gate"
        )
    return comparisons


if __name__ == "__main__":
    run_backend_comparison()

"""T1-paths — s-t path enumeration delay (Section 3, Theorem 12).

Claim exercised: the Read–Tarjan enumerator has O(n+m) delay.  Theta
graphs hold the solution count fixed (k paths) while the instance grows,
so any super-linear delay would show up directly in the normalized
max-delay column; grids provide the many-solutions regime.

Run directly (``PYTHONPATH=src python benchmarks/bench_paths.py``) for
the object-vs-fast backend comparison on the standard instances: it
verifies the path streams are byte-identical and **fails** if the
aggregate fast-backend speedup drops below 2×.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.bench.harness import (
    compare_backends,
    fit_linearity,
    measure_enumeration,
    print_table,
    summarize_backend_comparisons,
)
from repro.bench.workloads import (
    path_grid_sweep,
    path_theta_sweep,
    steiner_tree_size_sweep,
)
from repro.engine.jobs import EnumerationJob
from repro.paths.read_tarjan import enumerate_st_paths_undirected

from benchutil import make_drainer


@pytest.mark.parametrize("case", path_theta_sweep(), ids=lambda c: c[0])
def test_theta_enumeration(benchmark, case):
    name, graph, s, t = case
    count = benchmark(make_drainer(lambda: enumerate_st_paths_undirected(graph, s, t)))
    assert count == 8  # theta(k=8, *) has exactly 8 paths


@pytest.mark.parametrize("case", path_grid_sweep(), ids=lambda c: c[0])
def test_grid_enumeration(benchmark, case):
    name, graph, s, t = case
    count = benchmark(make_drainer(lambda: enumerate_st_paths_undirected(graph, s, t)))
    assert count > 20


def test_delay_scaling_table(benchmark):
    """Normalized max delay stays flat as n+m grows 16x (linear shape)."""
    rows = []
    sizes, delays = [], []
    for name, graph, s, t in path_theta_sweep():
        m = measure_enumeration(
            name,
            graph.size,
            lambda meter, g=graph, a=s, b=t: enumerate_st_paths_undirected(
                g, a, b, meter=meter
            ),
        )
        sizes.append(m.size)
        delays.append(m.metered.max_delay)
        rows.append(
            (m.label, m.size, m.solutions, m.max_delay_ops, m.normalized_max_delay)
        )
    exponent, r2 = fit_linearity(sizes, delays)
    print()
    print_table(
        "T1-paths: delay vs n+m (theta graphs, solution count fixed)",
        ("instance", "n+m", "solutions", "max delay (ops)", "delay/(n+m)"),
        rows,
    )
    print(f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); paper predicts 1.0")
    assert 0.7 <= exponent <= 1.3
    benchmark(lambda: None)  # registers the test with --benchmark-only


# ----------------------------------------------------------------------
# backend comparison (the `python benchmarks/bench_paths.py` mode)
# ----------------------------------------------------------------------
LIMIT = 800  # paths per instance in the backend comparison


def standard_path_instances():
    """The standard instances in the engine's integer normal form.

    Grids and thetas from the delay sweeps plus the random T1 sweep
    graphs (source/target = the first two sweep terminals), each
    relabeled to ``0..n-1`` exactly as the engine does before every run.
    """
    raw = []
    for name, graph, s, t in path_theta_sweep():
        raw.append((name, graph, s, t))
    for name, graph, s, t in path_grid_sweep():
        raw.append((name, graph, s, t))
    for inst in steiner_tree_size_sweep():
        raw.append((inst.name, inst.graph, inst.terminals[0], inst.terminals[1]))
    out = []
    for name, graph, s, t in raw:
        job = EnumerationJob.st_path(graph, s, t)
        indexed, _labels, index_of = job.instantiate_indexed()
        out.append((name, indexed, index_of[s], index_of[t]))
    return out


def run_backend_comparison(out=sys.stdout, min_speedup: float = None):
    """Compare backends on the standard instances; gate the aggregate.

    Streams must be byte-identical per instance (checked before timing);
    the aggregate fast-vs-object speedup (geometric mean or total-time
    ratio, whichever is larger) must reach ``min_speedup`` (default
    2.0; override via the ``BENCH_BACKEND_GATE`` env var).
    """
    if min_speedup is None:
        min_speedup = float(os.environ.get("BENCH_BACKEND_GATE", "2.0"))
    comparisons = []
    for name, graph, source, target in standard_path_instances():
        comparisons.append(
            compare_backends(
                name,
                graph.size,
                lambda backend, g=graph, s=source, t=target: (
                    enumerate_st_paths_undirected(g, s, t, backend=backend)
                ),
                limit=LIMIT,
            )
        )
    geo, total = summarize_backend_comparisons(comparisons)
    print_table(
        "T1-paths backend comparison (byte-identical streams; best-of-3)",
        ("instance", "n+m", "solutions", "object s", "fast s", "speedup"),
        [
            (c.label, c.size, c.solutions, c.object_seconds, c.fast_seconds, c.speedup)
            for c in comparisons
        ],
        out=out,
    )
    print(
        f"aggregate speedup: geomean {geo:.2f}x, total-time {total:.2f}x "
        f"(gate: >= {min_speedup:.1f}x)",
        file=out,
    )
    if max(geo, total) < min_speedup:
        raise AssertionError(
            f"fast backend speedup {max(geo, total):.2f}x below the "
            f"{min_speedup:.1f}x gate"
        )
    return comparisons


if __name__ == "__main__":
    run_backend_comparison()

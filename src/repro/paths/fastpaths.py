"""Kernel-backed Read–Tarjan path enumeration (fast backend of §3).

This module re-implements the Section 3 enumerator of
:mod:`repro.paths.read_tarjan` directly on the integer kernel
(:class:`repro.graphs.fastgraph.FastGraph` /
:class:`~repro.graphs.fastgraph.FastDiGraph`):

* the auxiliary S–T digraph of the paper's reduction is never
  materialized — S/T membership is a role bit per vertex, the super
  endpoints are the two ids past the vertex space, and auxiliary arc
  ids start past the real arc id space;
* reachability is one byte per vertex encoding reached / unvisited
  target / excluded in a single array read per scanned arc;
* the backward reach set of ``F-STP`` is cached across consecutive
  sibling advances of one enumeration-tree frame (it is deterministic
  in the frame's blocked state, which is unchanged between them);
* adjacency is iterated from the kernel's cached pair/neighbour lists.

**Equivalence contract.**  Every order-sensitive decision is made in
the same sequence as the generic implementation makes it on the
equivalent auxiliary digraph: out-arcs of a real vertex are visited in
incidence order (equal to the aux digraph's per-tail insertion order),
the super source's out-arcs follow the caller's source order
(ordered dedup, same as the generic builders), and the ``F-STP``
forward DFS uses the same explicit stack discipline.  Reachability
sweeps are membership-only in both implementations, so their internal
traversal order is free.  Consequently the emitted solution stream is
byte-identical to the object backend's on instances with plain-int
vertices (the engine's relabeled normal form); the property tests in
``tests/test_backend_equivalence.py`` pin this down.

Masked enumeration: ``excluded`` vertices are pre-blocked, which is
stream-equivalent to deleting them from the graph (the generic backend
builds vertex-induced subcopies instead); the terminal-Steiner
enumerator uses this to run all its per-component path queries against
one compiled kernel.

Meter note: the fast engine charges the meter in per-sweep batches
(``meter.tick(k)``), so op totals are close to, but not identical
with, the object backend's per-arc ticks.  Budgets and deadlines stop
the enumeration all the same.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.enumeration.events import DISCOVER, EXAMINE, SOLUTION, Event
from repro.graphs.fastgraph import FastDiGraph, FastGraph
from repro.paths.read_tarjan import Path

_SRC = 1  # status bit: vertex is in S (arcs into it dropped)
_TGT = 2  # status bit: vertex is in T (arcs out of it dropped)


class _Ctx:
    """Per-enumeration state shared by the F-STP / Lemma 11 subroutines."""

    n2: int
    pairs: Optional[List[List[Tuple[int, int]]]]
    nbrs: Optional[List[List[int]]]
    esum: Optional[List[int]]
    eu: Optional[List[int]]
    opairs: Optional[List[List[Tuple[int, int]]]]
    ipairs: Optional[List[List[Tuple[int, int]]]]
    itails: Optional[List[List[int]]]
    at: Optional[List[int]]
    ah: Optional[List[int]]
    status: bytearray
    src_list: List[int]
    tgt_list: List[int]
    tindex: dict
    aux_s: int
    aux_t: int
    s_star: int
    t_star: int
    directed: bool
    meter: object
    vis: List[int]
    vbox: List[int]
    pvert: List[int]
    parc: List[int]
    excl: List[int]
    blk_list: List[int]
    vec: Optional[object]

    __slots__ = (
        "n2",
        "pairs",
        "nbrs",
        "esum",
        "eu",
        "opairs",
        "ipairs",
        "itails",
        "at",
        "ah",
        "status",
        "src_list",
        "tgt_list",
        "tindex",
        "aux_s",
        "aux_t",
        "s_star",
        "t_star",
        "directed",
        "meter",
        "vis",
        "vbox",
        "pvert",
        "parc",
        "excl",
        "blk_list",
        "vec",
    )


def _und_ctx(
    fg: FastGraph,
    src_list: List[int],
    tgt_list: List[int],
    excluded: Iterable[int],
    meter,
) -> _Ctx:
    ctx = _Ctx()
    n = fg.n_space
    ctx.n2 = n + 2
    ctx.pairs = fg.incidence_pairs()
    ctx.nbrs = fg.neighbor_lists()
    ctx.esum = fg._esum
    ctx.eu = fg._eu
    ctx.opairs = ctx.ipairs = ctx.itails = ctx.at = ctx.ah = None
    status = bytearray(ctx.n2)
    for v in src_list:
        status[v] |= _SRC
    for v in tgt_list:
        status[v] |= _TGT
    ctx.status = status
    ctx.excl = list(excluded)
    ctx.blk_list = []
    ctx.src_list = src_list
    ctx.tgt_list = tgt_list
    ctx.tindex = {w: j for j, w in enumerate(tgt_list)}
    ctx.aux_s = 2 * fg.m_space
    ctx.aux_t = ctx.aux_s + len(src_list)
    ctx.s_star = n
    ctx.t_star = n + 1
    ctx.directed = False
    ctx.meter = meter
    scratch = fg._scratch
    if scratch is None or len(scratch[0]) < ctx.n2:
        scratch = fg._scratch = ([0] * ctx.n2, [0] * ctx.n2, [0] * ctx.n2, [0])
    ctx.vis, ctx.pvert, ctx.parc, ctx.vbox = scratch
    # A VecGraph kernel switches the machine to the numpy subroutines
    # (duck-typed on the CSR accessor so this module never needs numpy).
    if hasattr(fg, "csr"):
        from repro.paths.vecpaths import make_vec_view

        ctx.vec = make_vec_view(fg, ctx)
    else:
        ctx.vec = None
    return ctx


def _dir_ctx(
    fd: FastDiGraph, src_list: List[int], tgt_list: List[int], meter
) -> _Ctx:
    ctx = _Ctx()
    n = fd.n_space
    ctx.n2 = n + 2
    ctx.pairs = ctx.nbrs = ctx.esum = ctx.eu = None
    ctx.opairs, ctx.ipairs, ctx.itails = fd.arc_pairs()
    ctx.at = fd._at
    ctx.ah = fd._ah
    status = bytearray(ctx.n2)
    for v in src_list:
        status[v] |= _SRC
    for v in tgt_list:
        status[v] |= _TGT
    ctx.status = status
    ctx.excl = []
    ctx.blk_list = []
    ctx.src_list = src_list
    ctx.tgt_list = tgt_list
    ctx.tindex = {w: j for j, w in enumerate(tgt_list)}
    ctx.aux_s = fd.m_space
    ctx.aux_t = ctx.aux_s + len(src_list)
    ctx.s_star = n
    ctx.t_star = n + 1
    ctx.directed = True
    ctx.meter = meter
    scratch = fd._scratch
    if scratch is None or len(scratch[0]) < ctx.n2:
        scratch = fd._scratch = ([0] * ctx.n2, [0] * ctx.n2, [0] * ctx.n2, [0])
    ctx.vis, ctx.pvert, ctx.parc, ctx.vbox = scratch
    ctx.vec = None  # the vector backend covers undirected kinds only
    return ctx


def _reach_base(ctx: _Ctx, target: int) -> bytearray:
    """Seed a reach array: 0 unknown, 1 reached, 2 unvisited target,
    3 excluded (blocked / masked / removed).  The sweeps then pay a
    single array read per arc."""
    reach = bytearray(ctx.n2)
    for w in ctx.tgt_list:
        reach[w] = 2
    for v in ctx.excl:
        reach[v] = 3
    for v in ctx.blk_list:
        reach[v] = 3
    reach[target] = 1
    return reach


def _backward_und(ctx: _Ctx, source: int, target: int) -> bytearray:
    """Backward reachability of ``target`` avoiding blocked + source.

    Deterministic in (blocked state, source, target), so callers may
    cache the result while that state is unchanged.  ``reach[v] == 1``
    is the membership test.
    """
    nbrs = ctx.nbrs
    status = ctx.status
    s_star = ctx.s_star
    ops = 0
    reach = _reach_base(ctx, target)
    reach[source] = 3
    stack = [target]
    push = stack.append
    pop = stack.pop
    while stack:
        y = pop()
        if y >= s_star:
            if y == ctx.t_star:
                for w in ctx.tgt_list:
                    ops += 1
                    if reach[w] == 2:
                        reach[w] = 1
                        push(w)
            continue
        if status[y] & _SRC:
            continue
        lst = nbrs[y]
        ops += len(lst)
        for x in lst:
            if reach[x]:  # reached, excluded, or a target (arc dropped)
                continue
            reach[x] = 1
            push(x)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    return reach


def _find_path_und(
    ctx: _Ctx,
    frame: "_Frame",
    source: int,
    target: int,
    forbidden: Optional[int],
    after_arc: Optional[int],
) -> Optional[Tuple[List[int], List[int]]]:
    """``F-STP`` on the undirected kernel (see the generic docstring).

    The backward reach set is computed once per enumeration-tree frame
    and stored on it: every sibling advance of the frame runs under the
    same blocked state, so the set is identical (the generic backend
    recomputes it each time).
    """
    pairs = ctx.pairs
    status = ctx.status
    eu = ctx.eu
    s_star = ctx.s_star
    t_star = ctx.t_star
    reach = frame.reach
    if reach is None:
        reach = frame.reach = _backward_und(ctx, source, target)
    ops = 0

    # Scan the outgoing arcs of `source` in the fixed order.
    started = after_arc is None
    chosen = -1
    chead = -1
    if source == s_star:
        aux_s = ctx.aux_s
        for i, h in enumerate(ctx.src_list):
            aid = aux_s + i
            ops += 1
            if not started:
                if aid == after_arc:
                    started = True
                continue
            if aid == forbidden:
                continue
            if reach[h] == 1:
                chosen = aid
                chead = h
                break
    elif status[source] & _TGT:
        aid = ctx.aux_t + ctx.tindex[source]
        ops += 1
        if started and aid != forbidden and reach[t_star] == 1:
            chosen = aid
            chead = t_star
    else:
        for e, h in pairs[source]:
            aid = (e << 1) | (eu[e] != source)
            ops += 1
            if not started:
                if aid == after_arc:
                    started = True
                continue
            if aid == forbidden or status[h] & _SRC:
                continue
            if reach[h] == 1:
                chosen = aid
                chead = h
                break
    if chosen < 0:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return None
    if chead == target:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return ([chosen], [source, target])

    # Forward DFS from the chosen head, restricted to `reach`.
    vis = ctx.vis
    vbox = ctx.vbox
    vgen = vbox[0] + 1
    vbox[0] = vgen
    pvert = ctx.pvert
    parc = ctx.parc
    vis[chead] = vgen
    stack = [chead]
    push = stack.append
    pop = stack.pop
    aux_t = ctx.aux_t
    tindex = ctx.tindex
    while stack:
        v = pop()
        if v == target:
            break
        if status[v] & _TGT:
            ops += 1
            if vis[t_star] != vgen and reach[t_star] == 1:
                vis[t_star] = vgen
                pvert[t_star] = v
                parc[t_star] = aux_t + tindex[v]
                push(t_star)
            continue
        lst = pairs[v]
        ops += len(lst)
        for e, w in lst:
            if vis[w] == vgen or reach[w] != 1 or status[w] & _SRC:
                continue
            vis[w] = vgen
            pvert[w] = v
            parc[w] = (e << 1) | (eu[e] != v)
            push(w)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    arcs: List[int] = []
    vertices: List[int] = [target]
    v = target
    while v != chead:
        arcs.append(parc[v])
        v = pvert[v]
        vertices.append(v)
    arcs.append(chosen)
    vertices.append(source)
    arcs.reverse()
    vertices.reverse()
    return (arcs, vertices)


def _backward_dir(ctx: _Ctx, source: int, target: int) -> bytearray:
    """Directed backward reachability (cacheable like the undirected)."""
    itails = ctx.itails
    status = ctx.status
    s_star = ctx.s_star
    ops = 0
    reach = _reach_base(ctx, target)
    reach[source] = 3
    stack = [target]
    push = stack.append
    pop = stack.pop
    while stack:
        y = pop()
        if y >= s_star:
            if y == ctx.t_star:
                for w in ctx.tgt_list:
                    ops += 1
                    if reach[w] == 2:
                        reach[w] = 1
                        push(w)
            continue
        if status[y] & _SRC:
            continue
        lst = itails[y]
        ops += len(lst)
        for x in lst:
            if reach[x]:
                continue
            reach[x] = 1
            push(x)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    return reach


def _find_path_dir(
    ctx: _Ctx,
    frame: "_Frame",
    source: int,
    target: int,
    forbidden: Optional[int],
    after_arc: Optional[int],
) -> Optional[Tuple[List[int], List[int]]]:
    """``F-STP`` on the directed kernel."""
    opairs = ctx.opairs
    status = ctx.status
    s_star = ctx.s_star
    t_star = ctx.t_star
    reach = frame.reach
    if reach is None:
        reach = frame.reach = _backward_dir(ctx, source, target)
    ops = 0

    started = after_arc is None
    chosen = -1
    chead = -1
    if source == s_star:
        aux_s = ctx.aux_s
        for i, h in enumerate(ctx.src_list):
            aid = aux_s + i
            ops += 1
            if not started:
                if aid == after_arc:
                    started = True
                continue
            if aid == forbidden:
                continue
            if reach[h] == 1:
                chosen = aid
                chead = h
                break
    elif status[source] & _TGT:
        aid = ctx.aux_t + ctx.tindex[source]
        ops += 1
        if started and aid != forbidden and reach[t_star] == 1:
            chosen = aid
            chead = t_star
    else:
        for a, h in opairs[source]:
            ops += 1
            if not started:
                if a == after_arc:
                    started = True
                continue
            if a == forbidden or status[h] & _SRC:
                continue
            if reach[h] == 1:
                chosen = a
                chead = h
                break
    if chosen < 0:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return None
    if chead == target:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return ([chosen], [source, target])

    vis = ctx.vis
    vbox = ctx.vbox
    vgen = vbox[0] + 1
    vbox[0] = vgen
    pvert = ctx.pvert
    parc = ctx.parc
    vis[chead] = vgen
    stack = [chead]
    push = stack.append
    pop = stack.pop
    aux_t = ctx.aux_t
    tindex = ctx.tindex
    while stack:
        v = pop()
        if v == target:
            break
        if status[v] & _TGT:
            ops += 1
            if vis[t_star] != vgen and reach[t_star] == 1:
                vis[t_star] = vgen
                pvert[t_star] = v
                parc[t_star] = aux_t + tindex[v]
                push(t_star)
            continue
        lst = opairs[v]
        ops += len(lst)
        for a, w in lst:
            if vis[w] == vgen or reach[w] != 1 or status[w] & _SRC:
                continue
            vis[w] = vgen
            pvert[w] = v
            parc[w] = a
            push(w)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    arcs: List[int] = []
    vertices: List[int] = [target]
    v = target
    while v != chead:
        arcs.append(parc[v])
        v = pvert[v]
        vertices.append(v)
    arcs.append(chosen)
    vertices.append(source)
    arcs.reverse()
    vertices.reverse()
    return (arcs, vertices)


def _extendible_und(
    ctx: _Ctx, q_arcs: Sequence[int], q_vertices: Sequence[int], target: int
) -> List[int]:
    """Lemma 11 sweep on the undirected kernel."""
    k = len(q_vertices)
    if k <= 2:
        return []
    pairs = ctx.pairs
    nbrs = ctx.nbrs
    status = ctx.status
    eu = ctx.eu
    esum = ctx.esum
    s_star = ctx.s_star
    t_star = ctx.t_star
    aux_s = ctx.aux_s
    aux_t = ctx.aux_t
    ops = 0

    prefix = q_vertices[: k - 2]
    reach = _reach_base(ctx, target)
    for v in prefix:
        reach[v] = 3  # the Lemma 11 `removed` overlay
    excluded = q_arcs[k - 2]
    ex_e = excluded >> 1 if excluded < aux_s else -1

    # Full backward pass for j = k-1.
    stack = [target]
    push = stack.append
    pop = stack.pop
    while stack:
        y = pop()
        if y >= s_star:
            if y == t_star:
                for j, w in enumerate(ctx.tgt_list):
                    ops += 1
                    if aux_t + j == excluded:
                        continue
                    if reach[w] == 2:
                        reach[w] = 1
                        push(w)
            continue
        if status[y] & _SRC:
            continue
        if ex_e < 0:
            lst = nbrs[y]
            ops += len(lst)
            for x in lst:
                if reach[x]:
                    continue
                reach[x] = 1
                push(x)
        else:
            plst = pairs[y]
            ops += len(plst)
            for e, x in plst:
                if reach[x]:
                    continue
                if e == ex_e and ((e << 1) | (eu[e] != x)) == excluded:
                    continue
                reach[x] = 1
                push(x)

    ext: List[int] = []
    if reach[q_vertices[k - 2]] == 1:
        ext.append(k - 1)

    # Roll j from k-2 down to 2, maintaining `reach` decrementally.
    frontier: List[int] = []
    for j in range(k - 2, 1, -1):
        vj = q_vertices[j - 1]
        reach[vj] = 0  # removed.discard(vj)
        excluded = q_arcs[j - 1]
        ex_e = excluded >> 1  # always a real arc (index >= 1, < k-2)

        if reach[vj] != 1:
            for e, h in pairs[vj]:
                ops += 1
                if e == ex_e and ((e << 1) | (eu[e] != vj)) == excluded:
                    continue
                if reach[h] == 3 or status[h] & _SRC:
                    continue
                if reach[h] == 1:
                    frontier.append(vj)
                    break
        pc = q_arcs[j]
        ops += 1
        if pc >= aux_t:
            tail = ctx.tgt_list[pc - aux_t]
            head = t_star
        elif pc >= aux_s:
            tail = s_star
            head = ctx.src_list[pc - aux_s]
        else:
            e2 = pc >> 1
            tail = eu[e2] if not pc & 1 else esum[e2] - eu[e2]
            head = esum[e2] - tail
        if not reach[tail] & 1 and reach[head] == 1:
            frontier.append(tail)

        while frontier:
            x = frontier.pop()
            if reach[x] == 1:
                continue
            reach[x] = 1
            if status[x] & _SRC:
                continue
            plst = pairs[x]
            ops += len(plst)
            for e, z in plst:
                if reach[z]:
                    continue
                if e == ex_e and ((e << 1) | (eu[e] != z)) == excluded:
                    continue
                frontier.append(z)

        if reach[vj] == 1:
            ext.append(j)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    return ext


def _extendible_dir(
    ctx: _Ctx, q_arcs: Sequence[int], q_vertices: Sequence[int], target: int
) -> List[int]:
    """Lemma 11 sweep on the directed kernel."""
    k = len(q_vertices)
    if k <= 2:
        return []
    opairs = ctx.opairs
    ipairs = ctx.ipairs
    itails = ctx.itails
    status = ctx.status
    at = ctx.at
    ah = ctx.ah
    s_star = ctx.s_star
    t_star = ctx.t_star
    aux_s = ctx.aux_s
    aux_t = ctx.aux_t
    ops = 0

    prefix = q_vertices[: k - 2]
    reach = _reach_base(ctx, target)
    for v in prefix:
        reach[v] = 3
    excluded = q_arcs[k - 2]
    excluded_real = excluded < aux_s

    stack = [target]
    push = stack.append
    pop = stack.pop
    while stack:
        y = pop()
        if y >= s_star:
            if y == t_star:
                for j, w in enumerate(ctx.tgt_list):
                    ops += 1
                    if aux_t + j == excluded:
                        continue
                    if reach[w] == 2:
                        reach[w] = 1
                        push(w)
            continue
        if status[y] & _SRC:
            continue
        if excluded_real:
            plst = ipairs[y]
            ops += len(plst)
            for a, x in plst:
                if reach[x] or a == excluded:
                    continue
                reach[x] = 1
                push(x)
        else:
            lst = itails[y]
            ops += len(lst)
            for x in lst:
                if reach[x]:
                    continue
                reach[x] = 1
                push(x)

    ext: List[int] = []
    if reach[q_vertices[k - 2]] == 1:
        ext.append(k - 1)

    frontier: List[int] = []
    for j in range(k - 2, 1, -1):
        vj = q_vertices[j - 1]
        reach[vj] = 0
        excluded = q_arcs[j - 1]

        if reach[vj] != 1:
            for a, h in opairs[vj]:
                ops += 1
                if a == excluded:
                    continue
                if reach[h] == 3 or status[h] & _SRC:
                    continue
                if reach[h] == 1:
                    frontier.append(vj)
                    break
        pc = q_arcs[j]
        ops += 1
        if pc >= aux_t:
            tail = ctx.tgt_list[pc - aux_t]
            head = t_star
        elif pc >= aux_s:
            tail = s_star
            head = ctx.src_list[pc - aux_s]
        else:
            tail = at[pc]
            head = ah[pc]
        if not reach[tail] & 1 and reach[head] == 1:
            frontier.append(tail)

        while frontier:
            x = frontier.pop()
            if reach[x] == 1:
                continue
            reach[x] = 1
            if status[x] & _SRC:
                continue
            plst = ipairs[x]
            ops += len(plst)
            for a, z in plst:
                if reach[z] or a == excluded:
                    continue
                frontier.append(z)

        if reach[vj] == 1:
            ext.append(j)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    return ext


def _backward_und_plain(ctx: _Ctx, source: int, target: int) -> bytearray:
    """Plain-mode backward reachability (no S/T roles, no sentinels)."""
    nbrs = ctx.nbrs
    ops = 0
    reach = bytearray(ctx.n2)
    for v in ctx.excl:
        reach[v] = 3
    for v in ctx.blk_list:
        reach[v] = 3
    reach[source] = 3
    reach[target] = 1
    stack = [target]
    push = stack.append
    pop = stack.pop
    if ctx.meter is None:
        while stack:
            y = pop()
            for x in nbrs[y]:
                if reach[x]:
                    continue
                reach[x] = 1
                push(x)
        return reach
    while stack:
        y = pop()
        lst = nbrs[y]
        ops += len(lst)
        for x in lst:
            if reach[x]:
                continue
            reach[x] = 1
            push(x)
    if ops:
        ctx.meter.tick(ops)
    return reach


def _find_path_und_plain(
    ctx: _Ctx,
    frame: "_Frame",
    source: int,
    target: int,
    forbidden: Optional[int],
    after_arc: Optional[int],
) -> Optional[Tuple[List[int], List[int]]]:
    """``F-STP`` specialized for plain undirected s-t enumeration.

    Identical decisions to :func:`_find_path_und` with every role/
    sentinel test compiled out (there are no S/T roles in plain mode).
    """
    pairs = ctx.pairs
    eu = ctx.eu
    reach = frame.reach
    if reach is None:
        reach = frame.reach = _backward_und_plain(ctx, source, target)
    ops = 0

    started = after_arc is None
    chosen = -1
    chead = -1
    for e, h in pairs[source]:
        aid = (e << 1) | (eu[e] != source)
        ops += 1
        if not started:
            if aid == after_arc:
                started = True
            continue
        if aid == forbidden:
            continue
        if reach[h] == 1:
            chosen = aid
            chead = h
            break
    if chosen < 0:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return None
    if chead == target:
        if ctx.meter is not None and ops:
            ctx.meter.tick(ops)
        return ([chosen], [source, target])

    vis = ctx.vis
    vbox = ctx.vbox
    vgen = vbox[0] + 1
    vbox[0] = vgen
    pvert = ctx.pvert
    parc = ctx.parc
    vis[chead] = vgen
    stack = [chead]
    push = stack.append
    pop = stack.pop
    if ctx.meter is None:
        while stack:
            v = pop()
            if v == target:
                break
            for e, w in pairs[v]:
                if vis[w] == vgen or reach[w] != 1:
                    continue
                vis[w] = vgen
                pvert[w] = v
                parc[w] = (e << 1) | (eu[e] != v)
                push(w)
    else:
        while stack:
            v = pop()
            if v == target:
                break
            lst = pairs[v]
            ops += len(lst)
            for e, w in lst:
                if vis[w] == vgen or reach[w] != 1:
                    continue
                vis[w] = vgen
                pvert[w] = v
                parc[w] = (e << 1) | (eu[e] != v)
                push(w)
        if ops:
            ctx.meter.tick(ops)
    arcs: List[int] = []
    vertices: List[int] = [target]
    v = target
    while v != chead:
        arcs.append(parc[v])
        v = pvert[v]
        vertices.append(v)
    arcs.append(chosen)
    vertices.append(source)
    arcs.reverse()
    vertices.reverse()
    return (arcs, vertices)


def _extendible_und_plain(
    ctx: _Ctx, q_arcs: Sequence[int], q_vertices: Sequence[int], target: int
) -> List[int]:
    """Lemma 11 sweep specialized for plain undirected enumeration."""
    k = len(q_vertices)
    if k <= 2:
        return []
    pairs = ctx.pairs
    eu = ctx.eu
    esum = ctx.esum
    ops = 0

    prefix = q_vertices[: k - 2]
    reach = bytearray(ctx.n2)
    for v in ctx.excl:
        reach[v] = 3
    for v in ctx.blk_list:
        reach[v] = 3
    for v in prefix:
        reach[v] = 3
    reach[target] = 1
    excluded = q_arcs[k - 2]
    ex_e = excluded >> 1

    stack = [target]
    push = stack.append
    pop = stack.pop
    metered = ctx.meter is not None
    if metered:
        while stack:
            y = pop()
            plst = pairs[y]
            ops += len(plst)
            for e, x in plst:
                if reach[x]:
                    continue
                if e == ex_e and ((e << 1) | (eu[e] != x)) == excluded:
                    continue
                reach[x] = 1
                push(x)
    else:
        while stack:
            y = pop()
            for e, x in pairs[y]:
                if reach[x]:
                    continue
                if e == ex_e and ((e << 1) | (eu[e] != x)) == excluded:
                    continue
                reach[x] = 1
                push(x)

    ext: List[int] = []
    if reach[q_vertices[k - 2]] == 1:
        ext.append(k - 1)

    frontier: List[int] = []
    for j in range(k - 2, 1, -1):
        vj = q_vertices[j - 1]
        reach[vj] = 0
        excluded = q_arcs[j - 1]
        ex_e = excluded >> 1

        if reach[vj] != 1:
            for e, h in pairs[vj]:
                ops += 1
                if reach[h] == 1 and not (
                    e == ex_e and ((e << 1) | (eu[e] != vj)) == excluded
                ):
                    frontier.append(vj)
                    break
        pc = q_arcs[j]
        ops += 1
        e2 = pc >> 1
        tail = eu[e2] if not pc & 1 else esum[e2] - eu[e2]
        head = esum[e2] - tail
        if not reach[tail] & 1 and reach[head] == 1:
            frontier.append(tail)

        while frontier:
            x = frontier.pop()
            if reach[x] == 1:
                continue
            reach[x] = 1
            plst = pairs[x]
            ops += len(plst)
            for e, z in plst:
                if reach[z]:
                    continue
                if e == ex_e and ((e << 1) | (eu[e] != z)) == excluded:
                    continue
                frontier.append(z)

        if reach[vj] == 1:
            ext.append(j)
    if ctx.meter is not None and ops:
        ctx.meter.tick(ops)
    return ext


class _Frame:
    """One ``E-STP`` activation (mirrors the generic ``_Frame``)."""

    __slots__ = (
        "source",
        "forbidden",
        "depth",
        "node_id",
        "q_arcs",
        "q_vertices",
        "ext",
        "pos",
        "added_vertices",
        "added_arcs",
        "reach",
    )

    def __init__(self, source, forbidden, depth, node_id, added_vertices, added_arcs):
        self.source = source
        self.forbidden = forbidden
        self.depth = depth
        self.node_id = node_id
        self.q_arcs: List[int] = []
        self.q_vertices: List[int] = []
        self.ext: List[int] = []
        self.pos = 0
        self.added_vertices = added_vertices
        self.added_arcs = added_arcs
        # Backward reach of the target under this frame's blocked state.
        # (Annotated Optional: computed lazily by the first F-STP call.)
        # The blocked state whenever this frame is top-of-stack equals
        # its creation state (children restore on pop), so one sweep per
        # frame serves every sibling advance.  A frame already holds
        # O(path length) state (q_arcs / q_vertices); this adds O(n).
        self.reach: Optional[bytearray] = None

    def as_state(self) -> tuple:
        """Plain-data form for snapshots.  ``reach`` is a derived cache
        (deterministic in the frame's blocked state) and is dropped; the
        first F-STP call after restore recomputes it byte-identically."""
        return (
            self.source,
            self.forbidden,
            self.depth,
            self.node_id,
            list(self.q_arcs),
            list(self.q_vertices),
            list(self.ext),
            self.pos,
            tuple(self.added_vertices),
            self.added_arcs,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "_Frame":
        frame = cls(state[0], state[1], state[2], state[3], state[8], state[9])
        frame.q_arcs = list(state[4])
        frame.q_vertices = list(state[5])
        frame.ext = list(state[6])
        frame.pos = state[7]
        return frame


class FastPathSearch:
    """Algorithm 1 on the kernel as an explicit-state machine.

    Kernel counterpart of :class:`repro.paths.read_tarjan.PathSearch`:
    event-for-event parallel to the generic machine run on the
    equivalent auxiliary digraph, and suspendable the same way —
    :meth:`state` serializes the frame stack, shared prefix, blocked
    overlay and pending output queue as plain data, and :meth:`restore`
    rebuilds the context (including the per-frame backward-reach caches,
    which are recomputed lazily and deterministically) from the kernel.

    ``emit`` selects the output shape of :meth:`advance`: 0 yields the
    full raw event stream (sentinel vertices, internal arc ids); the
    nonzero modes yield bare :class:`Path` records ready for the
    consumer, skipping discover/examine events entirely — 1 strips the
    super endpoints and maps arc ids to edge ids (undirected S-T), 2
    maps arc ids to edge ids (plain undirected s-t), 3 strips the super
    endpoints (directed S-T).
    """

    __slots__ = (
        "ctx",
        "source",
        "target",
        "emit",
        "_find_path",
        "_extendible",
        "prefix_arcs",
        "prefix_vertices",
        "node_counter",
        "stack",
        "pending",
        "phase",
    )

    def __init__(self, ctx: _Ctx, source: int, target: int, emit: int = 0) -> None:
        self.ctx = ctx
        self.source = source
        self.target = target
        self.emit = emit
        if ctx.directed:
            self._find_path = _find_path_dir
            self._extendible = _extendible_dir
        elif ctx.src_list or ctx.tgt_list:
            if ctx.vec is not None:
                from repro.paths import vecpaths

                self._find_path = vecpaths._find_path_und_vec
                self._extendible = vecpaths._extendible_und_vec
            else:
                self._find_path = _find_path_und
                self._extendible = _extendible_und
        else:
            if ctx.vec is not None:
                from repro.paths import vecpaths

                self._find_path = vecpaths._find_path_und_plain_vec
                self._extendible = vecpaths._extendible_und_plain_vec
            else:
                self._find_path = _find_path_und_plain
                self._extendible = _extendible_und_plain
        self.prefix_arcs: List[int] = []
        self.prefix_vertices: List[int] = []
        self.node_counter = 0
        self.stack: List[_Frame] = []
        self.pending: deque = deque()
        self.phase = 0  # 0 = not started, 1 = running, 2 = exhausted

    # ------------------------------------------------------------------
    def advance(self):
        """The next event (``emit == 0``) or :class:`Path`, else ``None``."""
        while True:
            if self.pending:
                return self.pending.popleft()
            if self.phase == 2:
                return None
            if self.phase == 0:
                self._start()
            else:
                self._step()

    def next_path(self) -> Optional[Path]:
        """:meth:`advance` under a path-shaped emit mode (1/2/3)."""
        return self.advance()

    def _emit_solution(self, frame: _Frame) -> None:
        fv = self.prefix_vertices[:-1] + frame.q_vertices
        fa = self.prefix_arcs + frame.q_arcs
        emit = self.emit
        if emit == 0:
            self.pending.append((SOLUTION, Path(tuple(fv), tuple(fa))))
        elif emit == 1:
            self.pending.append(
                Path(tuple(fv[1:-1]), tuple([a >> 1 for a in fa[1:-1]]))
            )
        elif emit == 2:
            self.pending.append(Path(tuple(fv), tuple([a >> 1 for a in fa])))
        else:
            self.pending.append(Path(tuple(fv[1:-1]), tuple(fa[1:-1])))

    def _start(self) -> None:
        self.phase = 1
        source, target = self.source, self.target
        if source == target:
            if self.emit:
                self.pending.append(Path((source,), ()))
            else:
                self.pending.append((DISCOVER, 0, 0))
                self.pending.append((SOLUTION, Path((source,), ())))
                self.pending.append((EXAMINE, 0, 0))
            self.phase = 2
            return
        self.prefix_vertices = [source]
        root = _Frame(source, None, 0, self.node_counter, (), 0)
        found = self._find_path(self.ctx, root, source, target, None, None)
        if found is None:
            self.phase = 2
            return
        if self.emit == 0:
            self.pending.append((DISCOVER, root.node_id, 0))
        root.q_arcs, root.q_vertices = found
        root.ext = self._extendible(self.ctx, root.q_arcs, root.q_vertices, target)
        root.pos = 0
        if root.depth % 2 == 0:
            self._emit_solution(root)
        self.stack.append(root)

    def _step(self) -> None:
        """One enumeration-tree traversal step (the old loop body)."""
        if not self.stack:
            self.phase = 2
            return
        ctx, target = self.ctx, self.target
        frame = self.stack[-1]
        if frame.pos < len(frame.ext):
            i = frame.ext[frame.pos]
            frame.pos += 1
            added = tuple(frame.q_vertices[: i - 1])
            if added:
                ctx.blk_list.extend(added)
            self.prefix_arcs.extend(frame.q_arcs[: i - 1])
            self.prefix_vertices.extend(frame.q_vertices[1:i])
            self.node_counter += 1
            child = _Frame(
                frame.q_vertices[i - 1],
                frame.q_arcs[i - 1],
                frame.depth + 1,
                self.node_counter,
                added,
                i - 1,
            )
            found = self._find_path(
                ctx, child, child.source, target, child.forbidden, None
            )
            if found is None:  # pragma: no cover - excluded by extendibility
                if added:
                    del ctx.blk_list[len(ctx.blk_list) - len(added) :]
                del self.prefix_arcs[len(self.prefix_arcs) - child.added_arcs :]
                del self.prefix_vertices[
                    len(self.prefix_vertices) - child.added_arcs :
                ]
                return
            if self.emit == 0:
                self.pending.append((DISCOVER, child.node_id, child.depth))
            child.q_arcs, child.q_vertices = found
            child.ext = self._extendible(ctx, child.q_arcs, child.q_vertices, target)
            child.pos = 0
            self.stack.append(child)
            if child.depth % 2 == 0:
                self._emit_solution(child)
            return

        if frame.depth % 2 == 1:
            self._emit_solution(frame)
        found = self._find_path(
            ctx, frame, frame.source, target, frame.forbidden, frame.q_arcs[0]
        )
        if found is not None:
            frame.q_arcs, frame.q_vertices = found
            frame.ext = self._extendible(ctx, frame.q_arcs, frame.q_vertices, target)
            frame.pos = 0
            if frame.depth % 2 == 0:
                self._emit_solution(frame)
            return

        if self.emit == 0:
            self.pending.append((EXAMINE, frame.node_id, frame.depth))
        self.stack.pop()
        if frame.added_vertices:
            n_added = len(frame.added_vertices)
            del ctx.blk_list[len(ctx.blk_list) - n_added :]
        if frame.added_arcs:
            del self.prefix_arcs[len(self.prefix_arcs) - frame.added_arcs :]
            del self.prefix_vertices[len(self.prefix_vertices) - frame.added_arcs :]

    # ------------------------------------------------------------------
    # snapshot plumbing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Plain-data search state.

        The context's ordered source/target/excluded lists are captured
        verbatim (they fix the auxiliary arc id space and every scan
        order); the kernel arrays and per-frame reach caches are not —
        they are rebuilt from the graph on :meth:`restore`.
        """
        ctx = self.ctx
        return {
            "directed": ctx.directed,
            "src": list(ctx.src_list),
            "tgt": list(ctx.tgt_list),
            "excl": list(ctx.excl),
            "blk": list(ctx.blk_list),
            "source": self.source,
            "target": self.target,
            "emit": self.emit,
            "prefix_arcs": list(self.prefix_arcs),
            "prefix_vertices": list(self.prefix_vertices),
            "node_counter": self.node_counter,
            "stack": [frame.as_state() for frame in self.stack],
            "pending": list(self.pending),
            "phase": self.phase,
        }

    @classmethod
    def restore(cls, graph, state: Dict[str, Any], meter=None) -> "FastPathSearch":
        """Rebuild a machine over the compiled kernel ``graph``.

        ``graph`` is the :class:`FastGraph` / :class:`FastDiGraph` the
        state was captured on (or a deterministic recompilation of the
        same instance — the enumerator-level snapshots guarantee that
        via the instance fingerprint).
        """
        if state["directed"]:
            ctx = _dir_ctx(graph, list(state["src"]), list(state["tgt"]), meter)
        else:
            ctx = _und_ctx(
                graph, list(state["src"]), list(state["tgt"]), state["excl"], meter
            )
        ctx.blk_list = list(state["blk"])
        machine = cls(ctx, state["source"], state["target"], state["emit"])
        machine.prefix_arcs = list(state["prefix_arcs"])
        machine.prefix_vertices = list(state["prefix_vertices"])
        machine.node_counter = state["node_counter"]
        machine.stack = [_Frame.from_state(f) for f in state["stack"]]
        machine.pending = deque(state["pending"])
        machine.phase = state["phase"]
        return machine


def _events(ctx: _Ctx, source: int, target: int, emit: int = 0) -> Iterator:
    """Drain a :class:`FastPathSearch` (generator shape of the machine)."""
    machine = FastPathSearch(ctx, source, target, emit)
    while True:
        item = machine.advance()
        if item is None:
            return
        yield item


# ----------------------------------------------------------------------
# public wrappers (parallel to the generic module's API)
# ----------------------------------------------------------------------
def _split_sets(
    fg, sources: Iterable[int], targets: Iterable[int]
) -> Tuple[List[int], List[int]]:
    # Ordered dedup mirroring the generic builders: the auxiliary arc
    # order — and hence the stream — follows the caller's sequence order.
    source_list = list(dict.fromkeys(sources))
    target_list = list(dict.fromkeys(targets))
    if set(source_list) & set(target_list):
        raise ValueError("S and T must be disjoint")
    # A source/target missing from the graph is a dead end either way;
    # dropping it keeps the scan decisions identical to the generic
    # backend's (which materializes it as an isolated aux vertex).
    src_list = [v for v in source_list if v in fg]
    tgt_list = [v for v in target_list if v in fg]
    return src_list, tgt_list


def fast_set_path_search(
    fg: FastGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
    excluded: Iterable[int] = (),
) -> FastPathSearch:
    """Suspendable machine form of :func:`fast_enumerate_set_paths`."""
    src_list, tgt_list = _split_sets(fg, sources, targets)
    ctx = _und_ctx(fg, src_list, tgt_list, excluded, meter)
    return FastPathSearch(ctx, ctx.s_star, ctx.t_star, emit=1)


def fast_set_path_search_directed(
    fd: FastDiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
) -> FastPathSearch:
    """Suspendable machine form of :func:`fast_enumerate_set_paths_directed`."""
    src_list, tgt_list = _split_sets(fd, sources, targets)
    ctx = _dir_ctx(fd, src_list, tgt_list, meter)
    return FastPathSearch(ctx, ctx.s_star, ctx.t_star, emit=3)


def fast_st_path_search(
    fg: FastGraph,
    source: int,
    target: int,
    meter=None,
    excluded: Iterable[int] = (),
) -> FastPathSearch:
    """Suspendable machine form of :func:`fast_enumerate_st_paths_undirected`."""
    ctx = _und_ctx(fg, [], [], excluded, meter)
    machine = FastPathSearch(ctx, source, target, emit=2)
    if source not in fg or target not in fg:
        machine.phase = 2  # mirror the generator wrappers: empty stream
    return machine


def fast_set_path_events(
    fg: FastGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
    excluded: Iterable[int] = (),
) -> Iterator[Event]:
    """Event stream of undirected ``S``-``T`` path enumeration.

    Kernel counterpart of :func:`repro.paths.read_tarjan.set_path_events`;
    ``excluded`` vertices are masked out (stream-equivalent to
    enumerating in ``G - excluded``).
    """
    src_list, tgt_list = _split_sets(fg, sources, targets)
    ctx = _und_ctx(fg, src_list, tgt_list, excluded, meter)
    for event in _events(ctx, ctx.s_star, ctx.t_star):
        if event[0] == SOLUTION:
            path = event[1]
            yield (
                SOLUTION,
                Path(path.vertices[1:-1], tuple(a >> 1 for a in path.arcs[1:-1])),
            )
        else:
            yield event


def fast_enumerate_set_paths(
    fg: FastGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
    excluded: Iterable[int] = (),
) -> Iterator[Path]:
    """All ``S``-``T`` paths (kernel backend), O(n+m) delay."""
    src_list, tgt_list = _split_sets(fg, sources, targets)
    ctx = _und_ctx(fg, src_list, tgt_list, excluded, meter)
    return _events(ctx, ctx.s_star, ctx.t_star, emit=1)


def fast_st_path_events_undirected(
    fg: FastGraph,
    source: int,
    target: int,
    meter=None,
    excluded: Iterable[int] = (),
) -> Iterator[Event]:
    """Event stream of plain undirected ``s``-``t`` path enumeration.

    Kernel counterpart of running the generic enumerator on
    ``graph.to_directed()``; solutions carry *edge* ids.
    """
    if source not in fg or target not in fg:
        return
    ctx = _und_ctx(fg, [], [], excluded, meter)
    for event in _events(ctx, source, target):
        if event[0] == SOLUTION:
            path = event[1]
            yield (SOLUTION, Path(path.vertices, tuple(a >> 1 for a in path.arcs)))
        else:
            yield event


def fast_enumerate_st_paths_undirected(
    fg: FastGraph,
    source: int,
    target: int,
    meter=None,
    excluded: Iterable[int] = (),
) -> Iterator[Path]:
    """All simple ``source``-``target`` paths (kernel backend)."""
    if source not in fg or target not in fg:
        return iter(())
    ctx = _und_ctx(fg, [], [], excluded, meter)
    return _events(ctx, source, target, emit=2)


def fast_set_path_events_directed(
    fd: FastDiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
) -> Iterator[Event]:
    """Event stream of directed ``S``-``T`` path enumeration (kernel)."""
    src_list, tgt_list = _split_sets(fd, sources, targets)
    ctx = _dir_ctx(fd, src_list, tgt_list, meter)
    for event in _events(ctx, ctx.s_star, ctx.t_star):
        if event[0] == SOLUTION:
            path = event[1]
            yield (SOLUTION, Path(path.vertices[1:-1], path.arcs[1:-1]))
        else:
            yield event


def fast_enumerate_set_paths_directed(
    fd: FastDiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    meter=None,
) -> Iterator[Path]:
    """All directed ``S``-``T`` paths (kernel backend, original arc ids)."""
    src_list, tgt_list = _split_sets(fd, sources, targets)
    ctx = _dir_ctx(fd, src_list, tgt_list, meter)
    return _events(ctx, ctx.s_star, ctx.t_star, emit=3)

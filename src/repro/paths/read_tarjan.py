"""Linear-delay *s*-*t* path enumeration (Algorithm 1 of the paper).

This module implements the Read–Tarjan-style enumeration revisited in
Section 3: ``E-STP``/``F-STP`` with the decremental reachability update of
Lemma 11 and the alternating-output rule (pre-order output at even depth,
post-order at odd depth) that yields O(n+m) delay (Theorem 12).

Structure of the algorithm
--------------------------
A node of the enumeration tree holds a directed ``s``-``s'`` prefix ``P``
(shared global state) and iterates over *sibling* paths
``Q^0, Q^1, ...`` from ``s'`` to ``t`` whose first arcs are strictly
increasing in the fixed arc order ``≺_{s'}``.  For each ``Q^j`` it outputs
``P ∘ Q^j`` and recurses on every *extendible* proper prefix ``Q^j_i``
(one whose removal of the next arc still leaves a ``v_i``-``t`` path).

* ``F-STP`` (:func:`_find_path`) finds the sibling path with the smallest
  allowed first arc in O(n+m): one backward reachability pass from ``t``
  and one forward DFS.
* The extendible prefixes of a sibling path are found in O(n+m) *total*
  by :func:`_extendible_indices`, the Lemma 11 sweep: compute reachability
  once for the longest prefix, then roll ``j`` down, re-inserting vertex
  ``v_j`` and re-allowing arc ``(v_{j+1}, v_{j+2})``, propagating
  reachability only along arcs that newly become useful (each arc is
  touched O(1) times per sweep).

The recursion is run on an explicit stack, so path-shaped graphs of any
size are handled without hitting Python's recursion limit.  The enumerator
can emit ``discover``/``examine``/``solution`` events for the output-queue
machinery; plain generators are thin wrappers.

Paths are reported as :class:`Path` records (vertex tuple + arc-id tuple);
on multigraphs, parallel arcs give distinct paths, which is exactly what
the Steiner-forest enumerator needs after contraction.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.enumeration.events import DISCOVER, EXAMINE, SOLUTION, Event
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Vertex = Hashable


class Path(NamedTuple):
    """A simple path: ``vertices[i] -> vertices[i+1]`` uses ``arcs[i]``.

    For undirected enumeration the ``arcs`` entries are *edge* ids of the
    input graph.  A trivial path (``s == t``) has one vertex and no arcs.
    """

    vertices: Tuple[Vertex, ...]
    arcs: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.arcs)


class _Frame:
    """One ``E-STP`` activation on the explicit stack."""

    __slots__ = (
        "source",
        "forbidden",
        "depth",
        "node_id",
        "q_arcs",
        "q_vertices",
        "ext",
        "pos",
        "added_vertices",
        "added_arcs",
    )

    def __init__(self, source, forbidden, depth, node_id, added_vertices, added_arcs):
        self.source = source
        self.forbidden = forbidden  # arc id that may not leave `source`
        self.depth = depth
        self.node_id = node_id
        self.q_arcs: List[int] = []
        self.q_vertices: List[Vertex] = []
        self.ext: List[int] = []
        self.pos = 0
        self.added_vertices = added_vertices  # blocked when frame was pushed
        self.added_arcs = added_arcs  # arcs appended to the global prefix

    def as_state(self) -> tuple:
        """Plain-data form for :class:`PathSearch` snapshots."""
        return (
            self.source,
            self.forbidden,
            self.depth,
            self.node_id,
            list(self.q_arcs),
            list(self.q_vertices),
            list(self.ext),
            self.pos,
            tuple(self.added_vertices),
            self.added_arcs,
        )

    @classmethod
    def from_state(cls, state: tuple) -> "_Frame":
        frame = cls(state[0], state[1], state[2], state[3], state[8], state[9])
        frame.q_arcs = list(state[4])
        frame.q_vertices = list(state[5])
        frame.ext = list(state[6])
        frame.pos = state[7]
        return frame


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


def _find_path(
    digraph: DiGraph,
    source: Vertex,
    target: Vertex,
    blocked: Set[Vertex],
    forbidden: Optional[int],
    after_arc: Optional[int],
    meter=None,
) -> Optional[Tuple[List[int], List[Vertex]]]:
    """``F-STP``: the sibling path with the smallest allowed first arc.

    Finds a ``source``-``target`` path in ``D - blocked`` whose first arc
    is not ``forbidden`` and comes strictly after ``after_arc`` in the arc
    order of ``source``; among those, the path with the smallest first arc
    is returned (its continuation is an arbitrary simple path).  Returns
    ``(arc_ids, vertices)`` or ``None``.  O(n+m).
    """
    # Backward reachability of `target` avoiding blocked vertices and the
    # source itself (the source is an endpoint, never an internal vertex).
    reach: Set[Vertex] = {target}
    stack = [target]
    while stack:
        y = stack.pop()
        for aid, x in digraph.in_items(y):
            _tick(meter)
            if x in reach or x in blocked or x == source:
                continue
            reach.add(x)
            stack.append(x)

    # Scan the outgoing arcs of `source` in the fixed order.
    started = after_arc is None
    chosen: Optional[Tuple[int, Vertex]] = None
    for aid, head in digraph.out_items(source):
        _tick(meter)
        if not started:
            if aid == after_arc:
                started = True
            continue
        if aid == forbidden:
            continue
        if head in reach:
            chosen = (aid, head)
            break
    if chosen is None:
        return None
    first_aid, first_head = chosen
    if first_head == target:
        return ([first_aid], [source, target])

    # Forward DFS from the chosen head, restricted to `reach`; every vertex
    # of `reach` can reach `target` there, so the DFS must arrive.
    parent_arc = {first_head: None}
    parent = {first_head: None}
    stack = [first_head]
    while stack:
        v = stack.pop()
        if v == target:
            break
        for aid, w in digraph.out_items(v):
            _tick(meter)
            if w in parent or w not in reach:
                continue
            parent[w] = v
            parent_arc[w] = aid
            stack.append(w)
    # Reconstruct target -> first_head.
    arcs: List[int] = []
    vertices: List[Vertex] = [target]
    v = target
    while parent[v] is not None:
        arcs.append(parent_arc[v])
        v = parent[v]
        vertices.append(v)
    arcs.append(first_aid)
    vertices.append(source)
    arcs.reverse()
    vertices.reverse()
    return (arcs, vertices)


def _extendible_indices(
    digraph: DiGraph,
    blocked: Set[Vertex],
    q_arcs: Sequence[int],
    q_vertices: Sequence[Vertex],
    target: Vertex,
    meter=None,
) -> List[int]:
    """Lemma 11 sweep: all ``i`` (descending) such that ``Q_i`` is extendible.

    ``Q_i`` (1-indexed vertices ``v_1..v_i``) is extendible iff
    ``D[V \\ (V(P ∘ Q_i) \\ {v_i})] - (v_i, v_{i+1})`` still has a
    ``v_i``-``target`` path.  The whole sweep costs O(n+m): reachability is
    monotone as ``i`` decreases, so each vertex flips to reachable at most
    once and each arc is examined O(1) times.
    """
    k = len(q_vertices)
    if k <= 2:
        return []

    removed = set(blocked)
    removed.update(q_vertices[: k - 2])  # v_1 .. v_{k-2}
    excluded = q_arcs[k - 2]  # arc (v_{k-1}, v_k)

    # Full backward pass for j = k-1.
    reach: Set[Vertex] = {target}
    stack = [target]
    while stack:
        y = stack.pop()
        for aid, x in digraph.in_items(y):
            _tick(meter)
            if aid == excluded or x in reach or x in removed:
                continue
            reach.add(x)
            stack.append(x)

    ext: List[int] = []
    if q_vertices[k - 2] in reach:  # v_{k-1}
        ext.append(k - 1)

    # Roll j from k-2 down to 2, maintaining `reach` decrementally.
    for j in range(k - 2, 1, -1):
        vj = q_vertices[j - 1]
        removed.discard(vj)
        excluded = q_arcs[j - 1]  # arc (v_j, v_{j+1}) is now the cut arc

        frontier: List[Tuple[Vertex, Vertex]] = []
        # Newly available arcs out of v_j (except the cut arc).
        if vj not in reach:
            for aid, head in digraph.out_items(vj):
                _tick(meter)
                if aid == excluded or head in removed:
                    continue
                if head in reach:
                    frontier.append((vj, head))
                    break
        # The arc (v_{j+1}, v_{j+2}) that was cut at step j+1 is re-allowed.
        prev_cut = q_arcs[j]
        tail, head = digraph.arc_endpoints(prev_cut)
        _tick(meter)
        if tail not in reach and tail not in removed and head in reach:
            frontier.append((tail, head))

        while frontier:
            x, _y = frontier.pop()
            if x in reach:
                continue
            reach.add(x)
            for aid, z in digraph.in_items(x):
                _tick(meter)
                if aid == excluded or z in reach or z in removed:
                    continue
                frontier.append((z, x))

        if vj in reach:
            ext.append(j)
    return ext


class PathSearch:
    """Algorithm 1 as an explicit-state machine (the suspendable core).

    One :meth:`advance` call returns the next traversal event
    (``discover`` / ``solution`` / ``examine``), or ``None`` once the
    enumeration is exhausted.  Between two ``advance`` calls the entire
    search state is plain data — the frame stack, the shared prefix, the
    blocked set (derivable from the frames) and a queue of events already
    produced but not yet delivered — so :meth:`state` can serialize it
    and :meth:`restore` can rebuild the machine mid-enumeration with a
    byte-identical remaining stream (see :mod:`repro.core.suspend`).

    The generator wrappers below (:func:`_enumerate_events` and the
    public API) all drain one of these machines.
    """

    __slots__ = (
        "digraph",
        "source",
        "target",
        "meter",
        "blocked",
        "prefix_arcs",
        "prefix_vertices",
        "node_counter",
        "stack",
        "pending",
        "phase",
    )

    def __init__(
        self, digraph: DiGraph, source: Vertex, target: Vertex, meter=None
    ) -> None:
        self.digraph = digraph
        self.source = source
        self.target = target
        self.meter = meter
        self.blocked: Set[Vertex] = set()
        self.prefix_arcs: List[int] = []
        self.prefix_vertices: List[Vertex] = []
        self.node_counter = 0
        self.stack: List[_Frame] = []
        self.pending: deque = deque()
        self.phase = 0  # 0 = not started, 1 = running, 2 = exhausted

    # ------------------------------------------------------------------
    def advance(self) -> Optional[Event]:
        """The next traversal event, or ``None`` when exhausted."""
        while True:
            if self.pending:
                return self.pending.popleft()
            if self.phase == 2:
                return None
            if self.phase == 0:
                self._start()
            else:
                self._step()

    def _emit_solution(self, frame: _Frame) -> None:
        self.pending.append(
            (
                SOLUTION,
                Path(
                    tuple(self.prefix_vertices[:-1]) + tuple(frame.q_vertices),
                    tuple(self.prefix_arcs) + tuple(frame.q_arcs),
                ),
            )
        )

    def _start(self) -> None:
        self.phase = 1
        digraph, source, target = self.digraph, self.source, self.target
        if source not in digraph or target not in digraph:
            self.phase = 2
            return
        if source == target:
            self.pending.append((DISCOVER, 0, 0))
            self.pending.append((SOLUTION, Path((source,), ())))
            self.pending.append((EXAMINE, 0, 0))
            self.phase = 2
            return
        self.prefix_vertices = [source]
        root = _Frame(source, None, 0, self.node_counter, (), 0)
        found = _find_path(
            digraph, source, target, self.blocked, None, None, self.meter
        )
        if found is None:
            self.phase = 2
            return
        self.pending.append((DISCOVER, root.node_id, 0))
        root.q_arcs, root.q_vertices = found
        root.ext = _extendible_indices(
            digraph, self.blocked, root.q_arcs, root.q_vertices, target, self.meter
        )
        root.pos = 0
        if root.depth % 2 == 0:
            self._emit_solution(root)
        self.stack.append(root)

    def _step(self) -> None:
        """One enumeration-tree traversal step (the old loop body)."""
        if not self.stack:
            self.phase = 2
            return
        digraph, target, meter = self.digraph, self.target, self.meter
        blocked = self.blocked
        frame = self.stack[-1]
        if frame.pos < len(frame.ext):
            i = frame.ext[frame.pos]
            frame.pos += 1
            # Child: prefix grows by Q_i = (v_1 .. v_i); new source v_i;
            # the arc (v_i, v_{i+1}) becomes forbidden.
            added = tuple(frame.q_vertices[: i - 1])
            for v in added:
                blocked.add(v)
            self.prefix_arcs.extend(frame.q_arcs[: i - 1])
            self.prefix_vertices.extend(frame.q_vertices[1:i])
            self.node_counter += 1
            child = _Frame(
                frame.q_vertices[i - 1],
                frame.q_arcs[i - 1],
                frame.depth + 1,
                self.node_counter,
                added,
                i - 1,
            )
            found = _find_path(
                digraph, child.source, target, blocked, child.forbidden, None, meter
            )
            if found is None:  # pragma: no cover - excluded by extendibility
                for v in added:
                    blocked.discard(v)
                del self.prefix_arcs[len(self.prefix_arcs) - child.added_arcs :]
                del self.prefix_vertices[
                    len(self.prefix_vertices) - child.added_arcs :
                ]
                return
            self.pending.append((DISCOVER, child.node_id, child.depth))
            child.q_arcs, child.q_vertices = found
            child.ext = _extendible_indices(
                digraph, blocked, child.q_arcs, child.q_vertices, target, meter
            )
            child.pos = 0
            self.stack.append(child)
            if child.depth % 2 == 0:
                self._emit_solution(child)
            return

        # All children of the current sibling path processed.
        if frame.depth % 2 == 1:
            self._emit_solution(frame)
        found = _find_path(
            digraph,
            frame.source,
            target,
            blocked,
            frame.forbidden,
            frame.q_arcs[0],
            meter,
        )
        if found is not None:
            frame.q_arcs, frame.q_vertices = found
            frame.ext = _extendible_indices(
                digraph, blocked, frame.q_arcs, frame.q_vertices, target, meter
            )
            frame.pos = 0
            if frame.depth % 2 == 0:
                self._emit_solution(frame)
            return

        self.pending.append((EXAMINE, frame.node_id, frame.depth))
        self.stack.pop()
        for v in frame.added_vertices:
            blocked.discard(v)
        if frame.added_arcs:
            del self.prefix_arcs[len(self.prefix_arcs) - frame.added_arcs :]
            del self.prefix_vertices[len(self.prefix_vertices) - frame.added_arcs :]

    # ------------------------------------------------------------------
    # snapshot plumbing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Plain-data search state (``blocked`` is derived, not stored)."""
        return {
            "source": self.source,
            "target": self.target,
            "prefix_arcs": list(self.prefix_arcs),
            "prefix_vertices": list(self.prefix_vertices),
            "node_counter": self.node_counter,
            "stack": [frame.as_state() for frame in self.stack],
            "pending": list(self.pending),
            "phase": self.phase,
        }

    @classmethod
    def restore(
        cls, digraph: DiGraph, state: Dict[str, Any], meter=None
    ) -> "PathSearch":
        """Rebuild a machine over ``digraph`` from a :meth:`state` dict.

        ``digraph`` must be (a deterministic reconstruction of) the
        digraph the state was captured on; the enumerator-level
        snapshots guarantee that via the instance fingerprint.
        """
        machine = cls(digraph, state["source"], state["target"], meter)
        machine.prefix_arcs = list(state["prefix_arcs"])
        machine.prefix_vertices = list(state["prefix_vertices"])
        machine.node_counter = state["node_counter"]
        machine.stack = [_Frame.from_state(f) for f in state["stack"]]
        for frame in machine.stack:
            machine.blocked.update(frame.added_vertices)
        machine.pending = deque(state["pending"])
        machine.phase = state["phase"]
        return machine


def _enumerate_events(
    digraph: DiGraph, source: Vertex, target: Vertex, meter=None
) -> Iterator[Event]:
    """Run Algorithm 1 on an explicit stack, emitting traversal events."""
    machine = PathSearch(digraph, source, target, meter)
    while True:
        event = machine.advance()
        if event is None:
            return
        yield event


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def st_path_events(
    digraph: DiGraph, source: Vertex, target: Vertex, meter=None
) -> Iterator[Event]:
    """Event stream of the directed path enumeration (for the regulator)."""
    return _enumerate_events(digraph, source, target, meter)


def enumerate_st_paths(
    digraph: DiGraph, source: Vertex, target: Vertex, meter=None
) -> Iterator[Path]:
    """Enumerate all simple directed ``source``-``target`` paths.

    O(n+m) delay, O(n+m) space (Theorem 12).  Each path appears exactly
    once; on multigraphs parallel arcs yield distinct paths.

    Examples
    --------
    >>> d = DiGraph.from_arcs([("s", "a"), ("a", "t"), ("s", "t")])
    >>> sorted(p.vertices for p in enumerate_st_paths(d, "s", "t"))
    [('s', 'a', 't'), ('s', 't')]
    """
    for event in _enumerate_events(digraph, source, target, meter):
        if event[0] == SOLUTION:
            yield event[1]


def _undirected_path(path: Path) -> Path:
    """Map a path in ``G.to_directed()`` back to undirected edge ids."""
    return Path(path.vertices, tuple(a // 2 for a in path.arcs))


def enumerate_st_paths_undirected(
    graph: Graph, source: Vertex, target: Vertex, meter=None, backend: str = "object"
) -> Iterator[Path]:
    """Enumerate all simple ``source``-``target`` paths of an undirected
    graph in O(n+m) delay.

    The paper's reduction: replace each edge by two opposite arcs; each
    undirected path then corresponds to exactly one directed path.  The
    reported ``arcs`` are *edge* ids of ``graph``.  ``backend="fast"``
    runs the kernel enumerator (:mod:`repro.paths.fastpaths`): the same
    stream on integer-compact instances, the same path set otherwise
    (see :mod:`repro.core.backend`).
    """
    from repro.graphs.fastgraph import check_backend

    check_backend(backend, kind="st-path")
    if backend in ("fast", "vector"):
        from repro.graphs.fastgraph import compile_undirected
        from repro.paths.fastpaths import fast_enumerate_st_paths_undirected

        fg, index = compile_undirected(graph, vec=backend == "vector")
        if index is None:
            yield from fast_enumerate_st_paths_undirected(fg, source, target, meter)
            return
        labels = list(index)
        s = index.get(source)
        t = index.get(target)
        if s is None or t is None:
            return
        for path in fast_enumerate_st_paths_undirected(fg, s, t, meter):
            yield Path(tuple(labels[v] for v in path.vertices), path.arcs)
        return
    directed = graph.to_directed()
    for path in enumerate_st_paths(directed, source, target, meter):
        yield _undirected_path(path)


class _SuperSource:
    """Sentinel super-source used by the S-T set-path reduction.

    All instances compare equal: a suspended search state that mentions
    the super endpoints round-trips through serialization and still
    matches the sentinels of a freshly rebuilt auxiliary digraph.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<S*>"

    def __eq__(self, other) -> bool:
        return isinstance(other, _SuperSource)

    def __hash__(self) -> int:
        return hash(_SuperSource)


class _SuperTarget:
    """Sentinel super-target used by the S-T set-path reduction."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<T*>"

    def __eq__(self, other) -> bool:
        return isinstance(other, _SuperTarget)

    def __hash__(self) -> int:
        return hash(_SuperTarget)


def build_set_path_digraph(
    graph: Graph, sources: Iterable[Vertex], targets: Iterable[Vertex]
) -> Tuple[DiGraph, Vertex, Vertex]:
    """Auxiliary digraph for ``S``-``T`` path enumeration (end of §3).

    Each undirected edge ``e`` becomes arcs ``2e``/``2e+1``, except arcs
    *into* ``S`` and *out of* ``T`` which are dropped so that vertices of
    ``S ∪ T`` can only appear as path endpoints.  A super source points to
    all of ``S``; all of ``T`` point to a super target.  Returns
    ``(digraph, super_source, super_target)``; auxiliary arcs have ids
    ``≥ 2 * (max edge id + 1)``.
    """
    # Ordered dedup: the auxiliary arcs out of the super source (and the
    # scan order they induce) follow the *caller's* source/target order,
    # making the path stream a pure function of the handed-in sequences —
    # the kernel backend mirrors this, which is what keeps the two
    # backends' streams byte-identical on non-integer labels.
    source_list = list(dict.fromkeys(sources))
    target_list = list(dict.fromkeys(targets))
    source_set = set(source_list)
    target_set = set(target_list)
    if source_set & target_set:
        raise ValueError("S and T must be disjoint")
    d = DiGraph()
    for v in graph.vertices():
        d.add_vertex(v)
    max_eid = -1
    for edge in graph.edges():
        max_eid = max(max_eid, edge.eid)
        u, v = edge.u, edge.v
        if v not in source_set and u not in target_set:
            d.add_arc(u, v, aid=2 * edge.eid)
        if u not in source_set and v not in target_set:
            d.add_arc(v, u, aid=2 * edge.eid + 1)
    s_star, t_star = _SuperSource(), _SuperTarget()
    d.add_vertex(s_star)
    d.add_vertex(t_star)
    aux = 2 * (max_eid + 1)
    for v in source_list:
        d.add_arc(s_star, v, aid=aux)
        aux += 1
    for v in target_list:
        d.add_arc(v, t_star, aid=aux)
        aux += 1
    return d, s_star, t_star


def set_path_events(
    graph: Graph,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
    meter=None,
) -> Iterator[Event]:
    """Event stream of undirected ``S``-``T`` path enumeration.

    Solutions are :class:`Path` records over the *original* graph: the
    super endpoints are stripped and arc ids mapped back to edge ids.
    """
    digraph, s_star, t_star = build_set_path_digraph(graph, sources, targets)
    for event in _enumerate_events(digraph, s_star, t_star, meter):
        if event[0] == SOLUTION:
            path = event[1]
            yield (
                SOLUTION,
                Path(path.vertices[1:-1], tuple(a // 2 for a in path.arcs[1:-1])),
            )
        else:
            yield event


def enumerate_set_paths(
    graph: Graph,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
    meter=None,
    backend: str = "object",
) -> Iterator[Path]:
    """Enumerate all ``S``-``T`` paths of an undirected graph.

    An ``S``-``T`` path starts in ``S``, ends in ``T`` and has no internal
    vertex in ``S ∪ T`` — exactly the "valid path" notion the Steiner
    enumerators branch on.  O(n+m) delay.  ``backend="fast"`` runs the
    kernel enumerator.
    """
    from repro.graphs.fastgraph import check_backend

    check_backend(backend, kind="set-path")
    if backend in ("fast", "vector"):
        from repro.graphs.fastgraph import compile_undirected
        from repro.paths.fastpaths import fast_enumerate_set_paths

        fg, index = compile_undirected(graph, vec=backend == "vector")
        if index is None:
            yield from fast_enumerate_set_paths(fg, sources, targets, meter)
            return
        labels = list(index)
        src = [index[v] for v in sources if v in index]
        tgt = [index[v] for v in targets if v in index]
        for path in fast_enumerate_set_paths(fg, src, tgt, meter):
            yield Path(tuple(labels[v] for v in path.vertices), path.arcs)
        return
    for event in set_path_events(graph, sources, targets, meter):
        if event[0] == SOLUTION:
            yield event[1]


class SetPathSearch:
    """Suspendable undirected ``S``-``T`` path enumeration (object backend).

    The machine form of :func:`enumerate_set_paths`: :meth:`next_path`
    returns one path at a time, and :meth:`state` / :meth:`restore`
    freeze / thaw the search mid-enumeration.  The auxiliary digraph is
    *not* part of the state — it is rebuilt deterministically from the
    stored source/target orderings and the (fingerprint-bound) graph.
    """

    __slots__ = ("sources", "targets", "machine")

    def __init__(
        self,
        graph: Graph,
        sources: Iterable[Vertex],
        targets: Iterable[Vertex],
        meter=None,
    ) -> None:
        self.sources = tuple(sources)
        self.targets = tuple(targets)
        digraph, s_star, t_star = build_set_path_digraph(
            graph, self.sources, self.targets
        )
        self.machine = PathSearch(digraph, s_star, t_star, meter)

    def next_path(self) -> Optional[Path]:
        """The next ``S``-``T`` path, or ``None`` when exhausted."""
        while True:
            event = self.machine.advance()
            if event is None:
                return None
            if event[0] == SOLUTION:
                path = event[1]
                return Path(
                    path.vertices[1:-1], tuple(a // 2 for a in path.arcs[1:-1])
                )

    def state(self) -> Dict[str, Any]:
        """Plain-data state: source/target orderings + machine state."""
        return {
            "sources": self.sources,
            "targets": self.targets,
            "machine": self.machine.state(),
        }

    @classmethod
    def restore(
        cls, graph: Graph, state: Dict[str, Any], meter=None
    ) -> "SetPathSearch":
        """Rebuild the search over ``graph`` from a :meth:`state` dict."""
        search = cls.__new__(cls)
        search.sources = tuple(state["sources"])
        search.targets = tuple(state["targets"])
        digraph, _s_star, _t_star = build_set_path_digraph(
            graph, search.sources, search.targets
        )
        search.machine = PathSearch.restore(digraph, state["machine"], meter)
        return search


class StPathSearch:
    """Suspendable plain ``s``-``t`` path enumeration (object backend).

    Machine form of :func:`enumerate_st_paths_undirected` (the paper's
    two-arcs-per-edge reduction); reported arcs are edge ids.
    """

    __slots__ = ("source", "target", "machine")

    def __init__(self, graph: Graph, source: Vertex, target: Vertex, meter=None):
        self.source = source
        self.target = target
        self.machine = PathSearch(graph.to_directed(), source, target, meter)

    def next_path(self) -> Optional[Path]:
        """The next simple path, or ``None`` when exhausted."""
        while True:
            event = self.machine.advance()
            if event is None:
                return None
            if event[0] == SOLUTION:
                return _undirected_path(event[1])

    def state(self) -> Dict[str, Any]:
        """Plain-data state (the directed view is rebuilt on restore)."""
        return {
            "source": self.source,
            "target": self.target,
            "machine": self.machine.state(),
        }

    @classmethod
    def restore(
        cls, graph: Graph, state: Dict[str, Any], meter=None
    ) -> "StPathSearch":
        """Rebuild the search over ``graph`` from a :meth:`state` dict."""
        search = cls.__new__(cls)
        search.source = state["source"]
        search.target = state["target"]
        search.machine = PathSearch.restore(
            graph.to_directed(), state["machine"], meter
        )
        return search


def build_set_path_digraph_directed(
    digraph: DiGraph, sources: Iterable[Vertex], targets: Iterable[Vertex]
) -> Tuple[DiGraph, Vertex, Vertex]:
    """Directed variant of :func:`build_set_path_digraph`.

    Arcs into ``S`` and out of ``T`` are dropped; original arc ids are
    preserved; auxiliary arcs get fresh ids above the maximum.
    """
    # Ordered dedup, for the same reason as the undirected builder: the
    # stream must be a pure function of the caller's source/target order.
    source_list = list(dict.fromkeys(sources))
    target_list = list(dict.fromkeys(targets))
    source_set = set(source_list)
    target_set = set(target_list)
    if source_set & target_set:
        raise ValueError("S and T must be disjoint")
    d = DiGraph()
    for v in digraph.vertices():
        d.add_vertex(v)
    max_aid = -1
    for arc in digraph.arcs():
        max_aid = max(max_aid, arc.aid)
        if arc.head not in source_set and arc.tail not in target_set:
            d.add_arc(arc.tail, arc.head, aid=arc.aid)
    s_star, t_star = _SuperSource(), _SuperTarget()
    d.add_vertex(s_star)
    d.add_vertex(t_star)
    aux = max_aid + 1
    for v in source_list:
        d.add_arc(s_star, v, aid=aux)
        aux += 1
    for v in target_list:
        d.add_arc(v, t_star, aid=aux)
        aux += 1
    return d, s_star, t_star


class SetPathSearchDirected:
    """Suspendable directed ``S``-``T`` path enumeration (object backend).

    Machine form of :func:`enumerate_set_paths_directed`: paths are over
    the original digraph (super endpoints stripped, original arc ids
    preserved).  Like :class:`SetPathSearch`, the auxiliary digraph is
    rebuilt deterministically from the stored source/target orderings on
    restore, never serialized.
    """

    __slots__ = ("sources", "targets", "machine")

    def __init__(
        self,
        digraph: DiGraph,
        sources: Iterable[Vertex],
        targets: Iterable[Vertex],
        meter=None,
    ) -> None:
        self.sources = tuple(sources)
        self.targets = tuple(targets)
        aux, s_star, t_star = build_set_path_digraph_directed(
            digraph, self.sources, self.targets
        )
        self.machine = PathSearch(aux, s_star, t_star, meter)

    def next_path(self) -> Optional[Path]:
        """The next directed ``S``-``T`` path, or ``None`` when exhausted."""
        while True:
            event = self.machine.advance()
            if event is None:
                return None
            if event[0] == SOLUTION:
                path = event[1]
                return Path(path.vertices[1:-1], path.arcs[1:-1])

    def state(self) -> Dict[str, Any]:
        """Plain-data state: source/target orderings + machine state."""
        return {
            "sources": self.sources,
            "targets": self.targets,
            "machine": self.machine.state(),
        }

    @classmethod
    def restore(
        cls, digraph: DiGraph, state: Dict[str, Any], meter=None
    ) -> "SetPathSearchDirected":
        """Rebuild the search over ``digraph`` from a :meth:`state` dict."""
        search = cls.__new__(cls)
        search.sources = tuple(state["sources"])
        search.targets = tuple(state["targets"])
        aux, _s_star, _t_star = build_set_path_digraph_directed(
            digraph, search.sources, search.targets
        )
        search.machine = PathSearch.restore(aux, state["machine"], meter)
        return search


def enumerate_set_paths_directed(
    digraph: DiGraph,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
    meter=None,
    backend: str = "object",
) -> Iterator[Path]:
    """Enumerate directed ``S``-``T`` paths (original arc ids reported).

    ``backend="fast"`` runs the kernel enumerator.
    """
    from repro.graphs.fastgraph import check_backend

    check_backend(backend, kind="set-path-directed")
    if backend == "vector":
        # The vector kernel covers undirected kinds only.
        from repro.exceptions import UnsupportedBackendError

        raise UnsupportedBackendError(
            backend, ("object", "fast"), kind="set-path-directed"
        )
    if backend == "fast":
        from repro.graphs.fastgraph import compile_directed
        from repro.paths.fastpaths import fast_enumerate_set_paths_directed

        fd, index = compile_directed(digraph)
        if index is None:
            yield from fast_enumerate_set_paths_directed(fd, sources, targets, meter)
            return
        labels = list(index)
        src = [index[v] for v in sources if v in index]
        tgt = [index[v] for v in targets if v in index]
        for path in fast_enumerate_set_paths_directed(fd, src, tgt, meter):
            yield Path(tuple(labels[v] for v in path.vertices), path.arcs)
        return
    for event in set_path_events_directed(digraph, sources, targets, meter):
        if event[0] == SOLUTION:
            yield event[1]


def set_path_events_directed(
    digraph: DiGraph,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
    meter=None,
) -> Iterator[Event]:
    """Event stream of directed ``S``-``T`` path enumeration."""
    aux, s_star, t_star = build_set_path_digraph_directed(digraph, sources, targets)
    for event in _enumerate_events(aux, s_star, t_star, meter):
        if event[0] == SOLUTION:
            path = event[1]
            yield (SOLUTION, Path(path.vertices[1:-1], path.arcs[1:-1]))
        else:
            yield event

"""Fredman–Khachiyan hypergraph dualization (the paper's reference [13]).

Section 6 of the paper reduces minimal group Steiner tree enumeration to
Minimal Transversal Enumeration and notes that the best known
algorithm for the latter is Fredman and Khachiyan's quasi-polynomial
duality test.  This module implements that machinery:

* :func:`minimize_antichain` — prune a set family to its inclusion-minimal
  members;
* :func:`fk_witness` — the FK "algorithm A" recursion: decide whether two
  antichains ``F`` and ``G`` are *dual* (``G`` is exactly the family of
  minimal transversals of ``F``); on failure return a witness set ``X``
  with ``f(X) ≠ ¬g(U \\ X)``;
* :func:`are_dual` — boolean convenience wrapper;
* :func:`enumerate_minimal_transversals_fk` — incremental transversal
  enumeration driven by the duality test: each failed test yields a
  witness whose complement minimizes to a *new* minimal transversal, the
  textbook incremental-polynomial enumeration loop.

The recursion here favours clarity over the last log factor (sets are
frozensets, subfamilies are rebuilt per call); the quasi-polynomial
branching variable choice — the most frequent variable — is kept, so the
recursion-depth behaviour matches the published algorithm.  For bulk
workloads :func:`repro.hypergraph.hypergraph.enumerate_minimal_transversals`
(Berge multiplication) is usually faster in Python; the tests cross-check
the two on hundreds of random instances.
"""

from __future__ import annotations

from functools import lru_cache
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import InvalidInstanceError
from repro.graphs.fastgraph import check_backend
from repro.hypergraph.hypergraph import Hypergraph

Element = Hashable
SetFamily = Tuple[FrozenSet[Element], ...]


def _order_key(value: Element):
    return (repr(value), str(type(value)))


def minimize_antichain(family: Iterable[Iterable[Element]]) -> SetFamily:
    """Inclusion-minimal members of a set family, deduplicated.

    Order of the result is deterministic (by size, then repr).

    Examples
    --------
    >>> [sorted(s) for s in minimize_antichain([{1, 2}, {1}, {2, 3}])]
    [[1], [2, 3]]
    """
    sets = sorted({frozenset(s) for s in family}, key=lambda s: (len(s), sorted(map(repr, s))))
    kept: List[FrozenSet[Element]] = []
    for cand in sets:
        if not any(k <= cand for k in kept):
            kept.append(cand)
    return tuple(kept)


def _most_frequent_element(family_f: SetFamily, family_g: SetFamily) -> Element:
    counts: dict = {}
    for fam in (family_f, family_g):
        for s in fam:
            for x in s:
                counts[x] = counts.get(x, 0) + 1
    return max(counts, key=lambda x: (counts[x], _order_key(x)))


def fk_witness(
    family_f: Iterable[Iterable[Element]],
    family_g: Iterable[Iterable[Element]],
    universe: Iterable[Element],
) -> Optional[FrozenSet[Element]]:
    """Fredman–Khachiyan duality test with witness extraction.

    ``family_f`` and ``family_g`` are treated as antichains (they are
    minimized internally).  Returns ``None`` when ``family_g`` is exactly
    the family of minimal transversals of ``family_f`` restricted to the
    given universe; otherwise returns a *witness* ``X ⊆ universe`` on
    which duality fails, i.e. exactly one of the following is violated:

    * ``f(X)`` — some member of ``family_f`` is a subset of ``X``;
    * ``g(universe \\ X)`` — some member of ``family_g`` avoids ``X``.

    Duality demands exactly one of the two on every ``X``; the witness
    has both or neither.

    Examples
    --------
    >>> fk_witness([{1, 2}], [{1}, {2}], {1, 2}) is None
    True
    >>> sorted(fk_witness([{1, 2}], [{1}], {1, 2}))
    [1]
    """
    u = frozenset(universe)
    f = minimize_antichain(family_f)
    g = minimize_antichain(family_g)
    for fam in (f, g):
        for s in fam:
            if not s <= u:
                raise InvalidInstanceError(f"set {set(s)!r} leaves the universe")
    return _fk(f, g, u)


def _fk(
    f: SetFamily, g: SetFamily, universe: FrozenSet[Element]
) -> Optional[FrozenSet[Element]]:
    # --- constant cases -------------------------------------------------
    if not f:
        # f ≡ 0, dual g must be ≡ 1, i.e. G = {∅}.
        if g == (frozenset(),):
            return None
        if not g:
            return universe  # neither f(U) nor g(∅)
        # g has only non-empty members: X = U gives f(U)=0 and g(∅)=0.
        return universe
    if f[0] == frozenset():
        # f ≡ 1 (minimized family led by ∅), dual g must be ≡ 0.
        if not g:
            return None
        # both f(X) and g(U\X) hold for X = U \ B, any B ∈ g.
        return universe - g[0]
    if not g:
        # f ≢ 0 but g ≡ 0: some transversal is missing.  X = U \ T for a
        # greedy transversal T: f(X)=0 because X misses T∩A ≠ ∅... build
        # directly: X = U minus one element per set of f.
        hit = {min(s, key=_order_key) for s in f}
        return universe - frozenset(hit)
    if g[0] == frozenset():
        # g ≡ 1 but f ≢ 0: witness X = A for any A ∈ f (both true).
        return f[0]

    # --- pairwise intersection (soundness of g) -------------------------
    for a in f:
        for b in g:
            if not (a & b):
                # f(A)=1 and B ⊆ U\A so g(U\A)=1: both true on X = A.
                return a

    # --- small base cases ------------------------------------------------
    if len(f) == 1:
        a = f[0]
        # tr({A}) = singletons of A; g ⊆ that family iff every B ∈ g is a
        # singleton of A (intersection + minimality make |B|=1 possible
        # only); duality iff g covers *all* singletons of A.
        singles = {frozenset([x]) for x in a}
        extra = [b for b in g if b not in singles]
        if extra:
            # B intersects A but is not a singleton subset: pick x in A∩B,
            # X = U \ {x} falsifies both (since B ⊄ {x} for all B? not
            # necessarily) — handle by deferring to the generic recursion.
            pass
        else:
            missing = [x for x in sorted(a, key=_order_key) if frozenset([x]) not in set(g)]
            if not missing:
                return None
            return universe - frozenset([missing[0]])
    if len(g) == 1 and len(f) > 1:
        # Duality is symmetric: test (g, f) and complement the witness.
        y = _fk(g, f, universe)
        return None if y is None else universe - y

    # --- FK recursion on the most frequent variable ----------------------
    v = _most_frequent_element(f, g)
    rest = universe - {v}
    f1 = tuple(a - {v} for a in f if v in a)
    f0 = tuple(a for a in f if v not in a)
    g1 = tuple(b - {v} for b in g if v in b)
    g0 = tuple(b for b in g if v not in b)

    # Condition A: (f1 ∨ f0) dual to g0 on universe \ {v}.
    y = _fk(minimize_antichain(f1 + f0), minimize_antichain(g0), rest)
    if y is not None:
        return y | {v}
    # Condition B: f0 dual to (g1 ∨ g0) on universe \ {v}.
    y = _fk(minimize_antichain(f0), minimize_antichain(g1 + g0), rest)
    if y is not None:
        return y
    return None


def are_dual(
    family_f: Iterable[Iterable[Element]],
    family_g: Iterable[Iterable[Element]],
    universe: Iterable[Element],
) -> bool:
    """True iff ``family_g`` is exactly the minimal transversals of ``family_f``.

    Examples
    --------
    >>> are_dual([{1, 2}, {2, 3}], [{2}, {1, 3}], {1, 2, 3})
    True
    >>> are_dual([{1, 2}, {2, 3}], [{2}], {1, 2, 3})
    False
    """
    return fk_witness(family_f, family_g, universe) is None


def _minimize_transversal(
    edges: Sequence[FrozenSet[Element]], transversal: FrozenSet[Element]
) -> FrozenSet[Element]:
    """Greedily shrink a transversal to a minimal one (deterministic)."""
    current = set(transversal)
    for x in sorted(transversal, key=_order_key):
        trimmed = current - {x}
        if all(trimmed & e for e in edges):
            current = trimmed
    return frozenset(current)


# ----------------------------------------------------------------------
# bitmask backend
# ----------------------------------------------------------------------
# Elements are ranked by ``_order_key`` and sets become single-int
# bitmasks, so every set operation of the FK recursion (subset tests,
# intersections, the antichain sort, the greedy transversal trim) is one
# integer instruction.  Bit ``i`` carries rank ``i``, which makes
# ascending-bit iteration coincide with the object backend's
# ``_order_key``-sorted iteration — every tie-break lands on the same
# element, so the witness sequence (and hence the transversal stream)
# is byte-identical.


def _bits_ascending(mask: int) -> Iterator[int]:
    while mask:
        low = mask & (-mask)
        mask ^= low
        yield low.bit_length() - 1


@lru_cache(maxsize=1 << 16)
def _mask_bits(mask: int) -> Tuple[int, ...]:
    """Ascending bit positions of ``mask``, memoized.

    The FK recursion re-sorts the same masks thousands of times; caching
    the expansion turns the antichain sort key into a dict hit.
    """
    return tuple(_bits_ascending(mask))


def _mask_key(mask: int) -> Tuple[int, Tuple[int, ...]]:
    bits = _mask_bits(mask)
    return (len(bits), bits)


def _minimize_masks(family: Iterable[int]) -> Tuple[int, ...]:
    """Bitmask form of :func:`minimize_antichain` (same result order)."""
    sets = sorted(set(family), key=_mask_key)
    kept: List[int] = []
    for cand in sets:
        for k in kept:
            if k & cand == k:
                break
        else:
            kept.append(cand)
    return tuple(kept)


def _most_frequent_bit(f: Tuple[int, ...], g: Tuple[int, ...]) -> int:
    counts: Dict[int, int] = {}
    get = counts.get
    for fam in (f, g):
        for m in fam:
            for x in _mask_bits(m):
                counts[x] = get(x, 0) + 1
    return max(counts, key=lambda x: (counts[x], x))


def _fk_masks(f: Tuple[int, ...], g: Tuple[int, ...], universe: int) -> Optional[int]:
    """Bitmask mirror of :func:`_fk` (identical witness decisions)."""
    if not f:
        if g == (0,):
            return None
        return universe
    if f[0] == 0:
        if not g:
            return None
        return universe & ~g[0]
    if not g:
        hit = 0
        for m in f:
            hit |= m & (-m)
        return universe & ~hit
    if g[0] == 0:
        return f[0]

    for a in f:
        for b in g:
            if not (a & b):
                return a

    if len(f) == 1:
        a = f[0]
        if all(b.bit_count() == 1 for b in g):
            gset = set(g)
            for x in _bits_ascending(a):
                if (1 << x) not in gset:
                    return universe & ~(1 << x)
            return None
    if len(g) == 1 and len(f) > 1:
        y = _fk_masks(g, f, universe)
        return None if y is None else universe & ~y

    v = _most_frequent_bit(f, g)
    bit = 1 << v
    rest = universe & ~bit
    f1 = tuple(a & ~bit for a in f if a & bit)
    f0 = tuple(a for a in f if not (a & bit))
    g1 = tuple(b & ~bit for b in g if b & bit)
    g0 = tuple(b for b in g if not (b & bit))

    y = _fk_masks(_minimize_masks(f1 + f0), _minimize_masks(g0), rest)
    if y is not None:
        return y | bit
    y = _fk_masks(_minimize_masks(f0), _minimize_masks(g1 + g0), rest)
    if y is not None:
        return y
    return None


def _minimize_transversal_masks(edges: Tuple[int, ...], transversal: int) -> int:
    current = transversal
    for x in _bits_ascending(transversal):
        trimmed = current & ~(1 << x)
        if all(trimmed & e for e in edges):
            current = trimmed
    return current


def _fast_fk_transversals(hypergraph: Hypergraph) -> Iterator[FrozenSet[Element]]:
    """Bitmask backend of :func:`enumerate_minimal_transversals_fk`."""
    elements = sorted(hypergraph.universe, key=_order_key)
    rank = {e: i for i, e in enumerate(elements)}
    universe = (1 << len(elements)) - 1

    def to_mask(members) -> int:
        m = 0
        for e in members:
            m |= 1 << rank[e]
        return m

    edges = _minimize_masks(to_mask(e) for e in hypergraph.edges)
    if not edges:
        yield frozenset()
        return
    found: List[int] = []
    while True:
        witness = _fk_masks(edges, _minimize_masks(found), universe)
        if witness is None:
            return
        transversal = _minimize_transversal_masks(edges, universe & ~witness)
        if transversal in found:  # pragma: no cover - defensive guard
            raise AssertionError("FK witness produced a repeated transversal")
        found.append(transversal)
        yield frozenset(elements[i] for i in _bits_ascending(transversal))


def enumerate_minimal_transversals_fk(
    hypergraph: Hypergraph,
    backend: str = "object",
) -> Iterator[FrozenSet[Element]]:
    """Incremental minimal-transversal enumeration via FK duality tests.

    The loop maintains the family ``G`` of transversals found so far and
    asks :func:`fk_witness` whether ``G`` is complete.  A witness ``X``
    satisfies "``universe \\ X`` is a transversal containing no member of
    ``G``", so minimizing it yields a provably new minimal transversal.
    This is the classic reduction from dualization to enumeration; the
    delay between solutions is one duality test (quasi-polynomial), i.e.
    the enumeration is incremental quasi-polynomial overall — exactly the
    state of the art the paper's Section 6 refers to.

    Examples
    --------
    >>> h = Hypergraph([1, 2, 3], [{1, 2}, {2, 3}])
    >>> [sorted(t) for t in enumerate_minimal_transversals_fk(h)]
    [[2], [1, 3]]
    """
    check_backend(backend, kind="fk-dualization", supported=("object", "fast"))
    if backend == "fast":
        yield from _fast_fk_transversals(hypergraph)
        return
    universe = frozenset(hypergraph.universe)
    edges = minimize_antichain(hypergraph.edges)
    if not edges:
        yield frozenset()
        return
    found: List[FrozenSet[Element]] = []
    while True:
        witness = _fk(edges, minimize_antichain(found), universe)
        if witness is None:
            return
        transversal = _minimize_transversal(edges, universe - witness)
        if transversal in found:  # pragma: no cover - defensive guard
            raise AssertionError("FK witness produced a repeated transversal")
        found.append(transversal)
        yield transversal


def count_minimal_transversals_fk(
    hypergraph: Hypergraph, backend: str = "object"
) -> int:
    """Number of minimal transversals, via the FK enumeration loop."""
    return sum(
        1 for _ in enumerate_minimal_transversals_fk(hypergraph, backend=backend)
    )

"""Interop: convert between :mod:`repro` graphs, networkx, and DOT text.

Downstream users usually arrive with a :mod:`networkx` graph and want to
leave with something they can visualize.  This module is that bridge:

* :func:`to_networkx` / :func:`from_networkx` — lossless conversion for
  undirected multigraphs (edge ids are carried as edge keys);
* :func:`to_networkx_digraph` / :func:`from_networkx_digraph` — the
  directed counterparts;
* :func:`to_dot` / :func:`solution_to_dot` — Graphviz DOT text, the
  latter highlighting a solution edge set and the terminals (how the
  examples render enumerated Steiner trees).

networkx is imported lazily so the core library keeps zero hard
dependencies.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import InvalidInstanceError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Vertex = Hashable


def to_networkx(graph: Graph):
    """Convert to ``networkx.MultiGraph``; edge ids become edge keys.

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("a", "b")])
    >>> nxg = to_networkx(g)
    >>> nxg.number_of_edges("a", "b")
    2
    """
    import networkx as nx

    out = nx.MultiGraph()
    out.add_nodes_from(graph.vertices())
    for edge in graph.edges():
        out.add_edge(edge.u, edge.v, key=edge.eid)
    return out


def from_networkx(nx_graph) -> Tuple[Graph, dict]:
    """Convert any undirected networkx graph.

    Returns ``(graph, key_of)`` where ``key_of[eid]`` maps each new edge
    id back to the networkx edge tuple it came from (``(u, v)`` for
    plain graphs, ``(u, v, key)`` for multigraphs).  Self-loops are
    rejected (the library's graphs never carry them).
    """
    if nx_graph.is_directed():
        raise InvalidInstanceError("use from_networkx_digraph for directed graphs")
    graph = Graph()
    key_of: dict = {}
    for v in nx_graph.nodes:
        graph.add_vertex(v)
    if nx_graph.is_multigraph():
        edges = ((u, v, (u, v, k)) for u, v, k in nx_graph.edges(keys=True))
    else:
        edges = ((u, v, (u, v)) for u, v in nx_graph.edges())
    for u, v, original in edges:
        if u == v:
            raise InvalidInstanceError(f"self-loop at {u!r} is not representable")
        eid = graph.add_edge(u, v)
        key_of[eid] = original
    return graph, key_of


def to_networkx_digraph(digraph: DiGraph):
    """Convert to ``networkx.MultiDiGraph``; arc ids become edge keys."""
    import networkx as nx

    out = nx.MultiDiGraph()
    out.add_nodes_from(digraph.vertices())
    for arc in digraph.arcs():
        out.add_edge(arc.tail, arc.head, key=arc.aid)
    return out


def from_networkx_digraph(nx_graph) -> Tuple[DiGraph, dict]:
    """Convert any directed networkx graph (see :func:`from_networkx`)."""
    if not nx_graph.is_directed():
        raise InvalidInstanceError("use from_networkx for undirected graphs")
    digraph = DiGraph()
    key_of: dict = {}
    for v in nx_graph.nodes:
        digraph.add_vertex(v)
    if nx_graph.is_multigraph():
        edges = ((u, v, (u, v, k)) for u, v, k in nx_graph.edges(keys=True))
    else:
        edges = ((u, v, (u, v)) for u, v in nx_graph.edges())
    for u, v, original in edges:
        if u == v:
            raise InvalidInstanceError(f"self-loop at {u!r} is not representable")
        aid = digraph.add_arc(u, v)
        key_of[aid] = original
    return digraph, key_of


def _dot_id(value) -> str:
    text = str(value).replace('"', r"\"")
    return f'"{text}"'


def to_dot(
    graph: Graph,
    name: str = "G",
    weights: Optional[Mapping[int, float]] = None,
) -> str:
    """Plain Graphviz DOT text for an undirected graph.

    Examples
    --------
    >>> print(to_dot(Graph.from_edges([("a", "b")])))
    graph G {
      "a" -- "b";
    }
    """
    lines = [f"graph {name} {{"]
    used: Set[Vertex] = set()
    for edge in sorted(graph.edges(), key=lambda e: e.eid):
        used.update(edge.endpoints())
        label = "" if weights is None else f' [label="{weights.get(edge.eid, 1):g}"]'
        lines.append(f"  {_dot_id(edge.u)} -- {_dot_id(edge.v)}{label};")
    for v in graph.vertices():
        if v not in used:
            lines.append(f"  {_dot_id(v)};")
    lines.append("}")
    return "\n".join(lines)


def solution_to_dot(
    graph: Graph,
    solution: Iterable[int],
    terminals: Sequence[Vertex] = (),
    name: str = "steiner",
) -> str:
    """DOT text with the solution edges bold/red and terminals boxed.

    The non-solution edges are drawn dashed and grey so a rendered
    picture reads like the figures in Steiner-tree papers.
    """
    chosen = set(solution)
    for eid in chosen:
        if not graph.has_edge_id(eid):
            raise InvalidInstanceError(f"solution edge {eid} is not in the graph")
    terminal_set = set(terminals)
    lines = [f"graph {name} {{"]
    for w in sorted(terminal_set, key=repr):
        lines.append(f"  {_dot_id(w)} [shape=box, style=bold];")
    for edge in sorted(graph.edges(), key=lambda e: e.eid):
        if edge.eid in chosen:
            style = ' [color=red, penwidth=2]'
        else:
            style = ' [color=grey, style=dashed]'
        lines.append(f"  {_dot_id(edge.u)} -- {_dot_id(edge.v)}{style};")
    lines.append("}")
    return "\n".join(lines)

"""Undirected multigraph with stable edge identities.

The enumeration algorithms in this package need three properties that rule
out a plain ``dict[vertex, set[vertex]]`` adjacency structure:

* **Multiedges.**  Contracting the edges of a partial Steiner forest
  (``G/E(F)``, Section 5 of the paper) produces parallel edges, and those
  parallel edges are semantically distinct: each corresponds to a different
  original edge, and a pair of parallel edges is exactly what stops an edge
  from being a bridge (Lemma 24).
* **Stable edge ids.**  The one-to-one correspondence between
  ``E(G) \\ E(F)`` and ``E(G/E(F))`` used throughout Section 5 is realised
  by carrying the original integer edge id through contraction, so a path
  found in the contracted graph can be mapped back to original edges in
  O(length) time.
* **O(1) edge deletion / restoration by id.**  The path enumerator of
  Section 3 repeatedly removes a forbidden edge and a prefix of outgoing
  edges and later restores them.

:class:`Graph` therefore stores, for each vertex, a dict from incident edge
id to the opposite endpoint.  All operations the algorithms rely on are
O(1) or linear in the size of their output.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, NamedTuple, Optional, Tuple

from repro.exceptions import EdgeNotFound, SelfLoopError, VertexNotFound

Vertex = Hashable


class Edge(NamedTuple):
    """An undirected edge with a stable integer identity.

    The pair ``(u, v)`` is stored in insertion order; callers must treat it
    as unordered.  Two ``Edge`` records with different ``eid`` are different
    edges even if their endpoints coincide (multiedges).
    """

    eid: int
    u: Vertex
    v: Vertex

    def other(self, vertex: Vertex) -> Vertex:
        """Return the endpoint of this edge that is not ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex!r} is not an endpoint of {self}")

    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """Return the endpoint pair ``(u, v)``."""
        return (self.u, self.v)


class Graph:
    """A mutable undirected multigraph without self-loops.

    Vertices are arbitrary hashable objects.  Edges are identified by
    integer ids which remain valid across unrelated mutations and across
    :meth:`copy` / :meth:`subgraph` / contraction, which makes it possible
    to speak about "the same edge" in derived graphs.

    Examples
    --------
    >>> g = Graph()
    >>> e1 = g.add_edge("a", "b")
    >>> e2 = g.add_edge("b", "c")
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    __slots__ = ("_adj", "_edges", "_next_eid")

    def __init__(self) -> None:
        # vertex -> {eid -> opposite endpoint}
        self._adj: Dict[Vertex, Dict[int, Vertex]] = {}
        # eid -> (u, v)
        self._edges: Dict[int, Tuple[Vertex, Vertex]] = {}
        self._next_eid = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Vertex, Vertex]], vertices: Iterable[Vertex] = ()
    ) -> "Graph":
        """Build a graph from an iterable of endpoint pairs.

        ``vertices`` may list additional isolated vertices.  Edge ids are
        assigned in iteration order starting from 0.
        """
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def copy(self) -> "Graph":
        """Return an independent copy sharing edge ids with ``self``."""
        g = Graph()
        g._adj = {v: dict(inc) for v, inc in self._adj.items()}
        g._edges = dict(self._edges)
        g._next_eid = self._next_eid
        return g

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, the paper's ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (counting multiplicities), the paper's ``m``."""
        return len(self._edges)

    @property
    def size(self) -> int:
        """``n + m``, the unit in which the paper states its delay bounds."""
        return len(self._adj) + len(self._edges)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Graph n={self.num_vertices} m={self.num_edges}>"

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` records."""
        for eid, (u, v) in self._edges.items():
            yield Edge(eid, u, v)

    def edge_ids(self) -> Iterator[int]:
        """Iterate over all edge ids."""
        return iter(self._edges)

    def has_edge_id(self, eid: int) -> bool:
        """Return True if an edge with id ``eid`` exists."""
        return eid in self._edges

    def edge(self, eid: int) -> Edge:
        """Return the :class:`Edge` record for ``eid``."""
        try:
            u, v = self._edges[eid]
        except KeyError:
            raise EdgeNotFound(eid) from None
        return Edge(eid, u, v)

    def endpoints(self, eid: int) -> Tuple[Vertex, Vertex]:
        """Return the endpoints of edge ``eid``."""
        try:
            return self._edges[eid]
        except KeyError:
            raise EdgeNotFound(eid) from None

    def other_endpoint(self, eid: int, vertex: Vertex) -> Vertex:
        """Return the endpoint of ``eid`` opposite to ``vertex``."""
        u, v = self.endpoints(eid)
        if vertex == u:
            return v
        if vertex == v:
            return u
        raise ValueError(f"vertex {vertex!r} is not an endpoint of edge {eid}")

    def degree(self, vertex: Vertex) -> int:
        """Number of edges incident to ``vertex`` (multiedges counted)."""
        return len(self._incident(vertex))

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over neighbours of ``vertex``.

        A neighbour joined by ``k`` parallel edges is yielded ``k`` times;
        use ``set(g.neighbors(v))`` for the paper's ``N_G(v)``.
        """
        return iter(self._incident(vertex).values())

    def neighbor_set(self, vertex: Vertex) -> set:
        """The paper's ``N_G(v)``: distinct neighbours of ``vertex``."""
        return set(self._incident(vertex).values())

    def incident(self, vertex: Vertex) -> Iterator[Edge]:
        """Iterate over edges incident to ``vertex`` (the paper's Γ(v))."""
        for eid, other in self._incident(vertex).items():
            yield Edge(eid, vertex, other)

    def incident_ids(self, vertex: Vertex) -> Iterator[int]:
        """Iterate over ids of edges incident to ``vertex``."""
        return iter(self._incident(vertex))

    def has_edge_between(self, u: Vertex, v: Vertex) -> bool:
        """Return True if at least one edge joins ``u`` and ``v``."""
        inc_u = self._adj.get(u)
        if inc_u is None:
            return False
        if len(inc_u) <= len(self._adj.get(v, ())):
            return v in inc_u.values()
        return u in self._adj[v].values()

    def edges_between(self, u: Vertex, v: Vertex) -> Iterator[int]:
        """Iterate over ids of all (parallel) edges joining ``u`` and ``v``."""
        inc_u = self._adj.get(u, {})
        for eid, other in inc_u.items():
            if other == v:
                yield eid

    def incident_items(self, vertex: Vertex):
        """``(eid, other_endpoint)`` pairs of incident edges.

        Allocation-free accessor for hot loops.
        """
        return self._incident(vertex).items()

    def _incident(self, vertex: Vertex) -> Dict[int, Vertex]:
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFound(vertex) from None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add ``vertex`` if not present; return it."""
        if vertex not in self._adj:
            self._adj[vertex] = {}
        return vertex

    def add_edge(self, u: Vertex, v: Vertex, eid: Optional[int] = None) -> int:
        """Add an edge between ``u`` and ``v`` and return its id.

        Missing endpoints are created.  Parallel edges are allowed;
        self-loops are rejected.  An explicit ``eid`` may be supplied (used
        when deriving graphs that share edge identity with a parent graph);
        it must be unused.
        """
        if u == v:
            raise SelfLoopError(u)
        if eid is None:
            eid = self._next_eid
            self._next_eid += 1
        else:
            if eid in self._edges:
                raise ValueError(f"edge id {eid} already in use")
            if eid >= self._next_eid:
                self._next_eid = eid + 1
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u][eid] = v
        self._adj[v][eid] = u
        self._edges[eid] = (u, v)
        return eid

    def remove_edge(self, eid: int) -> Tuple[Vertex, Vertex]:
        """Remove edge ``eid``; return its endpoints."""
        try:
            u, v = self._edges.pop(eid)
        except KeyError:
            raise EdgeNotFound(eid) from None
        del self._adj[u][eid]
        del self._adj[v][eid]
        return (u, v)

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges."""
        incident = self._incident(vertex)
        for eid in list(incident):
            self.remove_edge(eid)
        del self._adj[vertex]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph ``G[U]`` (edge ids preserved)."""
        keep = set(vertices)
        g = Graph()
        for v in keep:
            if v not in self._adj:
                raise VertexNotFound(v)
            g.add_vertex(v)
        for eid, (u, v) in self._edges.items():
            if u in keep and v in keep:
                g.add_edge(u, v, eid=eid)
        return g

    def edge_subgraph(self, eids: Iterable[int]) -> "Graph":
        """Return the subgraph ``G[F]`` spanned by the given edges.

        Matches the paper's notation ``G[F] = (V(F), F)``: only endpoints of
        the selected edges are included.
        """
        g = Graph()
        for eid in eids:
            u, v = self.endpoints(eid)
            g.add_edge(u, v, eid=eid)
        return g

    def without_vertices(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return ``G[V \\ X]`` for the given vertex set ``X``."""
        drop = set(vertices)
        return self.subgraph(v for v in self._adj if v not in drop)

    def to_directed(self) -> "Any":
        """Return the directed version: each undirected edge becomes two arcs.

        Arc ids are derived from edge ids: edge ``e`` becomes arcs
        ``2e`` (u→v) and ``2e+1`` (v→u), so ``arc // 2`` recovers the
        original undirected edge.  This is the reduction the paper uses to
        run the directed path enumerator on undirected graphs.
        """
        from repro.graphs.digraph import DiGraph

        d = DiGraph()
        for v in self._adj:
            d.add_vertex(v)
        for eid, (u, v) in self._edges.items():
            d.add_arc(u, v, aid=2 * eid)
            d.add_arc(v, u, aid=2 * eid + 1)
        return d

    # ------------------------------------------------------------------
    # conversion / equality helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def edge_endpoint_multiset(self) -> Dict[Tuple[Vertex, Vertex], int]:
        """Multiset of normalized endpoint pairs (for structural equality)."""
        counts: Dict[Tuple[Vertex, Vertex], int] = {}
        for u, v in self._edges.values():
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            counts[key] = counts.get(key, 0) + 1
        return counts

"""Wire protocol helpers for the streaming service.

The service speaks **HTTP/1.1 + NDJSON**: a request is a normal HTTP
``POST`` whose body is one JSON object, and a streaming response is
``Transfer-Encoding: chunked`` with ``Content-Type:
application/x-ndjson`` — one JSON event object per line.  Event shapes:

``{"event": "accepted", "id": ..., "kind": ..., "offset": N,
"source": "live" | "replay" | "partial-replay"}``
    First line of every stream; ``offset`` is the resume position
    (0 for fresh streams) and ``source`` says how the stream is fed.

``{"event": "solution", "seq": N, "line": "..."}``
    One enumerated solution.  ``seq`` is the absolute position in the
    job's solution stream (resumed streams continue their numbering),
    ``line`` the CLI's canonical text rendering.

``{"event": "end", "count": N, "total": N, "exhausted": bool,
"stop_reason": ..., "cached": bool}``
    Terminal event of a successful stream.  ``count`` is the number of
    solutions this response delivered, ``total`` the stream position
    reached, ``cached`` whether the whole response was replayed from
    the store/cache without enumerating.

``{"event": "error", "error": "..."}``
    Terminal event of a failed stream (also sent as the body of
    non-200 responses).

Plain-JSON endpoints (``GET /healthz``, ``GET /stats``) return a single
object with ``Content-Length``.  This module contains the framing
helpers shared by the asyncio server; the blocking client
(:mod:`repro.serve.client`) uses :mod:`http.client`, which decodes
chunked NDJSON transparently.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple

#: Reason phrases for the status codes the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """Malformed HTTP request (surfaces as a 400 response)."""


def clamp_connection_buffers(
    writer, sndbuf: Optional[int] = None, rcvbuf: Optional[int] = None
) -> None:
    """Bound one connection's kernel/transport buffering (fairness knob).

    Loopback TCP autotunes socket buffers into the megabytes, which lets
    a whole solution stream sit in kernel memory while the consumer sips
    from it — ``drain()`` never blocks, so per-stream backpressure (the
    worker credit protocol) never engages and a slow client holds megabytes
    of buffered state instead of parking its worker.  Clamping ``SO_SNDBUF``
    (plus the asyncio transport's user-space write buffer) and/or
    ``SO_RCVBUF`` restores the bound: buffering per connection is O(limit)
    and ``drain()`` tracks the consumer's real pace.

    No-op directions are skipped; a transport without a raw socket is
    left alone.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            if sndbuf is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
            if rcvbuf is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        except OSError:  # pragma: no cover - exotic transports
            pass
    if sndbuf is not None:
        transport = getattr(writer, "transport", None)
        if transport is not None:
            try:
                transport.set_write_buffer_limits(high=sndbuf)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass


def encode_event(event: Dict[str, Any]) -> bytes:
    """One NDJSON event line, HTTP-chunk framed."""
    data = (json.dumps(event, sort_keys=True) + "\n").encode()
    return b"%x\r\n%s\r\n" % (len(data), data)


#: The zero-length chunk that terminates a chunked response body.
FINAL_CHUNK = b"0\r\n\r\n"


def response_head(
    status: int,
    content_type: str,
    length: Optional[int] = None,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """HTTP/1.1 response head; chunked when ``length`` is ``None``."""
    head = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    if length is None:
        head.append("Transfer-Encoding: chunked")
    else:
        head.append(f"Content-Length: {length}")
    return ("\r\n".join(head) + "\r\n\r\n").encode()


def json_response(
    status: int,
    payload: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A complete plain-JSON HTTP response (optionally extra headers)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return response_head(status, "application/json", len(body), headers) + body


def split_target(target: str) -> Tuple[str, Dict[str, str]]:
    """Split a request target into ``(path, query-params)``.

    Query values are percent-decoded (``+`` means space); a repeated
    parameter keeps its last value.  The front-door endpoints
    (``GET /answer?dataset=...&q=...``) route through this; the legacy
    routes see their unchanged path.
    """
    from urllib.parse import parse_qsl, unquote

    path, _sep, raw_query = target.partition("?")
    params: Dict[str, str] = {}
    for key, value in parse_qsl(raw_query, keep_blank_values=True):
        params[key] = value
    return unquote(path), params


async def read_request(reader) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``.

    Returns ``None`` at EOF (client closed without sending a request);
    raises :class:`ProtocolError` on malformed input.
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").split()
    except ValueError as exc:
        raise ProtocolError(f"malformed request line {line!r}") from exc
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError("connection closed inside the header block")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        # Request bodies are read by Content-Length only; silently
        # treating a chunked body as empty would smuggle its frames
        # into the connection as a phantom second request.
        raise ProtocolError(
            "chunked request bodies are not supported; send Content-Length"
        )
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise ProtocolError("malformed Content-Length") from exc
    if length < 0 or length > 64 * 1024 * 1024:
        raise ProtocolError(f"unreasonable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body

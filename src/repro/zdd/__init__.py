"""ZDD-compiled Steiner tree families (the Sasaki [30] comparator).

:mod:`repro.zdd.zdd` is the generic reduced-ZDD substrate;
:mod:`repro.zdd.steiner` compiles a graph plus terminal set into the
ZDD of its (minimal) Steiner trees by a frontier-based sweep, giving
exact counting and post-compilation enumeration to compare against the
paper's direct linear-delay enumerators.
"""

from repro.zdd.steiner import (
    bfs_edge_order,
    build_internal_steiner_tree_zdd,
    build_steiner_tree_zdd,
    build_terminal_steiner_tree_zdd,
    count_steiner_trees_zdd,
    enumerate_cost_constrained_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_zdd,
    spanning_tree_zdd,
)
from repro.zdd.zdd import BOTTOM, TOP, ZDD, ZDDBuilder, family_zdd

__all__ = [
    "bfs_edge_order",
    "BOTTOM",
    "build_internal_steiner_tree_zdd",
    "build_steiner_tree_zdd",
    "build_terminal_steiner_tree_zdd",
    "count_steiner_trees_zdd",
    "enumerate_cost_constrained_minimal_steiner_trees",
    "enumerate_minimal_steiner_trees_zdd",
    "family_zdd",
    "spanning_tree_zdd",
    "TOP",
    "ZDD",
    "ZDDBuilder",
]

"""T1-tst — minimal terminal Steiner tree enumeration (Table 1 row
"Terminal Steiner Tree").

Claims exercised: amortized O(n+m) per solution (Theorem 31) vs the
unimproved O(nm)-delay variant (Theorem 29) standing in for the prior
work's O(m·|T_i|) shape.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import fit_linearity, measure_enumeration, print_table
from repro.bench.workloads import terminal_steiner_size_sweep
from repro.core.terminal_steiner import (
    enumerate_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees_linear_delay,
    enumerate_minimal_terminal_steiner_trees_simple,
)

from benchutil import make_drainer

LIMIT = 250


@pytest.mark.parametrize("inst", terminal_steiner_size_sweep(), ids=lambda i: i.name)
def test_improved_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_terminal_steiner_trees(inst.graph, inst.terminals),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize(
    "inst", terminal_steiner_size_sweep()[:3], ids=lambda i: i.name
)
def test_simple_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_terminal_steiner_trees_simple(
                inst.graph, inst.terminals
            ),
            LIMIT,
        )
    )
    assert count > 0


@pytest.mark.parametrize(
    "inst", terminal_steiner_size_sweep()[:3], ids=lambda i: i.name
)
def test_linear_delay_enumeration(benchmark, inst):
    count = benchmark(
        make_drainer(
            lambda: enumerate_minimal_terminal_steiner_trees_linear_delay(
                inst.graph, inst.terminals
            ),
            LIMIT,
        )
    )
    assert count > 0


def test_size_scaling_table(benchmark):
    """Amortized ops/solution scale linearly with n+m."""
    rows, sizes, costs = [], [], []
    for inst in terminal_steiner_size_sweep():
        m = measure_enumeration(
            inst.name,
            inst.size,
            lambda meter, i=inst: enumerate_minimal_terminal_steiner_trees(
                i.graph, i.terminals, meter=meter
            ),
            limit=LIMIT,
        )
        sizes.append(m.size)
        costs.append(m.amortized_ops)
        rows.append(
            (m.label, m.size, m.solutions, int(m.amortized_ops), m.normalized_amortized)
        )
    exponent, r2 = fit_linearity(sizes, costs)
    print()
    print_table(
        "T1-tst: amortized ops/solution vs n+m (this work)",
        ("instance", "n+m", "solutions", "ops/solution", "normalized"),
        rows,
    )
    print(f"log-log exponent: {exponent:.2f} (r2={r2:.3f}); paper predicts 1.0")
    assert 0.6 <= exponent <= 1.5
    benchmark(lambda: None)

"""ASCII rendering of enumeration trees (the paper's Figure 1).

Figure 1 of the paper illustrates the *improved enumeration tree*: the
path ``P`` walked during the output-queue preprocessing phase, the
prefix subtree ``T_pre`` discovered while collecting the first ``n``
solutions, and the later subtrees ``T_1, …, T_ℓ``.  This module rebuilds
that picture from the event streams the enumerators emit
(:mod:`repro.enumeration.events`):

* :class:`EnumerationTree` — materializes the tree from a stream;
* :func:`render_tree` — box-drawing ASCII rendering with optional
  truncation and per-node annotations;
* :func:`render_figure1` — the Figure 1 view: nodes visited while the
  first ``n`` solutions were collected are tagged ``pre``, the rest are
  grouped into their maximal post-preprocessing subtrees.

The renderer is exercised by ``benchmarks/bench_enumeration_tree.py``
and ``examples/enumeration_tree_gallery.py`` and keeps EXPERIMENTS.md's
Figure 1 section honest: the shape statements (every internal node of
the improved tree has ≥ 2 children; ``T_pre`` has O(n) nodes) are read
off the same structure that gets drawn.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.enumeration.events import DISCOVER, EXAMINE, SOLUTION, Event


class TreeNode:
    """One node of a materialized enumeration tree."""

    __slots__ = ("node_id", "depth", "order", "children", "solutions")

    def __init__(self, node_id: Any, depth: int, order: int) -> None:
        self.node_id = node_id
        self.depth = depth
        #: discovery index (0 = root): the DFS visiting order
        self.order = order
        self.children: List["TreeNode"] = []
        #: number of solutions output at this node
        self.solutions = 0

    @property
    def is_leaf(self) -> bool:
        """True if the node has no children in the enumeration tree."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TreeNode #{self.order} depth={self.depth}>"


class EnumerationTree:
    """An enumeration tree materialized from a DISCOVER/EXAMINE stream.

    Solutions encountered while a node is on top of the DFS stack are
    attributed to that node, matching the paper's "a solution is output
    at each leaf" convention (internal nodes score zero on the improved
    trees).

    Examples
    --------
    >>> from repro.core.steiner_tree import steiner_tree_events
    >>> from repro.graphs.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> tree = EnumerationTree.from_events(steiner_tree_events(g, [0, 2]))
    >>> tree.size, tree.num_leaves
    (3, 2)
    """

    def __init__(self, root: TreeNode, total_solutions: int) -> None:
        self.root = root
        self.total_solutions = total_solutions

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EnumerationTree":
        """Materialize the tree; solution payloads are discarded."""
        root: Optional[TreeNode] = None
        stack: List[TreeNode] = []
        order = 0
        total = 0
        for event in events:
            kind = event[0]
            if kind == DISCOVER:
                _, node_id, depth = event
                node = TreeNode(node_id, depth, order)
                order += 1
                if stack:
                    stack[-1].children.append(node)
                elif root is None:
                    root = node
                else:  # pragma: no cover - malformed stream guard
                    raise ValueError("event stream discovered a second root")
                stack.append(node)
            elif kind == EXAMINE:
                if stack:
                    stack.pop()
            elif kind == SOLUTION:
                total += 1
                if stack:
                    stack[-1].solutions += 1
        if root is None:
            raise ValueError("event stream contained no DISCOVER event")
        return cls(root, total)

    # ------------------------------------------------------------------
    # statistics (the Figure 1 / Lemma 18 claims)
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[TreeNode]:
        """Pre-order iteration over all nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.nodes())

    @property
    def num_leaves(self) -> int:
        """Leaf count (the paper: = number of solutions on improved trees)."""
        return sum(1 for node in self.nodes() if node.is_leaf)

    @property
    def num_internal(self) -> int:
        """Internal-node count (paper: ≤ leaves when every internal ≥ 2 kids)."""
        return sum(1 for node in self.nodes() if not node.is_leaf)

    @property
    def height(self) -> int:
        """Maximum depth over nodes."""
        return max(node.depth for node in self.nodes())

    @property
    def min_internal_children(self) -> int:
        """Minimum child count over internal nodes (Lemma 16 et al.: ≥ 2)."""
        counts = [len(n.children) for n in self.nodes() if not n.is_leaf]
        return min(counts) if counts else 0


def render_tree(
    tree: EnumerationTree,
    max_nodes: int = 200,
    annotate=None,
) -> str:
    """Box-drawing ASCII rendering of an enumeration tree.

    ``annotate(node) -> str`` adds a per-node tag.  Output is truncated
    after ``max_nodes`` lines with an ellipsis marker.

    Examples
    --------
    >>> from repro.core.steiner_tree import steiner_tree_events
    >>> from repro.graphs.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> t = EnumerationTree.from_events(steiner_tree_events(g, [0, 2]))
    >>> print(render_tree(t))  # doctest: +NORMALIZE_WHITESPACE
    #0
    ├── #1 ●
    └── #2 ●
    """
    lines: List[str] = []

    def label(node: TreeNode) -> str:
        text = f"#{node.order}"
        if node.solutions:
            text += " ●" * min(node.solutions, 3)
        if annotate is not None:
            tag = annotate(node)
            if tag:
                text += f" [{tag}]"
        return text

    def walk(node: TreeNode, prefix: str, connector: str) -> None:
        if len(lines) >= max_nodes:
            return
        lines.append(prefix + connector + label(node))
        child_prefix = prefix
        if connector:
            child_prefix += "    " if connector.startswith("└") else "│   "
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            walk(child, child_prefix, "└── " if last else "├── ")

    walk(tree.root, "", "")
    if tree.size > max_nodes:
        lines.append(f"… ({tree.size - max_nodes} more nodes)")
    return "\n".join(lines)


def preprocessing_cut(tree: EnumerationTree, n: int) -> int:
    """Discovery index of the node where the ``n``-th solution appears.

    This is the paper's node ``S``: the output-queue preprocessing phase
    ends there.  Returns the last discovery index if fewer than ``n``
    solutions exist.
    """
    remaining = n
    cut = 0
    for node in sorted(tree.nodes(), key=lambda x: x.order):
        cut = node.order
        remaining -= node.solutions
        if remaining <= 0:
            break
    return cut


def render_figure1(tree: EnumerationTree, n: Optional[int] = None) -> str:
    """The Figure 1 view of an improved enumeration tree.

    Nodes discovered during the preprocessing phase (up to the node where
    the ``n``-th solution is found; ``n`` defaults to the paper's choice,
    the instance size proxy ``num_leaves``//2+1) are tagged ``pre``; the
    maximal subtrees discovered afterwards are tagged ``T1, T2, …`` in
    discovery order, matching the paper's figure.
    """
    if n is None:
        n = max(1, tree.num_leaves // 2)
    cut = preprocessing_cut(tree, n)

    subtree_of: Dict[int, str] = {}
    counter = 0

    def assign(node: TreeNode, current: Optional[str]) -> None:
        nonlocal counter
        if node.order <= cut:
            tag = None  # preprocessing region
        elif current is not None:
            tag = current
        else:
            counter += 1
            tag = f"T{counter}"
        if tag is not None:
            subtree_of[node.order] = tag
        for child in node.children:
            assign(child, tag)

    assign(tree.root, None)

    def annotate(node: TreeNode) -> str:
        return subtree_of.get(node.order, "pre")

    header = (
        f"improved enumeration tree: {tree.size} nodes, "
        f"{tree.num_leaves} leaves, {tree.num_internal} internal, "
        f"preprocessing cut at #{cut} (first {n} solutions), "
        f"{counter} post-preprocessing subtrees"
    )
    return header + "\n" + render_tree(tree, annotate=annotate)

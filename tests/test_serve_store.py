"""The persistent result store: durability, replay fidelity, cursors.

The contracts under test are the ones the serving layer leans on:

* entries survive process "restarts" (a fresh :class:`ResultStore` on
  the same directory serves what the previous one stored);
* replayed streams are byte-identical to fresh enumeration — including
  for relabeled isomorphic instances, translated to the caller's
  labels, on **both** backends (hypothesis-driven);
* cursor checkpoints persist: kill a stream mid-flight, reopen the
  store, resume — the tail is exactly what an uninterrupted run would
  have produced;
* unusable results (deadline/budget-stopped) are never persisted.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.cache import InstanceCache
from repro.engine.cursor import EnumerationCursor
from repro.engine.jobs import EnumerationJob, run_job
from repro.serve.store import ResultStore, TieredCache


def diamond_job(**opts) -> EnumerationJob:
    return EnumerationJob.steiner_tree(
        [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("b", "d")],
        ["a", "d"],
        **opts,
    )


def grid_job(n: int = 4, **opts) -> EnumerationJob:
    edges = []
    for i in range(n):
        for j in range(n):
            if i < n - 1:
                edges.append((f"v{i}{j}", f"v{i+1}{j}"))
            if j < n - 1:
                edges.append((f"v{i}{j}", f"v{i}{j+1}"))
    return EnumerationJob.steiner_tree(edges, ["v00", f"v{n-1}{n-1}"], **opts)


class TestPersistence:
    def test_round_trip_across_reopen(self, tmp_path):
        job = diamond_job()
        fresh = run_job(job)
        ResultStore(str(tmp_path)).store(job, fresh)
        # A brand-new store object on the same directory replays it.
        replayed = ResultStore(str(tmp_path)).lookup(job)
        assert replayed is not None
        assert replayed.cached
        assert replayed.lines == fresh.lines
        assert replayed.exhausted

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).lookup(diamond_job()) is None

    def test_relabeled_hit_translated(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = diamond_job()
        store.store(job, run_job(job))
        mapping = {"a": "x", "b": "y", "c": "z", "d": "w"}
        relabeled = EnumerationJob.steiner_tree(
            [(mapping[u], mapping[v]) for u, v in job.edges],
            [mapping[t] for t in job.terminals],
        )
        hit = ResultStore(str(tmp_path)).lookup(relabeled)
        assert hit is not None
        assert set(hit.lines) == set(run_job(relabeled).lines)

    def test_limit_truncation_same_fingerprint_only(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = diamond_job()
        store.store(job, run_job(job))
        # Exact instance: a limit is served by prefix truncation.
        limited = dataclasses.replace(job, limit=1)
        hit = store.lookup(limited)
        assert hit is not None
        assert hit.lines == run_job(job).lines[:1]
        assert hit.stop_reason == "limit"
        # Relabeled instance: a truncating limit must miss.
        relabeled = EnumerationJob.steiner_tree(
            [(u.upper(), v.upper()) for u, v in job.edges],
            [t.upper() for t in job.terminals],
            limit=1,
        )
        assert store.lookup(relabeled) is None

    def test_deadline_stopped_results_not_stored(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = diamond_job()
        result = dataclasses.replace(run_job(job), stop_reason="deadline", exhausted=False)
        store.store(job, result)
        assert len(store) == 0

    def test_upgrade_only(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = grid_job()
        full = run_job(job)
        partial = dataclasses.replace(
            full,
            lines=full.lines[:2],
            structures=full.structures[:2],
            exhausted=False,
            stop_reason="limit",
        )
        store.store(job, partial)
        assert store.prefix(job).count == 2
        store.store(job, full)
        assert store.lookup(job).exhausted
        # A later, shorter result must not downgrade the entry.
        store.store(job, partial)
        assert store.lookup(job).exhausted

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        job = diamond_job()
        store.store(job, run_job(job))
        entries = os.path.join(str(tmp_path), "entries")
        for name in os.listdir(entries):
            with open(os.path.join(entries, name), "w") as handle:
                handle.write("{not json")
        assert ResultStore(str(tmp_path)).lookup(job) is None


class TestCursorCheckpoints:
    def test_save_load_drop(self, tmp_path):
        store = ResultStore(str(tmp_path))
        state = {"version": 1, "job": diamond_job().to_dict(), "offset": 2, "digest": None}
        store.save_cursor("stream/1 weird:id", state)
        assert ResultStore(str(tmp_path)).load_cursor("stream/1 weird:id") == state
        assert store.cursor_count() == 1
        assert store.drop_cursor("stream/1 weird:id")
        assert not store.drop_cursor("stream/1 weird:id")
        assert store.load_cursor("stream/1 weird:id") is None

    def test_restart_resume_round_trip(self, tmp_path):
        """Kill mid-stream, reopen everything, resume: byte-identical tail."""
        job = grid_job()
        uninterrupted = run_job(job).lines

        store = ResultStore(str(tmp_path))
        cursor = EnumerationCursor(job, cache=store)
        head = cursor.take(7)
        store.save_cursor("s1", cursor.checkpoint())
        del cursor, store  # the "kill": nothing survives but the directory

        reopened = ResultStore(str(tmp_path))
        state = reopened.load_cursor("s1")
        assert state is not None
        resumed = EnumerationCursor.resume(state, cache=reopened)
        tail = resumed.drain()
        assert tuple(head + tail) == uninterrupted
        # The checkpointed prefix replays from disk: no re-enumeration
        # of the delivered head.
        assert reopened.stats.hits >= 0  # smoke: the store was consulted

    def test_resume_after_restart_needs_no_enumeration_for_stored_prefix(
        self, tmp_path
    ):
        job = grid_job()
        store = ResultStore(str(tmp_path))
        cursor = EnumerationCursor(job, cache=store)
        cursor.take(5)
        state = cursor.checkpoint()
        del cursor

        reopened = ResultStore(str(tmp_path))
        pref = reopened.prefix(job)
        assert pref is not None and pref.count >= 5
        resumed = EnumerationCursor.resume(state, cache=reopened)
        assert resumed.take(1) == [run_job(job).lines[5]]


class TestTieredCache:
    def test_promotion_and_write_through(self, tmp_path):
        cache = InstanceCache()
        store = ResultStore(str(tmp_path))
        tier = TieredCache(cache, store)
        job = diamond_job()
        tier.store(job, run_job(job))
        assert len(cache) == 1 and len(store) == 1
        # Fresh memory tier: the disk tier answers and is promoted.
        cache2 = InstanceCache()
        tier2 = TieredCache(cache2, ResultStore(str(tmp_path)))
        assert tier2.lookup(job) is not None
        assert len(cache2) == 1
        assert cache2.lookup(job) is not None

    def test_prefix_prefers_longest(self, tmp_path):
        cache = InstanceCache()
        store = ResultStore(str(tmp_path))
        tier = TieredCache(cache, store)
        job = grid_job()
        full = run_job(job)
        short = dataclasses.replace(
            full, lines=full.lines[:2], structures=full.structures[:2],
            exhausted=False, stop_reason="limit",
        )
        longer = dataclasses.replace(
            full, lines=full.lines[:5], structures=full.structures[:5],
            exhausted=False, stop_reason="limit",
        )
        cache.store(job, short)
        store.store(job, longer)
        assert tier.prefix(job).count == 5

    def test_batchrunner_accepts_tiered_cache(self, tmp_path):
        from repro.engine.service import BatchRunner

        tier = TieredCache(InstanceCache(), ResultStore(str(tmp_path)))
        runner = BatchRunner(workers=1, cache=tier)
        job = diamond_job(job_id="q")
        first = runner.run([job])[0]
        assert not first.cached
        second = runner.run([job])[0]
        assert second.cached
        assert first.lines == second.lines
        stats = runner.stats()
        assert stats["jobs_run"] == 2
        # A fresh runner over the same directory hits the disk tier.
        runner2 = BatchRunner(
            workers=1, cache=TieredCache(InstanceCache(), ResultStore(str(tmp_path)))
        )
        assert runner2.run([job])[0].cached


def _random_job(rng: random.Random, backend: str) -> EnumerationJob:
    n = rng.randint(4, 8)
    edges = [
        (f"n{u}", f"n{v}")
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.55
    ]
    if not edges:
        edges = [("n0", "n1")]
    vertices = sorted({x for e in edges for x in e})
    terminals = rng.sample(vertices, min(len(vertices), rng.randint(2, 3)))
    if rng.random() < 0.5:
        return EnumerationJob.steiner_tree(edges, terminals, backend=backend)
    return EnumerationJob.st_path(
        edges, terminals[0], terminals[-1], backend=backend
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), backend=st.sampled_from(["object", "fast"]))
def test_store_replay_equals_fresh_enumeration(tmp_path_factory, seed, backend):
    """Hypothesis: replayed streams == fresh enumeration, both backends.

    Covers the exact instance and a relabeled copy (whose replay is
    translated through the canonical order).
    """
    rng = random.Random(seed)
    job = _random_job(rng, backend)
    fresh = run_job(job)
    root = str(tmp_path_factory.mktemp("store"))
    store = ResultStore(root)
    store.store(job, fresh)
    replay = ResultStore(root).lookup(job)
    if fresh.stop_reason in ("deadline", "budget"):  # pragma: no cover
        assert replay is None
        return
    assert replay is not None
    assert replay.lines == fresh.lines

    # Relabeled copy: same solution set, caller's labels.
    perm = {v: f"r{i}" for i, v in enumerate(job.label_table())}
    relabeled = dataclasses.replace(
        job,
        edges=tuple((perm[u], perm[v]) for u, v in job.edges),
        vertices=tuple(perm[v] for v in job.vertices),
        terminals=tuple(perm[t] for t in job.terminals),
        source=None if job.source is None else perm[job.source],
        target=None if job.target is None else perm[job.target],
    )
    hit = store.lookup(relabeled)
    assert hit is not None, "relabeled lookup missed a complete entry"
    assert sorted(hit.lines) == sorted(run_job(relabeled).lines)


def test_store_entry_json_is_pure_data(tmp_path):
    """The on-disk format stays greppable/portable: JSON, ints, strings."""
    store = ResultStore(str(tmp_path))
    job = diamond_job()
    store.store(job, run_job(job))
    entries = os.path.join(str(tmp_path), "entries")
    (name,) = os.listdir(entries)
    with open(os.path.join(entries, name)) as handle:
        record = json.load(handle)
    assert record["schema"] == 1
    assert record["kind"] == "steiner-tree"
    assert record["exhausted"] is True
    assert isinstance(record["payload"], list)


@pytest.mark.parametrize("kind", ["st-path", "induced-steiner"])
def test_non_edge_kinds_round_trip(tmp_path, kind):
    edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
    if kind == "st-path":
        job = EnumerationJob.st_path(edges, "a", "d")
    else:
        job = EnumerationJob.induced_steiner(edges, ["a", "d"])
    fresh = run_job(job)
    store = ResultStore(str(tmp_path))
    store.store(job, fresh)
    assert ResultStore(str(tmp_path)).lookup(job).lines == fresh.lines

"""Declarative enumeration jobs: one record per solver invocation.

An :class:`EnumerationJob` captures everything needed to reproduce one
enumeration run — the problem kind, the instance (as a plain edge list so
jobs survive JSON and pickling), the query parameters, and the execution
envelope (solution limit, wall-clock deadline, operation budget, shard
count).  Jobs are immutable, hashable and cheap to ship to worker
processes; :func:`run_job` executes one and returns a :class:`JobResult`
whose ``lines`` are the canonical text rendering the CLI has always
printed, so batch output composes with the existing pipeline idiom.

Kinds cover the six enumerators of :mod:`repro.core` plus the path and
keyword-search layers:

========================  ==================================================
kind                      solver
========================  ==================================================
``steiner-tree``          :func:`repro.core.enumerate_minimal_steiner_trees`
``steiner-forest``        :func:`repro.core.enumerate_minimal_steiner_forests`
``terminal-steiner``      :func:`repro.core.enumerate_minimal_terminal_steiner_trees`
``directed-steiner``      :func:`repro.core.enumerate_minimal_directed_steiner_trees`
``induced-steiner``       :func:`repro.core.enumerate_minimal_induced_steiner_subgraphs`
``chordless-path``        :func:`repro.core.enumerate_chordless_st_paths`
``st-path``               :func:`repro.paths.enumerate_st_paths_undirected`
``kfragments``            :func:`repro.datagraph.undirected_kfragments`
========================  ==================================================

Deadlines and budgets stop an enumeration *cleanly*: the job result
reports the partial solution list and a ``stop_reason`` instead of
raising, which is what a serving layer needs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, fields
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core import capabilities
from repro.core.capabilities import require_backend, spec as kind_spec
from repro.enumeration.delay import CostMeter
from repro.exceptions import InvalidInstanceError, ReproError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Vertex = Hashable

#: All job kinds the engine can execute — derived from the kind
#: capability registry (:mod:`repro.core.capabilities`), which is the
#: single source of truth for result shapes, backend support,
#: suspendability, relabelability and cacheability.
JOB_KINDS = capabilities.JOB_KINDS

# ----------------------------------------------------------------------
# deprecated capability frozensets
# ----------------------------------------------------------------------
# The capability split used to be encoded here as five frozensets that
# serve/cursor/cache each imported.  They are now derived views of the
# registry, kept importable for one release; new code should consult
# :func:`repro.core.capabilities.spec` / ``kinds_where`` instead.
_DEPRECATED_KIND_SETS = {
    "EDGE_SET_KINDS": {"result_shape": "edge-set"},
    "ARC_SET_KINDS": {"result_shape": "arc-set"},
    "VERTEX_SET_KINDS": {"result_shape": "vertex-set"},
    "PATH_KINDS": {"result_shape": "path"},
    "RELABELABLE_KINDS": {"relabelable": True},
    "SUSPENDABLE_KINDS": {"suspendable": True},
}


def __getattr__(name: str):
    flags = _DEPRECATED_KIND_SETS.get(name)
    if flags is not None:
        import warnings

        warnings.warn(
            f"repro.engine.jobs.{name} is deprecated and will be removed "
            f"one release after 0.7; use "
            f"repro.core.capabilities.kinds_where({', '.join(f'{k}={v!r}' for k, v in flags.items())}) "
            f"or repro.core.capabilities.spec(kind) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return capabilities.kinds_where(**flags)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class BudgetExceeded(ReproError):
    """Raised internally when a job overruns its deadline or op budget."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"enumeration stopped: {reason}")
        self.reason = reason


class _BudgetMeter(CostMeter):
    """A :class:`CostMeter` that enforces an op budget and a deadline.

    The deadline is checked every ``_CHECK_EVERY`` ticks so the clock read
    does not dominate the enumerators' O(1) edge scans.
    """

    _CHECK_EVERY = 1024

    __slots__ = ("budget", "deadline_at", "_until_check")

    def __init__(
        self, budget: Optional[int] = None, deadline_at: Optional[float] = None
    ) -> None:
        super().__init__()
        self.budget = budget
        self.deadline_at = deadline_at
        self._until_check = self._CHECK_EVERY

    def tick(self, amount: int = 1) -> None:
        """Charge ``amount`` ops; raise :class:`BudgetExceeded` on overrun."""
        self.count += amount
        if self.budget is not None and self.count > self.budget:
            raise BudgetExceeded("budget")
        self._until_check -= 1
        if self._until_check <= 0:
            self._until_check = self._CHECK_EVERY
            if self.deadline_at is not None and time.monotonic() > self.deadline_at:
                raise BudgetExceeded("deadline")


@dataclass(frozen=True)
class EnumerationJob:
    """One declarative enumeration request.

    The instance is stored as plain tuples (edge list, terminal list,
    keyword table) so a job round-trips through JSON (``to_dict`` /
    ``from_dict``) and pickles cheaply to worker processes.  Edge ids are
    implied by position: edge ``i`` of the rebuilt graph is ``edges[i]``.

    Parameters
    ----------
    kind:
        One of :data:`JOB_KINDS`.
    edges:
        Endpoint pairs (arcs ``(tail, head)`` for directed kinds).
    vertices:
        Extra isolated vertices not mentioned by any edge.
    terminals, families, root, source, target, keywords, node_keywords:
        Query parameters; which ones are required depends on ``kind``.
    limit:
        Stop after this many solutions (``None`` = exhaust).
    deadline:
        Wall-clock allowance in seconds (``None`` = unlimited).
    budget:
        Allowance in metered substrate operations (``None`` = unlimited).
    shards:
        Requested shard count for parallel decomposition of this single
        job (honoured for ``steiner-tree`` jobs without a ``limit``; see
        :mod:`repro.engine.pool`).
    job_id:
        Caller-chosen identifier echoed into the result.
    backend:
        ``"object"`` (reference) or ``"fast"`` (integer kernel,
        :mod:`repro.graphs.fastgraph`).  Both produce the same solution
        stream on the engine's integer-relabeled instances; ``"fast"``
        is measurably quicker on the path-driven enumerators.

    Examples
    --------
    >>> job = EnumerationJob.steiner_tree(
    ...     [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"])
    >>> run_job(job).lines
    ('a-c c-d', 'a-b b-c c-d')
    """

    kind: str
    edges: Tuple[Tuple[Vertex, Vertex], ...] = ()
    vertices: Tuple[Vertex, ...] = ()
    terminals: Tuple[Vertex, ...] = ()
    families: Tuple[Tuple[Vertex, ...], ...] = ()
    root: Optional[Vertex] = None
    source: Optional[Vertex] = None
    target: Optional[Vertex] = None
    keywords: Tuple[str, ...] = ()
    node_keywords: Tuple[Tuple[Vertex, Tuple[str, ...]], ...] = ()
    limit: Optional[int] = None
    deadline: Optional[float] = None
    budget: Optional[int] = None
    shards: int = 1
    job_id: Optional[str] = None
    backend: str = "object"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_tuple(graph_or_edges) -> Tuple[Tuple[Vertex, Vertex], ...]:
        if isinstance(graph_or_edges, Graph):
            return tuple(
                graph_or_edges.endpoints(e) for e in sorted(graph_or_edges.edge_ids())
            )
        if isinstance(graph_or_edges, DiGraph):
            return tuple(
                graph_or_edges.arc_endpoints(a) for a in sorted(graph_or_edges.arc_ids())
            )
        return tuple((u, v) for u, v in graph_or_edges)

    @staticmethod
    def _isolated_vertices(graph_or_edges) -> Tuple[Vertex, ...]:
        """Vertices a bare edge list would lose (degree 0 in the input)."""
        if isinstance(graph_or_edges, Graph):
            return tuple(
                v for v in graph_or_edges.vertices() if graph_or_edges.degree(v) == 0
            )
        if isinstance(graph_or_edges, DiGraph):
            return tuple(
                v
                for v in graph_or_edges.vertices()
                if graph_or_edges.out_degree(v) == 0 and graph_or_edges.in_degree(v) == 0
            )
        return ()

    @classmethod
    def steiner_tree(cls, graph_or_edges, terminals, **opts) -> "EnumerationJob":
        """A minimal-Steiner-tree job over a :class:`Graph` or edge list."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="steiner-tree",
            edges=cls._edge_tuple(graph_or_edges),
            terminals=tuple(terminals),
            **opts,
        )

    @classmethod
    def steiner_forest(cls, graph_or_edges, families, **opts) -> "EnumerationJob":
        """A minimal-Steiner-forest job for a family collection."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="steiner-forest",
            edges=cls._edge_tuple(graph_or_edges),
            families=tuple(tuple(f) for f in families),
            **opts,
        )

    @classmethod
    def terminal_steiner(cls, graph_or_edges, terminals, **opts) -> "EnumerationJob":
        """A minimal-terminal-Steiner-tree job."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="terminal-steiner",
            edges=cls._edge_tuple(graph_or_edges),
            terminals=tuple(terminals),
            **opts,
        )

    @classmethod
    def directed_steiner(
        cls, digraph_or_arcs, terminals, root, **opts
    ) -> "EnumerationJob":
        """A minimal-directed-Steiner-tree job rooted at ``root``."""
        opts.setdefault("vertices", cls._isolated_vertices(digraph_or_arcs))
        return cls(
            kind="directed-steiner",
            edges=cls._edge_tuple(digraph_or_arcs),
            terminals=tuple(terminals),
            root=root,
            **opts,
        )

    @classmethod
    def induced_steiner(cls, graph_or_edges, terminals, **opts) -> "EnumerationJob":
        """A minimal-induced-Steiner-subgraph job (claw-free input)."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="induced-steiner",
            edges=cls._edge_tuple(graph_or_edges),
            terminals=tuple(terminals),
            **opts,
        )

    @classmethod
    def st_path(cls, graph_or_edges, source, target, **opts) -> "EnumerationJob":
        """A simple s-t path enumeration job (undirected)."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="st-path",
            edges=cls._edge_tuple(graph_or_edges),
            source=source,
            target=target,
            **opts,
        )

    @classmethod
    def chordless_path(cls, graph_or_edges, source, target, **opts) -> "EnumerationJob":
        """A chordless (induced) s-t path enumeration job."""
        opts.setdefault("vertices", cls._isolated_vertices(graph_or_edges))
        return cls(
            kind="chordless-path",
            edges=cls._edge_tuple(graph_or_edges),
            source=source,
            target=target,
            **opts,
        )

    @classmethod
    def kfragments(cls, datagraph, keywords, **opts) -> "EnumerationJob":
        """An undirected K-fragment (keyword-search) job over a data graph."""
        return cls(
            kind="kfragments",
            edges=cls._edge_tuple(datagraph.graph),
            vertices=tuple(
                v for v in datagraph.graph.vertices() if datagraph.graph.degree(v) == 0
            ),
            keywords=tuple(keywords),
            node_keywords=tuple(
                (node, tuple(sorted(datagraph.keywords_of(node))))
                for node in sorted(datagraph.graph.vertices(), key=repr)
                if datagraph.keywords_of(node)
            ),
            **opts,
        )

    # ------------------------------------------------------------------
    # validation / (de)serialization
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` on a malformed spec."""
        if self.kind not in JOB_KINDS:
            raise InvalidInstanceError(
                f"unknown job kind {self.kind!r}; expected one of {sorted(JOB_KINDS)}"
            )
        if self.kind == "steiner-forest":
            if not self.families:
                raise InvalidInstanceError("steiner-forest jobs need 'families'")
        elif kind_spec(self.kind).result_shape == "path":
            if self.source is None or self.target is None:
                raise InvalidInstanceError(f"{self.kind} jobs need 'source'/'target'")
        elif self.kind == "kfragments":
            if not self.keywords:
                raise InvalidInstanceError("kfragments jobs need 'keywords'")
        else:
            if not self.terminals:
                raise InvalidInstanceError(f"{self.kind} jobs need 'terminals'")
            if self.kind == "directed-steiner" and self.root is None:
                raise InvalidInstanceError("directed-steiner jobs need 'root'")
        if self.limit is not None and self.limit < 0:
            raise InvalidInstanceError("limit must be >= 0")
        if self.deadline is not None and self.deadline < 0:
            raise InvalidInstanceError("deadline must be >= 0")
        if self.budget is not None and self.budget < 0:
            raise InvalidInstanceError("budget must be >= 0")
        if self.shards < 1:
            raise InvalidInstanceError("shards must be >= 1")
        require_backend(self.kind, self.backend)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; omits defaulted fields for compact job files."""
        spec: Dict[str, Any] = {"kind": self.kind, "edges": [list(e) for e in self.edges]}
        if self.vertices:
            spec["vertices"] = list(self.vertices)
        if self.terminals:
            spec["terminals"] = list(self.terminals)
        if self.families:
            spec["families"] = [list(f) for f in self.families]
        for key in ("root", "source", "target", "limit", "deadline", "budget", "job_id"):
            value = getattr(self, key)
            if value is not None:
                spec["id" if key == "job_id" else key] = value
        if self.keywords:
            spec["keywords"] = list(self.keywords)
        if self.node_keywords:
            # A list of pairs, not a dict: JSON object keys are forcibly
            # strings, which would corrupt non-string node ids.
            spec["node_keywords"] = [
                [node, list(kws)] for node, kws in self.node_keywords
            ]
        if self.shards != 1:
            spec["shards"] = self.shards
        if self.backend != "object":
            spec["backend"] = self.backend
        return spec

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "EnumerationJob":
        """Rebuild a job from :meth:`to_dict` output (or hand-written JSON)."""
        known = {f.name for f in fields(cls)}
        kwargs: Dict[str, Any] = {}
        for key, value in spec.items():
            name = "job_id" if key == "id" else key
            if name not in known:
                raise InvalidInstanceError(f"unknown job field {key!r}")
            kwargs[name] = value
        try:
            kwargs["edges"] = tuple((u, v) for u, v in kwargs.get("edges", ()))
            for key in ("vertices", "terminals", "keywords"):
                if key in kwargs:
                    kwargs[key] = tuple(kwargs[key])
            if "families" in kwargs:
                kwargs["families"] = tuple(tuple(f) for f in kwargs["families"])
            if "node_keywords" in kwargs:
                table = kwargs["node_keywords"]
                if isinstance(table, dict):
                    items = sorted(table.items(), key=lambda kv: repr(kv[0]))
                else:
                    items = [(node, kws) for node, kws in table]
                kwargs["node_keywords"] = tuple(
                    (node, tuple(kws)) for node, kws in items
                )
        except (TypeError, ValueError) as exc:
            raise InvalidInstanceError(f"malformed job spec: {exc}") from exc
        try:
            job = cls(**kwargs)
        except TypeError as exc:
            # e.g. a spec with no "kind" at all: the dataclass raises a
            # bare TypeError, which HTTP surfaces must see as a 400.
            raise InvalidInstanceError(f"malformed job spec: {exc}") from exc
        job.validate()
        return job

    @classmethod
    def from_json(cls, text: str) -> "EnumerationJob":
        """Parse one JSON object (one ``jobs.jsonl`` line) into a job."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------
    @property
    def is_directed(self) -> bool:
        """True for kinds whose instance is a digraph."""
        return kind_spec(self.kind).directed

    def instantiate(self):
        """Build the concrete :class:`Graph` / :class:`DiGraph` / data graph."""
        if self.kind == "kfragments":
            from repro.datagraph.model import DataGraph

            dg = DataGraph()
            for v in self.vertices:
                dg.add_node(v)
            for u, v in self.edges:
                dg.add_link(u, v)
            for node, kws in self.node_keywords:
                dg.add_node(node, kws)
            return dg
        if self.is_directed:
            return DiGraph.from_arcs(self.edges, vertices=self.vertices)
        return Graph.from_edges(self.edges, vertices=self.vertices)

    def label_table(self) -> List[Vertex]:
        """All instance vertices in first-appearance order (edges, then
        isolated vertices) — the label for index ``i`` of the indexed
        instance built by :meth:`instantiate_indexed`."""
        labels: List[Vertex] = []
        seen = set()
        for u, v in self.edges:
            for x in (u, v):
                if x not in seen:
                    seen.add(x)
                    labels.append(x)
        for x in self.vertices:
            if x not in seen:
                seen.add(x)
                labels.append(x)
        for node, _kws in self.node_keywords:
            if node not in seen:
                seen.add(node)
                labels.append(node)
        return labels

    def instantiate_indexed(self):
        """The instance over integer vertex indices, plus the label table.

        Integers hash to themselves, so enumeration order over the
        indexed instance is identical in every Python process —
        string-labeled instances would inherit ``PYTHONHASHSEED``-
        dependent set/dict iteration order from the solvers.  Edge ids
        are positional either way, so solutions translate back through
        the returned table.  Returns ``(instance, labels, index_of)``.
        """
        labels = self.label_table()
        index_of = {v: i for i, v in enumerate(labels)}
        edges = [(index_of[u], index_of[v]) for u, v in self.edges]
        if self.kind == "kfragments":
            from repro.datagraph.model import DataGraph

            dg = DataGraph()
            for i in range(len(labels)):
                dg.add_node(i)
            for u, v in edges:
                dg.add_link(u, v)
            for node, kws in self.node_keywords:
                dg.add_node(index_of[node], kws)
            return dg, labels, index_of
        if self.is_directed:
            return DiGraph.from_arcs(edges, vertices=range(len(labels))), labels, index_of
        return Graph.from_edges(edges, vertices=range(len(labels))), labels, index_of


@dataclass(frozen=True)
class JobResult:
    """The outcome of one job: rendered solutions plus run metadata.

    ``lines`` is the deterministic text rendering (one solution per
    entry, in enumeration order); ``structures`` is the label-level form
    the cache stores (see :mod:`repro.engine.cache`) and is excluded from
    serialization.  ``exhausted`` is True iff the enumeration ran to
    completion; otherwise ``stop_reason`` says why it stopped
    (``limit`` / ``deadline`` / ``budget``).  For suspendable kinds
    (``suspendable`` in :mod:`repro.core.capabilities`) a cleanly
    stopped run also carries a
    search-state ``snapshot``: pass it back as ``run_job(job,
    resume=...)`` to continue the stream in O(state) instead of
    replaying the delivered prefix.  Like ``structures`` it is excluded
    from serialization and comparison.
    """

    job_id: Optional[str]
    kind: str
    lines: Tuple[str, ...]
    exhausted: bool
    stop_reason: Optional[str]
    elapsed: float
    ops: int
    cached: bool = False
    error: Optional[str] = None
    structures: Optional[Tuple[Any, ...]] = field(
        default=None, repr=False, compare=False
    )
    snapshot: Optional[bytes] = field(default=None, repr=False, compare=False)

    @property
    def count(self) -> int:
        """Number of solutions produced."""
        return len(self.lines)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON payload (timing kept out so batch output is
        byte-identical across worker counts)."""
        payload = {
            "id": self.job_id,
            "kind": self.kind,
            "count": self.count,
            "exhausted": self.exhausted,
            "stop_reason": self.stop_reason,
            "lines": list(self.lines),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


# ----------------------------------------------------------------------
# structures and rendering
# ----------------------------------------------------------------------
def render_structure(kind: str, structure) -> str:
    """Render a label-level solution structure as the CLI's text line."""
    shape = kind_spec(kind).result_shape
    if shape == "edge-set":
        return (
            " ".join(f"{u}-{v}" for u, v in structure)
            if structure
            else "(single-vertex tree)"
        )
    if shape == "arc-set":
        return (
            " ".join(f"{u}->{v}" for u, v in structure)
            if structure
            else "(single-vertex tree)"
        )
    if shape == "vertex-set":
        return " ".join(map(str, structure))
    if shape == "path":
        return "->".join(map(str, structure))
    raise InvalidInstanceError(f"no structure rendering for kind {kind!r}")


def solution_edge_structure(job: EnumerationJob, eids) -> tuple:
    """Label-level form of an edge/arc-set solution via positional ids.

    Edge ids of any instantiation of ``job`` are positions into
    ``job.edges``, so the original endpoint labels are recovered without
    touching the (possibly integer-relabeled) instance.
    """
    if job.is_directed:
        pairs = [job.edges[a] for a in eids]
    else:
        pairs = [tuple(sorted(job.edges[e], key=repr)) for e in eids]
    return tuple(sorted(pairs, key=lambda p: (repr(p[0]), repr(p[1]))))


def _render_fragment(job: EnumerationJob, labels, fragment) -> str:
    """Deterministic one-line rendering of a keyword-search fragment."""
    pairs = sorted(
        "{}-{}".format(*sorted(map(str, job.edges[e])))
        for e in fragment.structural_edges
    )
    edges = " ".join(pairs) if pairs else "(single node)"
    matches = ",".join(f"{kw}={labels[node]}" for kw, node in fragment.matches)
    return f"[{fragment.size}] {edges} | {matches}"


def iter_structures(job: EnumerationJob, meter: Optional[CostMeter] = None) -> Iterator:
    """Drive the solver for ``job``, yielding label-level structures.

    The solver runs on the integer-indexed instance (see
    :meth:`EnumerationJob.instantiate_indexed`) so the solution order is
    identical in every process; yields are translated back to the job's
    own labels.  For ``kfragments`` jobs the yields are pre-rendered
    lines (fragments carry match metadata that does not survive
    relabeling, so the cache never translates them).
    """
    job.validate()
    instance, labels, raw_index = job.instantiate_indexed()

    class _QueryIndex(dict):
        """index_of with instance-membership errors instead of KeyErrors."""

        def __missing__(self, vertex):
            raise InvalidInstanceError(
                f"query vertex {vertex!r} is not in the instance"
            )

    index_of = _QueryIndex(raw_index)
    backend = job.backend
    if job.kind == "steiner-tree":
        from repro.core.steiner_tree import enumerate_minimal_steiner_trees

        for sol in enumerate_minimal_steiner_trees(
            instance, [index_of[t] for t in job.terminals], meter=meter,
            backend=backend,
        ):
            yield solution_edge_structure(job, sol)
    elif job.kind == "steiner-forest":
        from repro.core.steiner_forest import enumerate_minimal_steiner_forests

        for sol in enumerate_minimal_steiner_forests(
            instance,
            [[index_of[t] for t in f] for f in job.families],
            meter=meter,
            backend=backend,
        ):
            yield solution_edge_structure(job, sol)
    elif job.kind == "terminal-steiner":
        from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees

        for sol in enumerate_minimal_terminal_steiner_trees(
            instance, [index_of[t] for t in job.terminals], meter=meter,
            backend=backend,
        ):
            yield solution_edge_structure(job, sol)
    elif job.kind == "directed-steiner":
        from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees

        for sol in enumerate_minimal_directed_steiner_trees(
            instance,
            [index_of[t] for t in job.terminals],
            index_of[job.root],
            meter=meter,
            backend=backend,
        ):
            yield solution_edge_structure(job, sol)
    elif job.kind == "induced-steiner":
        from repro.core.induced_steiner import enumerate_minimal_induced_steiner_subgraphs

        for sol in enumerate_minimal_induced_steiner_subgraphs(
            instance, [index_of[t] for t in job.terminals], meter=meter,
            backend=backend,
        ):
            yield tuple(sorted((labels[v] for v in sol), key=repr))
    elif job.kind == "chordless-path":
        from repro.core.induced_paths import enumerate_chordless_st_paths

        for path in enumerate_chordless_st_paths(
            instance, index_of[job.source], index_of[job.target], meter=meter,
            backend=backend,
        ):
            yield tuple(labels[v] for v in path)
    elif job.kind == "st-path":
        from repro.paths.read_tarjan import enumerate_st_paths_undirected

        for path in enumerate_st_paths_undirected(
            instance, index_of[job.source], index_of[job.target], meter=meter,
            backend=backend,
        ):
            yield tuple(labels[v] for v in path.vertices)
    elif job.kind == "kfragments":
        from repro.datagraph.kfragments import undirected_kfragments

        for fragment in undirected_kfragments(
            instance, list(job.keywords), meter=meter, backend=backend
        ):
            yield _render_fragment(job, labels, fragment)
    else:  # pragma: no cover - validate() rejects unknown kinds
        raise InvalidInstanceError(f"unhandled job kind {job.kind!r}")


def structure_line(job: EnumerationJob, structure) -> str:
    """Render one structure yielded by :func:`iter_structures` for ``job``."""
    if job.kind == "kfragments":
        return structure
    return render_structure(job.kind, structure)


def run_job(job: EnumerationJob, resume: Optional[bytes] = None) -> JobResult:
    """Execute ``job`` to its limit/deadline/budget; never raises on overrun.

    Suspendable kinds (``suspendable`` in the capability registry,
    :mod:`repro.core.capabilities`) run on their search
    machine: a run stopped cleanly (limit reached, or the deadline
    observed between solutions) carries a search-state ``snapshot`` in
    its result, and passing that blob back as ``resume`` continues the
    stream where it stopped — the job's ``limit`` always bounds the
    *total* stream position, resumed segments included.  A run aborted
    mid-step (op budget / deadline tripped inside the substrate) has no
    clean machine state and returns no snapshot; such streams resume by
    replay.  ``resume`` for a replay-only kind raises
    :class:`InvalidInstanceError`.
    """
    start = time.perf_counter()
    deadline_at = (
        (time.monotonic() + job.deadline) if job.deadline is not None else None
    )
    meter = _BudgetMeter(budget=job.budget, deadline_at=deadline_at)
    structures: List[Any] = []
    stop_reason: Optional[str] = None
    exhausted = False
    snapshot_out: Optional[bytes] = None
    if kind_spec(job.kind).suspendable:
        from repro.engine.suspend import JobSearch

        # Machine-driven runs enforce the deadline between solutions —
        # a clean suspension point, so the stop keeps its snapshot —
        # instead of letting the substrate meter abort mid-step.
        meter.deadline_at = None
        lines_list: List[str] = []
        search = (
            JobSearch.restore(job, resume, meter)
            if resume is not None
            else JobSearch(job, meter)
        )
        remaining = (
            None if job.limit is None else max(0, job.limit - search.emitted)
        )
        clean = True
        try:
            while True:
                if remaining is not None and len(structures) >= remaining:
                    stop_reason = "limit"
                    break
                pair = search.next()
                if pair is None:
                    exhausted = True
                    break
                line, structure = pair
                lines_list.append(line)
                structures.append(structure)
                # Limit before deadline, matching the replay-only branch:
                # reaching the cap reports "limit" even when the clock
                # has also just run out.
                if remaining is not None and len(structures) >= remaining:
                    stop_reason = "limit"
                    break
                if deadline_at is not None and time.monotonic() > deadline_at:
                    stop_reason = "deadline"
                    break
        except BudgetExceeded as exc:
            stop_reason = exc.reason
            clean = False  # the machine state is mid-step: not resumable
        if not exhausted and clean:
            snapshot_out = search.snapshot()
        lines = tuple(lines_list)
    else:
        if resume is not None:
            raise InvalidInstanceError(
                f"job kind {job.kind!r} is replay-only (no snapshot resume)"
            )
        if job.limit == 0:
            stop_reason = "limit"
        else:
            try:
                for structure in iter_structures(job, meter):
                    structures.append(structure)
                    if job.limit is not None and len(structures) >= job.limit:
                        stop_reason = "limit"
                        break
                    if (
                        meter.deadline_at is not None
                        and time.monotonic() > meter.deadline_at
                    ):
                        stop_reason = "deadline"
                        break
                else:
                    exhausted = True
            except BudgetExceeded as exc:
                stop_reason = exc.reason
        lines = tuple(structure_line(job, s) for s in structures)
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        lines=lines,
        exhausted=exhausted,
        stop_reason=stop_reason,
        elapsed=time.perf_counter() - start,
        ops=meter.count,
        structures=tuple(structures),
        snapshot=snapshot_out,
    )


def load_jobs_jsonl(path: str) -> List[EnumerationJob]:
    """Read a ``jobs.jsonl`` file: one JSON job spec per non-blank line."""
    jobs: List[EnumerationJob] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            body = line.strip()
            if not body or body.startswith("#"):
                continue
            try:
                jobs.append(EnumerationJob.from_json(body))
            except (json.JSONDecodeError, InvalidInstanceError) as exc:
                raise InvalidInstanceError(f"{path}:{line_no}: {exc}") from exc
    return jobs

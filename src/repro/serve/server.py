"""Asyncio streaming enumeration server (HTTP/1.1 + NDJSON).

:class:`EnumerationServer` is the network front end of the engine: it
accepts :class:`repro.engine.jobs.EnumerationJob` payloads over
``POST /enumerate`` and streams solutions back **incrementally** —
clients see the first solution as soon as the enumerator's
linear-delay guarantee produces it, not when the run finishes.

Data path per request::

    client ──HTTP──> server ──pipe──> pooled worker process
           <─NDJSON─        <─chunks─

* **Backpressure** — a worker sends one chunk then blocks for a flow
  credit; the server grants the credit only after the chunk is written
  to the socket and ``drain()`` returns.  A slow client therefore
  suspends its own enumeration (bounded memory per stream: one chunk in
  the worker, one in the socket buffer) without affecting other
  clients.
* **Cancellation** — a disconnected client turns the pending credit
  into a ``cancel``; the worker abandons the run and returns to the
  pool warm.  Deadlines and op budgets ride on the job itself
  (:mod:`repro.engine.jobs`) and stop streams server-side.
* **Warm replay** — completed enumerations land in the
  :class:`~repro.serve.store.ResultStore` (disk) and the
  :class:`~repro.engine.cache.InstanceCache` (memory) keyed by the
  isomorphism-stable instance digest, so a repeated — or *relabeled* —
  query replays the stored stream (translated to the caller's labels)
  without touching a worker.
* **Resumable streams** — a request may carry a ``stream_id``; the
  server checkpoints the delivered offset (and the solution prefix) on
  disconnect or completion, and a later request with the same
  ``stream_id`` resumes exactly where the stream stopped, **across
  server restarts**, because checkpoints live in the store.

The server binds ``port=0`` by default (ephemeral, for tests and
embedding); ``repro serve --port N`` runs it standalone.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import base64

from repro.engine.cache import InstanceCache, job_fingerprint
from repro.core.capabilities import capability_matrix, kinds_where, spec as kind_spec
from repro.engine.jobs import EnumerationJob, JobResult
from repro.exceptions import CursorStateError, InvalidInstanceError, ReproError
from repro.frontdoor.answers import AnswerEngine, AnswerTimeout
from repro.frontdoor.metrics import MetricsRegistry
from repro.frontdoor.registry import DatasetError, DatasetRegistry
from repro.frontdoor.scheduling import PriorityGate
from repro.frontdoor.tenants import (
    AuthError,
    QuotaExceeded,
    Tenant,
    TenantRegistry,
)
from repro.serve.protocol import (
    FINAL_CHUNK,
    ProtocolError,
    clamp_connection_buffers,
    encode_event,
    json_response,
    read_request,
    response_head,
    split_target,
)
from repro.serve.store import ResultStore, TieredCache
from repro.serve.workers import DEFAULT_CHUNK, WorkerDied, WorkerPool


@dataclass
class ServerStats:
    """Aggregate counters exposed at ``GET /stats``."""

    requests: int = 0
    streams: int = 0
    solutions: int = 0
    replays: int = 0
    live_runs: int = 0
    resumed: int = 0
    cancelled: int = 0
    errors: int = 0
    worker_replacements: int = 0  # crashed workers replaced mid-stream
    checkpoints: int = 0  # periodic mid-stream checkpoints written
    degraded_resumes: int = 0  # corrupt checkpoints degraded to fresh runs

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON serving."""
        return dataclasses.asdict(self)


class _Disconnect(Exception):
    """The client went away mid-stream."""


@dataclass
class _StreamState:
    """Bookkeeping for one in-flight enumeration stream."""

    job: EnumerationJob
    offset: int  # resume position (solutions already delivered historically)
    stream_id: Optional[str]
    total: int = 0  # stream position reached (offset + delivered this time)
    known_lines: List[str] = field(default_factory=list)  # prefix [0, len) when contiguous
    known_structures: List[Any] = field(default_factory=list)
    contiguous: bool = True  # known_lines covers [0, total) with no holes
    exhausted: bool = False
    stop_reason: Optional[str] = None
    cached: bool = True  # flips False once a worker enumerates
    resume_snapshot: Optional[bytes] = None  # thawed from the checkpoint
    last_snapshot: Optional[bytes] = None  # freshest worker search state
    last_snapshot_pos: int = -1  # absolute stream position of last_snapshot
    priority: int = 0  # tenant tier priority for worker-slot scheduling
    compute_seconds: float = 0.0  # accumulated worker-busy time (quota charge)


class EnumerationServer:
    """The asyncio streaming service over a persistent worker pool.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    workers:
        Size of the persistent enumeration worker pool — the cap on
        concurrently *enumerating* streams (replayed streams don't
        occupy a worker).
    cache:
        An :class:`InstanceCache`, ``None`` to build a default one, or
        ``False`` to disable the memory tier.
    store:
        A :class:`ResultStore`, a directory path to open one, or
        ``None`` to run memory-only (no persistence, no resumable
        streams across restarts).
    chunk:
        Solutions per flow-control chunk (the per-client queue bound).
    max_deadline:
        Server-side cap in seconds applied to every job's ``deadline``
        (jobs without one get exactly this allowance).
    registry:
        A :class:`DatasetRegistry`, a directory path to open one, or
        ``None`` to derive one from the store (``<store>/datasets``
        when a store is configured, memory-only otherwise).
    tenants:
        A :class:`TenantRegistry`, a directory path, or ``None`` to run
        without authentication/quotas.
    require_auth:
        Reject requests without a valid API key (``/healthz`` stays
        open).  Without it, keys are validated and accounted when
        presented but anonymous requests pass.
    warm:
        Warm the graphs + last compiled queries of this many of the
        most-queried datasets at startup (store-stats-driven).
    checkpoint_every:
        Write a mid-stream cursor checkpoint to the store every this
        many live solutions (``None`` checkpoints only at stream end /
        disconnect).  Periodic checkpoints are what make a SIGKILLed
        replica resumable: the fleet router migrates the stream to a
        surviving replica, which thaws the last checkpoint from the
        shared store instead of replaying from scratch.
    sndbuf:
        Bound each client connection's send-side buffering (kernel
        ``SO_SNDBUF`` + asyncio write buffer) to ~this many bytes.
        Loopback autotuning otherwise grows the buffers into the
        megabytes, letting a slow consumer hold whole streams in kernel
        memory while its worker free-runs; with the bound, ``drain()``
        tracks the consumer's pace and backpressure parks the worker at
        the credit wait.  ``None`` (default) keeps the OS sizing.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache: Union[InstanceCache, None, bool] = None,
        store: Union[ResultStore, str, None] = None,
        chunk: int = DEFAULT_CHUNK,
        mp_context: Optional[str] = None,
        max_deadline: Optional[float] = None,
        registry: Union[DatasetRegistry, str, None] = None,
        tenants: Union[TenantRegistry, str, None] = None,
        require_auth: bool = False,
        warm: int = 0,
        checkpoint_every: Optional[int] = None,
        sndbuf: Optional[int] = None,
    ) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if sndbuf is not None and sndbuf < 4096:
            raise ValueError("sndbuf must be >= 4096 bytes (or None)")
        self.host = host
        self._requested_port = port
        self.workers = workers
        self.chunk = chunk
        self.mp_context = mp_context
        self.max_deadline = max_deadline
        self.checkpoint_every = checkpoint_every
        self.sndbuf = sndbuf
        self.stats = ServerStats()
        memory: Optional[InstanceCache]
        if cache is False:
            memory = None
        elif cache is None:
            memory = InstanceCache()
        else:
            memory = cache  # type: ignore[assignment]
        self.store: Optional[ResultStore]
        if isinstance(store, str):
            self.store = ResultStore(store)
        else:
            self.store = store
        self.tier = TieredCache(memory, self.store)
        if isinstance(registry, str):
            self.registry = DatasetRegistry(registry)
        elif registry is not None:
            self.registry = registry
        elif self.store is not None:
            self.registry = DatasetRegistry(os.path.join(self.store.root, "datasets"))
        else:
            self.registry = DatasetRegistry(None)
        if isinstance(tenants, str):
            self.tenants: Optional[TenantRegistry] = TenantRegistry(tenants)
        else:
            self.tenants = tenants
        if require_auth and self.tenants is None:
            self.tenants = TenantRegistry(None)
        self.require_auth = require_auth
        self.warm = warm
        self.answers = AnswerEngine(self.registry)
        self.metrics = MetricsRegistry()
        self._pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._answer_executor: Optional[ThreadPoolExecutor] = None
        self._gate: Optional[PriorityGate] = None
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    async def start(self) -> None:
        """Bind the listening socket and spin up the worker pool."""
        if self._server is not None:
            raise RuntimeError("server already started")
        # A disk-backed store doubles as the home of the zero-copy
        # instance arena: every worker — and every fleet replica sharing
        # the store directory — maps one spool copy per dataset.
        arena_dir = (
            os.path.join(self.store.root, "arena") if self.store is not None else None
        )
        self._pool = WorkerPool(
            self.workers, mp_context=self.mp_context, arena_dir=arena_dir
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers + 2, thread_name_prefix="repro-serve"
        )
        # /answer enumerations run in their own executor: a burst of
        # expensive answers must never pin the threads the /enumerate
        # streams (handle.recv) and quota admissions run on.  The
        # PriorityGate still bounds total concurrent enumeration work.
        self._answer_executor = ThreadPoolExecutor(
            max_workers=max(2, self.workers), thread_name_prefix="repro-answer"
        )
        self._gate = PriorityGate(self.workers)
        if self.warm > 0:
            warmed = self.answers.warm_popular(self.warm)
            if warmed:
                self.metrics.inc("datasets_warmed", len(warmed))
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Close the listener, drain in-flight streams, stop the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            # Let in-flight streams finish (they checkpoint on the way
            # out); anything still running after the grace period is
            # torn down with the pool.
            await asyncio.wait(set(self._conn_tasks), timeout=10)
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._answer_executor is not None:
            self._answer_executor.shutdown(wait=False)
            self._answer_executor = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if self.sndbuf is not None:
            clamp_connection_buffers(writer, sndbuf=self.sndbuf)
        try:
            await self._handle_request(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _handle_request(self, reader, writer) -> None:
        started = time.perf_counter()
        method, path, tenant_name, status = "-", "-", None, 0
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), timeout=30)
            except ProtocolError as exc:
                status = 400
                writer.write(json_response(400, {"event": "error", "error": str(exc)}))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, asyncio.TimeoutError, OSError):
                return
            if request is None:
                return
            method, target, headers, body = request
            path, params = split_target(target)
            self.stats.requests += 1
            try:
                tenant = await self._authorize(method, path, headers)
            except AuthError as exc:
                status = 401
                self.metrics.inc("auth_failures")
                writer.write(json_response(401, {"event": "error", "error": str(exc)}))
                await writer.drain()
                return
            except QuotaExceeded as exc:
                status = 429
                self.metrics.inc("quota_rejections")
                writer.write(
                    json_response(
                        429,
                        {
                            "event": "error",
                            "error": str(exc),
                            "retry_after": round(exc.retry_after, 3),
                        },
                        headers={"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
                    )
                )
                await writer.drain()
                return
            tenant_name = tenant.name if tenant is not None else None
            status = await self._route(
                method, path, params, body, writer, tenant
            )
        except (ConnectionError, _Disconnect, OSError):
            status = status or 499  # client went away mid-stream
        finally:
            if path != "-":
                self.metrics.access(
                    method,
                    path,
                    status,
                    time.perf_counter() - started,
                    tenant=tenant_name,
                )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # authentication + routing
    # ------------------------------------------------------------------
    @staticmethod
    def _api_key(headers: Dict[str, str]) -> Optional[str]:
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip() or None
        return headers.get("x-api-key") or None

    @staticmethod
    def _charged(method: str, path: str) -> bool:
        """Does this request consume request quota?

        Only compute and mutation surfaces are charged: enumeration,
        answers and dataset writes.  Read-only ops surfaces (/stats,
        /metrics, GET /datasets, /healthz) stay free.
        """
        if path == "/enumerate":
            return method == "POST"
        if path == "/answer":
            return method in ("GET", "POST")
        if path == "/datasets":
            return method == "POST"
        if path.startswith("/datasets/"):
            return method == "DELETE"
        return False

    async def _authorize(
        self, method: str, path: str, headers: Dict[str, str]
    ) -> Optional[Tenant]:
        """Authenticate + admit one request; ``None`` for anonymous.

        With ``require_auth`` every route except ``/healthz`` needs a
        valid key; otherwise keys are checked (and charged) only when
        presented.  Charged routes run the atomic quota admission —
        off the event loop, because admission persists usage.json and
        the loop must keep serving streams during that disk write.
        """
        if self.tenants is None or path == "/healthz":
            return None
        key = self._api_key(headers)
        if key is None and not self.require_auth:
            return None
        tenant = self.tenants.authenticate(key)
        if self._charged(method, path):
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self.tenants.admit, tenant
            )
        return tenant

    async def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: bytes,
        writer,
        tenant: Optional[Tenant],
    ) -> int:
        """Dispatch one request; returns the response status for the log."""
        if path == "/healthz" and method == "GET":
            return await self._simple(writer, 200, {"ok": True})
        if path == "/stats" and method == "GET":
            return await self._simple(writer, 200, self._stats_payload())
        if path == "/metrics" and method == "GET":
            return await self._simple(writer, 200, self._metrics_payload())
        if path == "/enumerate":
            if method != "POST":
                return await self._simple(
                    writer, 405, {"event": "error", "error": "POST required"}
                )
            await self._enumerate(body, writer, tenant)
            return 200
        if path == "/datasets":
            if method == "POST":
                return await self._register_dataset(body, writer)
            if method == "GET":
                return await self._simple(
                    writer,
                    200,
                    {
                        "ok": True,
                        "datasets": [r._asdict() for r in self.registry.list()],
                    },
                )
            return await self._simple(
                writer, 405, {"event": "error", "error": "POST or GET required"}
            )
        if path.startswith("/datasets/") and method == "DELETE":
            name = path[len("/datasets/"):]
            removed = self.registry.remove(name)
            if not removed:
                return await self._simple(
                    writer, 404, {"event": "error", "error": f"unknown dataset {name!r}"}
                )
            return await self._simple(writer, 200, {"ok": True, "removed": name})
        if path == "/answer" and method in ("GET", "POST"):
            return await self._answer(method, params, body, writer, tenant)
        return await self._simple(
            writer, 404, {"event": "error", "error": f"no route {path}"}
        )

    async def _simple(
        self,
        writer,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        writer.write(json_response(status, payload, headers))
        await writer.drain()
        return status

    # ------------------------------------------------------------------
    # front-door endpoints
    # ------------------------------------------------------------------
    async def _register_dataset(self, body: bytes, writer) -> int:
        started = time.perf_counter()
        try:
            spec = json.loads(body.decode() or "{}")
            if not isinstance(spec, dict):
                raise DatasetError("request body must be a JSON object")
            record, deduped = self.registry.add(
                str(spec.get("name", "")),
                spec.get("edges") or [],
                vertices=spec.get("vertices") or [],
                node_keywords=spec.get("node_keywords") or None,
            )
        except (json.JSONDecodeError, UnicodeDecodeError, TypeError, ValueError) as exc:
            return await self._simple(
                writer, 400, {"event": "error", "error": f"bad dataset payload: {exc}"}
            )
        except ReproError as exc:
            return await self._simple(writer, 400, {"event": "error", "error": str(exc)})
        self.metrics.observe("datasets", time.perf_counter() - started)
        self.metrics.inc("datasets_deduped" if deduped else "datasets_registered")
        return await self._simple(
            writer,
            200,
            {
                "ok": True,
                "name": record.name,
                "digest": record.digest,
                "deduped": deduped,
                "num_vertices": record.num_vertices,
                "num_edges": record.num_edges,
            },
        )

    async def _record_usage(
        self,
        tenant: Optional[Tenant],
        solutions: int = 0,
        compute_seconds: float = 0.0,
    ) -> None:
        """Attach usage to the tenant's window, off the event loop."""
        if tenant is None or self.tenants is None or self._executor is None:
            return
        if not solutions and not compute_seconds:
            return
        registry = self.tenants
        await asyncio.get_running_loop().run_in_executor(
            self._executor,
            lambda: registry.record(
                tenant, solutions=solutions, compute_seconds=compute_seconds
            ),
        )

    async def _answer(
        self,
        method: str,
        params: Dict[str, str],
        body: bytes,
        writer,
        tenant: Optional[Tenant],
    ) -> int:
        started = time.perf_counter()
        count = 0
        compute_seconds = 0.0
        try:
            try:
                if method == "POST":
                    spec = json.loads(body.decode() or "{}")
                    if not isinstance(spec, dict):
                        raise InvalidInstanceError(
                            "request body must be a JSON object"
                        )
                else:
                    spec = dict(params)
                    if "q" in spec and "keywords" not in spec:
                        spec["keywords"] = [
                            kw for kw in str(spec.pop("q")).split(",") if kw
                        ]
                keywords = spec.get("keywords") or []
                if isinstance(keywords, str):
                    keywords = [kw for kw in keywords.split(",") if kw]
                assert self._gate is not None and self._answer_executor is not None
                # /answer burns real enumeration CPU, so it takes a
                # worker-pool slot exactly like a live /enumerate stream
                # — priority-aware, with the same fairness hatch — and
                # runs under the server's deadline cap.
                priority = tenant.priority if tenant is not None else 0
                async with self._gate.slot(priority):
                    compute_started = time.perf_counter()
                    try:
                        payload = await asyncio.get_running_loop().run_in_executor(
                            self._answer_executor,
                            lambda: self.answers.answer(
                                str(spec.get("dataset", "")),
                                keywords,
                                k=int(spec.get("k", 5)),
                                model=str(spec.get("model", "degree")),
                                backend=str(spec.get("backend", "fast")),
                                deadline=self.max_deadline,
                            ),
                        )
                    finally:
                        compute_seconds = time.perf_counter() - compute_started
                count = int(payload.get("count", 0))
            except AnswerTimeout as exc:
                self.metrics.inc("answer_deadlines")
                return await self._simple(
                    writer,
                    503,
                    {
                        "event": "error",
                        "error": str(exc),
                        "stop_reason": "deadline",
                    },
                )
            except DatasetError as exc:
                return await self._simple(
                    writer, 404, {"event": "error", "error": str(exc)}
                )
            except (
                json.JSONDecodeError,
                UnicodeDecodeError,
                TypeError,
                ValueError,
                ReproError,
            ) as exc:
                return await self._simple(
                    writer, 400, {"event": "error", "error": str(exc)}
                )
            self.metrics.observe("answer", time.perf_counter() - started)
            return await self._simple(writer, 200, payload)
        finally:
            # Charge what actually ran — a deadline abort burned CPU
            # too; delivered answers count toward the solutions quota.
            await self._record_usage(
                tenant, solutions=count, compute_seconds=compute_seconds
            )

    def _stats_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": True, "workers": self.workers}
        payload.update(self.stats.as_dict())
        payload.update(self.tier.as_dict())
        # The full per-kind capability matrix is the contract clients
        # should consult (see docs/contracts/capabilities.md); the flat
        # suspendable_kinds list is kept alongside for one release.
        payload["capabilities"] = capability_matrix()
        payload["suspendable_kinds"] = sorted(kinds_where(suspendable=True))
        payload["datasets"] = len(self.registry)
        return payload

    def _metrics_payload(self) -> Dict[str, Any]:
        """The structured ops document behind ``GET /metrics``."""
        payload: Dict[str, Any] = {"ok": True}
        payload.update(self.metrics.as_dict())
        payload["capabilities"] = capability_matrix()
        payload["suspendable_kinds"] = sorted(kinds_where(suspendable=True))
        payload["tenants"] = (
            self.tenants.usage_table() if self.tenants is not None else {}
        )
        payload["scheduler"] = self._gate.as_dict() if self._gate is not None else {}
        payload["store"] = self.tier.as_dict()
        payload["answers"] = self.answers.as_dict()
        payload["datasets"] = {r.name: r.uses for r in self.registry.list()}
        payload["streams"] = self.stats.streams
        payload["solutions"] = self.stats.solutions
        payload["worker_replacements"] = self.stats.worker_replacements
        payload["errors"] = self.stats.errors
        return payload

    # ------------------------------------------------------------------
    # the /enumerate stream
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_enumerate_body(
        body: bytes,
    ) -> Tuple[Dict[str, Any], Optional[str], Optional[int], Optional[int]]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidInstanceError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidInstanceError("request body must be a JSON object")
        if "job" in payload:
            spec = payload["job"]
            stream_id = payload.get("stream_id")
            chunk = payload.get("chunk")
            offset = payload.get("offset")
        else:
            spec, stream_id, chunk, offset = payload, None, None, None
        if not isinstance(spec, dict):
            raise InvalidInstanceError("'job' must be a JSON object")
        if stream_id is not None and not isinstance(stream_id, str):
            raise InvalidInstanceError("'stream_id' must be a string")
        if chunk is not None:
            if not isinstance(chunk, int) or chunk < 1:
                raise InvalidInstanceError("'chunk' must be a positive integer")
        if offset is not None:
            if not isinstance(offset, int) or offset < 0:
                raise InvalidInstanceError("'offset' must be a non-negative integer")
        return spec, stream_id, chunk, offset

    def _apply_deadline_cap(self, job: EnumerationJob) -> EnumerationJob:
        cap = self.max_deadline
        if cap is None:
            return job
        if job.deadline is None or job.deadline > cap:
            return dataclasses.replace(job, deadline=cap)
        return job

    def _resolve_resume(
        self, job: EnumerationJob, stream_id: Optional[str]
    ) -> Tuple[int, bool, Optional[bytes]]:
        """Load the checkpointed offset (and search-state snapshot, for
        suspendable kinds) for ``stream_id`` — ``(0, False, None)`` when
        fresh.  A checkpoint taken for a different job (kind, backend or
        instance fingerprint) raises :class:`CursorStateError`."""
        if stream_id is None or self.store is None:
            return 0, False, None
        state = self.store.load_cursor(stream_id)
        if state is None:
            return 0, False, None
        try:
            checkpointed = EnumerationJob.from_dict(state["job"])
            offset = int(state["offset"])
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise InvalidInstanceError(
                f"corrupt checkpoint for stream {stream_id!r}: {exc}"
            ) from exc
        if (
            checkpointed.kind != job.kind
            or checkpointed.backend != job.backend
            or job_fingerprint(checkpointed) != job_fingerprint(job)
        ):
            raise CursorStateError(
                f"stream {stream_id!r} is checkpointed for a different job "
                f"(kind={checkpointed.kind!r}, backend={checkpointed.backend!r})"
            )
        snapshot: Optional[bytes] = None
        encoded = state.get("snapshot")
        if encoded and kind_spec(job.kind).suspendable:
            try:
                snapshot = base64.b64decode(encoded)
            except (ValueError, TypeError):
                snapshot = None  # unreadable: replay fast-forward instead
            if snapshot is not None:
                from repro.engine.suspend import snapshot_usable

                if not snapshot_usable(snapshot, job):
                    # Damaged, cross-version, or bound to a different
                    # job: drop it here (header check only) and let the
                    # worker fast-forward deterministically instead of
                    # failing the whole stream.
                    snapshot = None
        return offset, True, snapshot

    async def _enumerate(
        self, body: bytes, writer, tenant: Optional[Tenant] = None
    ) -> None:
        started = time.perf_counter()
        try:
            spec, stream_id, chunk_override, explicit_offset = self._parse_enumerate_body(
                body
            )
            spec = self.registry.resolve_spec(spec)
            job = EnumerationJob.from_dict(spec)
            job = self._apply_deadline_cap(job)
            try:
                offset, resumed, resume_snapshot = self._resolve_resume(
                    job, stream_id
                )
            except (InvalidInstanceError, CursorStateError):
                if explicit_offset is None:
                    raise
                # The caller pinned the exact resume position, so a
                # corrupt or mismatched checkpoint is not fatal: run
                # fresh and fast-forward to the requested offset.  The
                # fleet router always migrates with an explicit offset,
                # which is what makes store corruption survivable.
                self.stats.degraded_resumes += 1
                self.metrics.inc("degraded_resumes")
                offset, resumed, resume_snapshot = 0, False, None
            if explicit_offset is not None:
                # The client knows exactly what it consumed (the server
                # checkpoint can run ahead by in-flight bytes the client
                # never read), so an explicit offset wins.  The worker
                # reconciles the snapshot with the override (it restarts
                # when the snapshot is past the requested position).
                offset = explicit_offset
                resumed = resumed or explicit_offset > 0
        except (InvalidInstanceError, ReproError) as exc:
            self.stats.errors += 1
            writer.write(json_response(400, {"event": "error", "error": str(exc)}))
            await writer.drain()
            return
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            self.stats.errors += 1
            writer.write(
                json_response(
                    500, {"event": "error", "error": f"{type(exc).__name__}: {exc}"}
                )
            )
            await writer.drain()
            return
        self.stats.streams += 1
        if resumed:
            self.stats.resumed += 1
        chunk = chunk_override or self.chunk
        state = _StreamState(
            job=job,
            offset=offset,
            stream_id=stream_id,
            total=offset,
            resume_snapshot=resume_snapshot,
            priority=tenant.priority if tenant is not None else 0,
        )

        writer.write(response_head(200, "application/x-ndjson"))
        try:
            try:
                await self._run_stream(state, chunk, writer)
            except _Disconnect:
                self.stats.cancelled += 1
                self._finish_stream(state)  # checkpoint what was delivered
                raise
            except WorkerDied as exc:
                self.stats.errors += 1
                # Persist what was soundly delivered (prefix + checkpoint)
                # so a resume after the failure does not restart from
                # scratch.
                self._finish_stream(state)
                await self._write_event(writer, {"event": "error", "error": str(exc)})
                writer.write(FINAL_CHUNK)
                await writer.drain()
                return
            writer.write(FINAL_CHUNK)
            await writer.drain()
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.observe(job.kind, elapsed)
            # Solutions delivered + compute seconds land in the same
            # sliding window the admission check reads, so the next
            # request sees them (429 once the caps are consumed).
            # compute_seconds is accumulated worker-busy time, not wall
            # clock: queueing behind other tenants in the gate or a
            # slow-reading client must not eat the tenant's quota.
            await self._record_usage(
                tenant,
                solutions=max(0, state.total - state.offset),
                compute_seconds=state.compute_seconds,
            )

    async def _run_stream(self, state: _StreamState, chunk: int, writer) -> None:
        job = state.job
        cap = job.limit  # total stream length bound

        async def accepted(source: str) -> None:
            await self._write_event(
                writer,
                {
                    "event": "accepted",
                    "id": job.job_id,
                    "kind": job.kind,
                    "offset": state.offset,
                    "source": source,
                },
            )

        if cap is not None and state.offset >= cap:
            # The checkpointed stream already reached this job's limit.
            await accepted("replay")
            state.stop_reason = "limit"
            await self._write_end(writer, state)
            return
        # -- tier 1: a complete stored result replays without a worker --
        full = self.tier.lookup(job)
        if full is not None:
            self.stats.replays += 1
            await accepted("replay")
            await self._replay_lines(writer, state, full.lines, full.structures, chunk)
            state.exhausted = full.exhausted
            state.stop_reason = full.stop_reason
            self._finish_stream(state)
            await self._write_end(writer, state)
            return
        # -- tier 2: a stored exact-instance prefix replays, then a
        #    worker continues past it ------------------------------------
        pref = self.tier.prefix(job)
        pref_lines: Tuple[str, ...] = pref.lines if pref is not None else ()
        pref_structures = pref.structures if pref is not None else None
        if pref_lines:
            state.known_lines.extend(pref_lines)
            if pref_structures is not None and len(pref_structures) == len(pref_lines):
                state.known_structures.extend(pref_structures)
            else:
                state.known_structures.extend([None] * len(pref_lines))
        replay_upto = len(pref_lines)
        if cap is not None:
            replay_upto = min(replay_upto, cap)
        replayed = replay_upto > state.offset
        live_start = max(state.offset, replay_upto)
        limit_hit_by_replay = cap is not None and replay_upto >= cap
        live_needed = not limit_hit_by_replay
        if replayed:
            await accepted("partial-replay" if live_needed else "replay")
            visible = [(i, pref_lines[i]) for i in range(state.offset, replay_upto)]
            await self._emit_solutions(writer, state, visible)
        else:
            await accepted("live")
        if not live_needed:
            self.stats.replays += 1
            state.exhausted = False
            state.stop_reason = "limit"
            self._finish_stream(state)
            await self._write_end(writer, state)
            return
        if state.offset > len(pref_lines):
            # Resuming past what the store knows: the worker fast-forwards
            # and the prefix [len(pref_lines), offset) stays unknown.
            state.contiguous = False
        state.cached = False
        self.stats.live_runs += 1
        await self._stream_live(writer, state, live_start, chunk)
        self._finish_stream(state)
        await self._write_end(writer, state)

    # ------------------------------------------------------------------
    # stream segments
    # ------------------------------------------------------------------
    async def _write_event(self, writer, event: Dict[str, Any]) -> None:
        if writer.is_closing():
            raise _Disconnect
        writer.write(encode_event(event))
        try:
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            raise _Disconnect from exc

    async def _emit_solutions(self, writer, state: _StreamState, positioned) -> None:
        """Write ``(position, line)`` events and advance the stream total."""
        if not positioned:
            return
        if writer.is_closing():
            raise _Disconnect
        out = bytearray()
        for position, line in positioned:
            out += encode_event({"event": "solution", "seq": position, "line": line})
            state.total = position + 1
            self.stats.solutions += 1
        writer.write(bytes(out))
        try:
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            raise _Disconnect from exc

    async def _replay_lines(
        self, writer, state: _StreamState, lines, structures, chunk: int
    ) -> None:
        state.known_lines = list(lines)
        if structures is not None and len(structures) == len(lines):
            state.known_structures = list(structures)
        else:
            state.known_structures = [None] * len(lines)
        # Replays have no worker pacing to respect; batch writes harder
        # (drain() still applies socket backpressure per batch).
        step = max(chunk, 256)
        for start in range(state.offset, len(lines), step):
            batch = [
                (i, lines[i]) for i in range(start, min(start + step, len(lines)))
            ]
            await self._emit_solutions(writer, state, batch)
        state.total = max(state.total, len(lines))

    async def _stream_live(
        self, writer, state: _StreamState, live_start: int, chunk: int
    ) -> None:
        """Drive one worker stream; crashed workers are replaced in place.

        Suspendable kinds ship a search-state snapshot with every chunk,
        so when a worker process dies mid-stream the replacement resumes
        from the last delivered chunk boundary in O(state) — the client
        sees an uninterrupted solution stream.  Replay-only kinds
        restart the replacement with an offset fast-forward instead.
        """
        assert self._pool is not None and self._gate is not None
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        position = live_start
        cadence = self.checkpoint_every
        if state.stream_id is None or self.store is None:
            cadence = None  # nowhere (or no identity) to checkpoint under
        next_checkpoint = position + cadence if cadence is not None else None
        snapshot = None
        if state.resume_snapshot is not None:
            snapshot = state.resume_snapshot
        replacements = 0
        async with self._gate.slot(state.priority):
            while True:  # one iteration per worker (original + replacements)
                handle = self._pool.acquire()
                try:
                    handle.start_stream(state.job, position, chunk, snapshot)
                    while True:
                        # The recv wait is the worker computing its next
                        # chunk, so its sum approximates worker-busy time
                        # — the compute-seconds charge.  Time queued in
                        # the gate or blocked on a slow-reading client
                        # (drain() below) burns no worker and is free.
                        recv_started = time.perf_counter()
                        msg = await loop.run_in_executor(self._executor, handle.recv)
                        state.compute_seconds += time.perf_counter() - recv_started
                        if msg[0] == "chunk":
                            lines, structures, snap = msg[1], msg[2], msg[3]
                            batch = []
                            for line, structure in zip(lines, structures):
                                if state.contiguous and position == len(
                                    state.known_lines
                                ):
                                    state.known_lines.append(line)
                                    state.known_structures.append(structure)
                                batch.append((position, line))
                                position += 1
                            if snap is not None:
                                # Freeze now: the snapshot matches the
                                # post-batch position, which is what
                                # state.total becomes even if the client
                                # disconnects mid-write below.
                                state.last_snapshot = snap
                                state.last_snapshot_pos = position
                            try:
                                await self._emit_solutions(writer, state, batch)
                            except _Disconnect:
                                handle.cancel()
                                await loop.run_in_executor(
                                    self._executor, handle.drain_to_end
                                )
                                raise
                            handle.credit()
                            if (
                                next_checkpoint is not None
                                and position >= next_checkpoint
                            ):
                                # Credit first: the checkpoint write
                                # overlaps the worker computing its next
                                # chunk instead of stalling it.
                                await self._checkpoint_midstream(state)
                                next_checkpoint = position + cadence
                        elif msg[0] == "end":
                            meta = msg[1]
                            if meta.get("error"):
                                raise WorkerDied(meta["error"])
                            state.exhausted = bool(meta.get("exhausted"))
                            state.stop_reason = meta.get("stop_reason")
                            snap = meta.get("snapshot")
                            if snap is not None:
                                state.last_snapshot = snap
                                state.last_snapshot_pos = position
                            return
                except WorkerDied as exc:
                    if handle.alive or replacements >= 2:
                        # A job-level error (deterministic) or too many
                        # process deaths: surface it.
                        raise
                    replacements += 1
                    self.stats.worker_replacements += 1
                    # Resume on a fresh worker from the last chunk
                    # boundary: O(state) via the snapshot when we hold
                    # one at exactly `position`, else offset replay.
                    if (
                        state.last_snapshot is not None
                        and state.last_snapshot_pos == position
                    ):
                        snapshot = state.last_snapshot
                    else:
                        snapshot = None
                    _ = exc  # retry with the replacement worker
                    continue
                finally:
                    if self._pool is not None:
                        self._pool.release(handle)
                    else:  # pragma: no cover - server stopped mid-stream
                        handle.close()

    async def _checkpoint_midstream(self, state: _StreamState) -> None:
        """Persist a cursor at the current chunk boundary (off the loop).

        Cheap on purpose — no prefix digest, no tier store, just the
        job + offset (+ the search snapshot frozen at exactly this
        boundary), which is everything a surviving replica needs to
        thaw the stream after this process is SIGKILLed mid-stream.
        The payload is captured synchronously; only the atomic disk
        write runs in the executor.
        """
        assert self.store is not None and state.stream_id is not None
        checkpoint: Dict[str, Any] = {
            "version": 1,
            "job": state.job.to_dict(),
            "offset": state.total,
            "digest": None,
        }
        if (
            state.last_snapshot is not None
            and state.last_snapshot_pos == state.total
        ):
            checkpoint["snapshot"] = base64.b64encode(state.last_snapshot).decode(
                "ascii"
            )
        elif state.resume_snapshot is not None and state.total == state.offset:
            checkpoint["snapshot"] = base64.b64encode(
                state.resume_snapshot
            ).decode("ascii")
        store, stream_id = self.store, state.stream_id
        await asyncio.get_running_loop().run_in_executor(
            self._executor, store.save_cursor, stream_id, checkpoint
        )
        self.stats.checkpoints += 1

    # ------------------------------------------------------------------
    # completion: persist results + checkpoints
    # ------------------------------------------------------------------
    def _finish_stream(self, state: _StreamState) -> None:
        """Store the known prefix and update the stream's checkpoint."""
        job = state.job
        known = len(state.known_lines)
        if state.contiguous and known and not state.cached:
            complete = state.exhausted and known >= state.total
            structures: Optional[Tuple[Any, ...]] = tuple(state.known_structures)
            if any(s is None for s in structures):
                structures = None
            result = JobResult(
                job_id=job.job_id,
                kind=job.kind,
                lines=tuple(state.known_lines),
                exhausted=complete,
                stop_reason=None if complete else "limit",
                elapsed=0.0,
                ops=0,
                structures=structures,
            )
            self.tier.store(job, result)
        if state.stream_id is None or self.store is None:
            return
        if state.exhausted:
            self.store.drop_cursor(state.stream_id)
            return
        digest: Optional[str] = None
        if state.contiguous and known >= state.total:
            hasher = hashlib.sha256()
            for line in state.known_lines[: state.total]:
                hasher.update(line.encode())
                hasher.update(b"\n")
            digest = hasher.hexdigest()
        checkpoint: Dict[str, Any] = {
            "version": 1,
            "job": job.to_dict(),
            "offset": state.total,
            "digest": digest,
        }
        # Embed the search state frozen at exactly the checkpoint offset
        # (the last chunk boundary): the next request with this
        # stream_id resumes in O(state) instead of replaying the prefix.
        snapshot = None
        if state.last_snapshot is not None and state.last_snapshot_pos == state.total:
            snapshot = state.last_snapshot
        elif (
            state.resume_snapshot is not None and state.total == state.offset
        ):
            # No live progress this round: re-issue the inherited
            # snapshot so checkpoint chains stay O(state).
            snapshot = state.resume_snapshot
        if snapshot is not None:
            checkpoint["snapshot"] = base64.b64encode(snapshot).decode("ascii")
        self.store.save_cursor(state.stream_id, checkpoint)

    async def _write_end(self, writer, state: _StreamState) -> None:
        await self._write_event(
            writer,
            {
                "event": "end",
                "count": state.total - state.offset,
                "total": state.total,
                "exhausted": state.exhausted,
                "stop_reason": state.stop_reason,
                "cached": state.cached,
                # Worker-busy time for this stream: the fleet router
                # reads this to charge the owning tenant fleet-wide.
                "compute_seconds": round(state.compute_seconds, 6),
            },
        )


class ServerThread:
    """Run an :class:`EnumerationServer` on a background event loop.

    For embedding the service in synchronous programs — the CLI smoke
    client, the tests and the benchmarks drive the server through this.

    Examples
    --------
    ::

        with ServerThread(EnumerationServer(workers=2)) as server:
            client = ServeClient(port=server.port)
            ...

    The context exit stops the loop and joins the thread.
    """

    def __init__(self, server: EnumerationServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        """Start the loop thread and block until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._started.is_set():  # pragma: no cover - startup is fast
            raise RuntimeError("server did not start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:  # pragma: no cover - bind errors
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    @property
    def port(self) -> int:
        """The server's bound port."""
        return self.server.port

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

"""Path enumeration (Section 3 of the paper).

:mod:`repro.paths.read_tarjan` is the linear-delay enumerator (Algorithm
1, Theorem 12) in directed, undirected and set-to-set variants;
:mod:`repro.paths.simple` is the backtracking baseline / oracle;
:mod:`repro.paths.yen` ranks loopless paths by weight (Yen [35]) for
the ranked-enumeration layer.
"""

from repro.paths.read_tarjan import (
    Path,
    build_set_path_digraph,
    build_set_path_digraph_directed,
    enumerate_set_paths,
    enumerate_set_paths_directed,
    enumerate_st_paths,
    enumerate_st_paths_undirected,
    set_path_events,
    set_path_events_directed,
    st_path_events,
)
from repro.paths.simple import (
    backtracking_st_paths,
    backtracking_st_paths_undirected,
    count_st_paths,
)
from repro.paths.yen import (
    k_shortest_path_weights,
    yen_k_shortest_paths,
    yen_k_shortest_paths_directed,
)

__all__ = [
    "backtracking_st_paths",
    "backtracking_st_paths_undirected",
    "build_set_path_digraph",
    "build_set_path_digraph_directed",
    "count_st_paths",
    "enumerate_set_paths",
    "enumerate_set_paths_directed",
    "enumerate_st_paths",
    "enumerate_st_paths_undirected",
    "k_shortest_path_weights",
    "Path",
    "set_path_events",
    "set_path_events_directed",
    "st_path_events",
    "yen_k_shortest_paths",
    "yen_k_shortest_paths_directed",
]

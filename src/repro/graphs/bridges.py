"""Bridge finding and 2-edge-connected components (Tarjan, iterative).

Bridges are the workhorse of the paper's "improved enumeration tree":

* Lemma 16 — a ``V(T)``-``w`` path is unique iff all its edges are bridges;
* Lemma 24 — same statement in the contracted multigraph ``G/E(F)``;
* Lemma 30 — same statement inside ``G[C_T ∪ W]`` for terminal Steiner
  trees.

The implementation is multiedge-aware: a pair of parallel edges is a cycle
of length two, so neither copy is a bridge.  This is essential for the
Steiner-forest variant, where the paper explicitly warns that contracted
multiedges "are not considered as bridges even if removing these edges
increases the number of connected components" when treated as a single
edge.

The classic recursive low-link algorithm is converted to an explicit stack
so it handles the deep recursions produced by path-shaped graphs without
hitting Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph

Vertex = Hashable


def find_bridges(graph: Graph, meter=None) -> Set[int]:
    """Return the set of edge ids that are bridges of ``graph``.

    Runs in O(n + m).  Parallel edges are never bridges.  Works on
    disconnected graphs (each component is processed independently).

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
    >>> [g.endpoints(e) for e in sorted(find_bridges(g))]
    [('c', 'd')]
    """
    index: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    bridges: Set[int] = set()
    counter = 0

    for root in graph.vertices():
        if root in index:
            continue
        # stack entries: (vertex, entering edge id or None, iterator of incident edges)
        index[root] = low[root] = counter
        counter += 1
        stack: List[Tuple[Vertex, object, object]] = [
            (root, None, iter(list(graph.incident(root))))
        ]
        while stack:
            v, enter_eid, it = stack[-1]
            advanced = False
            for edge in it:
                if meter is not None:
                    meter.tick()
                if edge.eid == enter_eid:
                    # Skip only the tree edge we came in on; a *parallel*
                    # edge to the parent has a different id and correctly
                    # lowers low[v], killing the bridge.
                    continue
                u = edge.other(v)
                if u not in index:
                    index[u] = low[u] = counter
                    counter += 1
                    stack.append((u, edge.eid, iter(list(graph.incident(u)))))
                    advanced = True
                    break
                low[v] = min(low[v], index[u])
            if not advanced:
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    low[parent] = min(low[parent], low[v])
                    if low[v] > index[parent]:
                        bridges.add(enter_eid)  # type: ignore[arg-type]
    return bridges


def two_edge_connected_components(graph: Graph, meter=None) -> List[Set[Vertex]]:
    """Vertex sets of the 2-edge-connected components of ``graph``.

    Equivalently: the connected components after removing all bridges.
    Used by the Steiner-forest enumerator to test in one pass, for every
    terminal pair, whether its two terminals coincide in ``(G/E(F))/B``
    (Lemma 24's uniqueness test).
    """
    bridges = find_bridges(graph, meter=meter)
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for root in graph.vertices():
        if root in seen:
            continue
        comp = {root}
        stack = [root]
        seen.add(root)
        while stack:
            v = stack.pop()
            for edge in graph.incident(v):
                if meter is not None:
                    meter.tick()
                if edge.eid in bridges:
                    continue
                u = edge.other(v)
                if u not in seen:
                    seen.add(u)
                    comp.add(u)
                    stack.append(u)
        components.append(comp)
    return components


def two_edge_component_labels(graph: Graph, meter=None) -> Dict[Vertex, int]:
    """Map each vertex to the index of its 2-edge-connected component."""
    labels: Dict[Vertex, int] = {}
    for i, comp in enumerate(two_edge_connected_components(graph, meter=meter)):
        for v in comp:
            labels[v] = i
    return labels

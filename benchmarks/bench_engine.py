"""Engine smoke benchmark: batch throughput, determinism, cache, shards.

Run directly (CI does; budget ~30 s)::

    PYTHONPATH=src python benchmarks/bench_engine.py

or through pytest (``pytest benchmarks/bench_engine.py``).  Either way it

* pushes a mixed batch of 24 jobs (Steiner trees / forests / terminal /
  directed variants plus s-t paths) through :func:`repro.engine.run_batch`
  on 1 and 4 workers and **fails hard if the outputs differ** — the
  engine's determinism contract is part of the benchmark;
* reports jobs/s and solutions/s per worker count (wall-clock speedup is
  hardware-dependent: on a single-core container the parallel run only
  pays fork overhead, on a 4-core box it approaches 4x for this
  embarrassingly parallel batch);
* measures warm-cache serving (every job a hit) and the sharded
  decomposition of one large Steiner-tree job.
"""

from __future__ import annotations

import os
import random
import sys
import time

from repro.bench.harness import measure_batch, print_table
from repro.bench.workloads import (
    directed_size_sweep,
    forest_size_sweep,
    steiner_tree_size_sweep,
    terminal_steiner_size_sweep,
)
from repro.engine import EnumerationJob, InstanceCache, run_batch

#: Wall-clock budget (seconds) the suite is scaled to.  The default 30 s
#: matches the historical hardcoded sizing; CI and local runs tune it
#: via the environment (e.g. ``BENCH_BUDGET_S=10`` for a quick smoke)
#: without editing the script.  The per-job solution cap scales linearly
#: with the budget, which keeps every run deterministic — a wall-clock
#: deadline would stop jobs at machine-dependent points and break the
#: cross-worker digest comparison.
BENCH_BUDGET_S = float(os.environ.get("BENCH_BUDGET_S", "30"))

LIMIT = max(20, int(200 * BENCH_BUDGET_S / 30.0))  # per-job solution cap


def build_jobs():
    """A mixed batch of 24 jobs spanning four problem kinds plus paths."""
    jobs = []
    for inst in steiner_tree_size_sweep()[:3]:
        jobs.append(
            EnumerationJob.steiner_tree(
                inst.graph, inst.terminals, limit=LIMIT, job_id=f"st-{inst.name}"
            )
        )
    for inst in forest_size_sweep()[:3]:
        jobs.append(
            EnumerationJob.steiner_forest(
                inst.graph, inst.families, limit=LIMIT, job_id=f"sf-{inst.name}"
            )
        )
    for inst in terminal_steiner_size_sweep()[:3]:
        jobs.append(
            EnumerationJob.terminal_steiner(
                inst.graph, inst.terminals, limit=LIMIT, job_id=f"ts-{inst.name}"
            )
        )
    for inst in directed_size_sweep()[:3]:
        jobs.append(
            EnumerationJob.directed_steiner(
                inst.digraph,
                inst.terminals,
                inst.root,
                limit=LIMIT,
                job_id=f"ds-{inst.name}",
            )
        )
    base = steiner_tree_size_sweep()[0]
    terminals = list(base.terminals)
    for i, source in enumerate(terminals):
        for target in terminals[i + 1 :]:
            jobs.append(
                EnumerationJob.st_path(
                    base.graph, source, target, limit=LIMIT, job_id=f"p-{source}-{target}"
                )
            )
    while len(jobs) < 24:  # top up with relabeled tree jobs
        inst = steiner_tree_size_sweep()[len(jobs) % 3]
        jobs.append(
            EnumerationJob.steiner_tree(
                inst.graph, inst.terminals, limit=LIMIT, job_id=f"st-extra-{len(jobs)}"
            )
        )
    return jobs


def run_smoke(out=sys.stdout) -> dict:
    """Execute the full smoke suite; returns the measurements."""
    jobs = build_jobs()
    rows = []
    measurements = {}
    for workers in (1, 4):
        m = measure_batch(jobs, workers=workers, label=f"w{workers}")
        measurements[workers] = m
        rows.append(
            (
                m.label,
                m.jobs,
                m.solutions,
                m.wall_seconds,
                m.jobs_per_second,
                m.solutions_per_second,
            )
        )
    base = measurements[1]
    if measurements[4].digest != base.digest:
        raise AssertionError(
            "engine output differs between 1 and 4 workers — determinism broken"
        )
    speedup = base.wall_seconds / max(measurements[4].wall_seconds, 1e-9)
    print_table(
        f"Engine batch throughput ({base.jobs} mixed jobs; "
        f"4-worker speedup {speedup:.2f}x)",
        ("run", "jobs", "solutions", "wall s", "jobs/s", "sols/s"),
        rows,
        out=out,
    )

    # Warm-cache serving: run the same batch twice through one cache.
    cache = InstanceCache(maxsize=64)
    measure_batch(jobs, workers=1, cache=cache, label="cold")
    warm = measure_batch(jobs, workers=1, cache=cache, label="warm")
    if warm.digest != base.digest:
        raise AssertionError("cached results differ from enumerated results")
    measurements["warm"] = warm
    print_table(
        f"Warm-cache serving ({warm.cache_hits}/{warm.jobs} jobs from cache)",
        ("run", "wall s", "jobs/s"),
        [("warm", warm.wall_seconds, warm.jobs_per_second)],
        out=out,
    )

    # Sharded decomposition of one dense job (exhaustive, ~6.8k solutions;
    # the size sweep instances have far too many minimal trees to exhaust).
    # Fixed cost of a few seconds, so skipped when the budget is squeezed.
    if BENCH_BUDGET_S < 10:
        return measurements
    rng = random.Random(2022)
    n = 12
    edges = [
        (f"v{u}", f"v{v}")
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.35
    ]
    terminals = ["v0", f"v{n // 2}", f"v{n - 1}"]
    plain = EnumerationJob.steiner_tree(edges, terminals)
    sharded = EnumerationJob.steiner_tree(edges, terminals, shards=4)
    start = time.perf_counter()
    whole = run_batch([plain], workers=1)[0]
    plain_wall = time.perf_counter() - start
    start = time.perf_counter()
    pieces = run_batch([sharded], workers=4)[0]
    shard_wall = time.perf_counter() - start
    if set(whole.lines) != set(pieces.lines) or len(pieces.lines) != len(
        set(pieces.lines)
    ):
        raise AssertionError("sharded enumeration is not an exact partition")
    print_table(
        f"Single-job sharding ({len(whole.lines)} solutions, 4 shards)",
        ("mode", "wall s"),
        [("whole", plain_wall), ("sharded x4", shard_wall)],
        out=out,
    )
    return measurements


def test_engine_smoke():
    """Pytest entry point: the smoke suite's assertions must hold."""
    measurements = run_smoke(out=sys.stdout)
    assert measurements[1].digest == measurements[4].digest
    assert measurements["warm"].cache_hits == measurements["warm"].jobs


if __name__ == "__main__":
    run_smoke()

"""Audit the public API surface for missing docstrings.

Walks every module under ``repro`` and reports public objects without a
docstring, mirroring the ruff/pydocstyle rules the lint gate enforces
on ``src/`` (D100 module, D101 class, D102 method, D103 function, D104
package):

* module and package docstrings;
* module-level public functions and classes *defined in that module*
  (re-exports are the defining module's responsibility);
* public methods, properties, class/static methods in a public class's
  own ``__dict__`` (dunders and ``_private`` names are exempt, matching
  pydocstyle's "public" definition).

Exit status 0 when the surface is fully documented, 1 otherwise — CI's
docs job runs this before building the site, and
``tests/test_docs.py`` keeps it green in tier-1.

Usage::

    PYTHONPATH=src python tools/audit_docstrings.py [--package repro]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from typing import Iterator, List, Tuple


def iter_modules(package_name: str) -> Iterator[str]:
    """Yield ``package_name`` and every submodule name under it."""
    package = importlib.import_module(package_name)
    yield package_name
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        yield info.name


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def audit_module(module_name: str) -> List[Tuple[str, str]]:
    """Missing-docstring findings for one module: ``(where, what)``."""
    module = importlib.import_module(module_name)
    findings: List[Tuple[str, str]] = []
    if not (module.__doc__ or "").strip():
        kind = "package" if hasattr(module, "__path__") else "module"
        findings.append((module_name, f"undocumented {kind}"))
    for name, obj in vars(module).items():
        if not _is_public(name):
            continue
        if inspect.isfunction(obj) and obj.__module__ == module_name:
            if not (obj.__doc__ or "").strip():
                findings.append((f"{module_name}.{name}", "undocumented function"))
        elif inspect.isclass(obj) and obj.__module__ == module_name:
            if not (obj.__doc__ or "").strip():
                findings.append((f"{module_name}.{name}", "undocumented class"))
            for attr_name, attr in vars(obj).items():
                if not _is_public(attr_name):
                    continue
                target = None
                if inspect.isfunction(attr):
                    target = attr
                elif isinstance(attr, (classmethod, staticmethod)):
                    target = attr.__func__
                elif isinstance(attr, property):
                    target = attr.fget
                if target is not None and not (target.__doc__ or "").strip():
                    findings.append(
                        (f"{module_name}.{name}.{attr_name}", "undocumented method")
                    )
    return findings


def main(argv=None) -> int:
    """CLI entry point; prints findings and returns the exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--package", default="repro", help="root package to audit")
    args = parser.parse_args(argv)
    findings: List[Tuple[str, str]] = []
    for module_name in sorted(set(iter_modules(args.package))):
        findings.extend(audit_module(module_name))
    if findings:
        print(f"{len(findings)} public object(s) lack docstrings:", file=sys.stderr)
        for where, what in sorted(findings):
            print(f"  {where}: {what}", file=sys.stderr)
        return 1
    print(f"docstring audit clean for package {args.package!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Chordless (induced) *s*-*t* path enumeration.

Table 1 of the paper cites Conte et al. [8] for minimal *induced*
Steiner subgraphs with at most three terminals.  For two terminals the
problem has a crisp classical form: the minimal induced Steiner
subgraphs of ``(G, {s, t})`` are exactly the **chordless s-t paths** of
``G`` (take any minimal solution, walk a shortest s-t path inside it —
that path is induced, and minimality collapses the solution onto it).

This module enumerates chordless paths with polynomial delay by the
standard certificate-guided backtracking:

* A chordless prefix ``(v_1, …, v_k)`` extends to a full chordless
  ``s``-``t`` path iff ``t`` is reachable from ``v_k`` in the graph
  obtained by deleting ``N[v_1], …, N[v_{k-1}]`` except ``v_k`` itself —
  because a *shortest* such completion is automatically induced.
* Branching only on extendible successors means every recursion node
  produces at least one solution below it, so the delay is
  ``O(n (n + m))``.

This covers the two-terminal row of the paper's Table 1 without the
claw-free restriction that Section 7 needs for general terminal counts;
the three-terminal case of [8] needs that paper's own machinery and is
out of scope (documented in DESIGN.md §5).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import InvalidInstanceError, VertexNotFound
from repro.graphs.graph import Graph

Vertex = Hashable


def is_chordless_path(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """True if ``vertices`` spell a simple path with no chords in ``G``.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> is_chordless_path(g, [0, 2, 3])
    True
    >>> is_chordless_path(g, [0, 1, 2, 3])  # chord 0-2
    False
    """
    path = list(vertices)
    if len(set(path)) != len(path) or not path:
        return False
    for v in path:
        if v not in graph:
            return False
    for i, u in enumerate(path):
        for j in range(i + 1, len(path)):
            adjacent = graph.has_edge_between(u, path[j])
            if j == i + 1 and not adjacent:
                return False
            if j > i + 1 and adjacent:
                return False
    return True


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


def _reachable_avoiding(
    graph: Graph, start: Vertex, blocked: Set[Vertex], meter=None
) -> Set[Vertex]:
    """Vertices reachable from ``start`` without entering ``blocked``."""
    if start in blocked:
        return set()
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            _tick(meter)
            if u not in seen and u not in blocked:
                seen.add(u)
                stack.append(u)
    return seen


class ChordlessPathSearch:
    """Suspendable machine of chordless ``s``-``t`` path enumeration.

    One :meth:`advance` call returns the next chordless path (a vertex
    tuple in original labels) or ``None`` when exhausted, on either
    backend.  The certificate-guided backtracking state is exactly the
    explicit ``prefix`` + ``(vertex, entering)`` stack the enumeration
    has always used, so :meth:`state` serializes it verbatim;
    :meth:`restore` rebuilds the machine and — on the ``fast`` backend —
    recomputes the body cover counts from the restored prefix (they are
    a pure function of it), leaving the remaining stream byte-identical
    to the uninterrupted run's tail.
    """

    def __init__(
        self,
        graph: Graph,
        source: Vertex,
        target: Vertex,
        meter=None,
        backend: str = "object",
    ) -> None:
        from repro.core.backend import (
            check_backend,
            compile_undirected,
            map_query_vertex,
        )

        check_backend(backend, kind="chordless-path")
        self.graph = graph
        self.meter = meter
        self.backend = backend
        self.source = source
        self.target = target
        self.fast = backend == "fast"
        self.emitted = 0
        self.phase = 0  # 0 = not started, 1 = running, 2 = exhausted
        if self.fast:
            fg, index = compile_undirected(graph)
            self.fg = fg
            self._labels = None if index is None else list(index)
            s = map_query_vertex(index, source) if source in graph else source
            t = map_query_vertex(index, target) if target in graph else target
            if s not in fg:
                raise VertexNotFound(source)
            if t not in fg:
                raise VertexNotFound(target)
            self._s, self._t = s, t
            raw = fg.neighbor_lists()
            self._raw = raw
            # Distinct neighbours, pre-sorted once into the object
            # backend's ``sorted(neighbor_set(v), key=repr)`` order.
            self._adj: List[List[int]] = [sorted(set(lst), key=repr) for lst in raw]
            n = len(raw)
            self._cov = [0] * n  # closed-neighbourhood cover counts (body)
            self._tip_mark = [0] * n  # node-level stamp: N[tip] ∪ {tip}
            self._visited = [0] * n  # probe-level stamp: sweep marks
            self._node_stamp = 0
            self._probe_stamp = 0
        else:
            if source not in graph:
                raise VertexNotFound(source)
            if target not in graph:
                raise VertexNotFound(target)
            self._s, self._t = source, target
        self.prefix: List[Vertex] = []
        self.stack: List[Tuple[Vertex, bool]] = [(self._s, True)]

    # ------------------------------------------------------------------
    def advance(self) -> Optional[Tuple[Vertex, ...]]:
        """The next chordless path, or ``None`` when exhausted."""
        if self.phase == 0:
            self.phase = 1
            if self._s == self._t:
                self.phase = 2
                self.emitted += 1
                return (self.source,)
        if self.phase == 2:
            return None
        path = self._run_fast() if self.fast else self._run_object()
        if path is None:
            self.phase = 2
            return None
        self.emitted += 1
        return path

    def _emit(self, prefix: List[int]) -> Tuple[Vertex, ...]:
        if self._labels is None:
            return tuple(prefix)
        labels = self._labels
        return tuple(labels[v] for v in prefix)

    def _run_object(self) -> Optional[Tuple[Vertex, ...]]:
        graph, meter, target = self.graph, self.meter, self._t
        prefix, stack = self.prefix, self.stack

        def extendible(tip: Vertex) -> bool:
            blocked: Set[Vertex] = set()
            for v in prefix:
                blocked.add(v)
                blocked.update(graph.neighbor_set(v))
                _tick(meter, graph.degree(v))
            blocked.discard(tip)
            if target in blocked:
                return False
            return target in _reachable_avoiding(graph, tip, blocked, meter)

        while stack:
            v, entering = stack.pop()
            if not entering:
                prefix.pop()
                continue
            prefix.append(v)
            stack.append((v, False))
            if v == target:
                return tuple(prefix)
            body = prefix[:-1]
            forbidden: Set[Vertex] = set(body)
            for p in body:
                forbidden.update(graph.neighbor_set(p))
                _tick(meter, graph.degree(p))
            candidates = [
                u
                for u in sorted(graph.neighbor_set(v), key=repr)
                if u not in forbidden
            ]
            # push in reverse so exploration follows sorted order
            for u in reversed(candidates):
                if extendible(u):
                    stack.append((u, True))
        return None

    def _run_fast(self) -> Optional[Tuple[Vertex, ...]]:
        """Kernel-native steps: the two O(|prefix| · Δ) set unions per
        search node (candidate filter + extendibility ``blocked`` set)
        are flat integer arrays maintained incrementally — ``cov[u]``
        counts how many *body* vertices cover ``u`` with their closed
        neighbourhood, the tip's neighbourhood is stamped once per node,
        and the reachability sweep early-exits at the target."""
        meter, target = self.meter, self._t
        prefix, stack = self.prefix, self.stack
        raw, adj_sorted = self._raw, self._adj
        cov, tip_mark, visited = self._cov, self._tip_mark, self._visited

        def cover(v: int, delta: int) -> None:
            cov[v] += delta
            for u in adj_sorted[v]:
                cov[u] += delta
            _tick(meter, len(adj_sorted[v]))

        def extendible(u: int) -> bool:
            # blocked = body cover ∪ N[tip] ∪ {tip}, minus ``u`` itself
            # (the object backend's ``blocked.discard(tip)``).
            node_stamp = self._node_stamp
            blocked_t = cov[target] > 0 or tip_mark[target] == node_stamp
            if blocked_t and target != u:
                return False
            if u == target:
                return True
            self._probe_stamp += 1
            probe_stamp = self._probe_stamp
            sweep = [u]
            visited[u] = probe_stamp
            while sweep:
                v = sweep.pop()
                for w in raw[v]:
                    _tick(meter)
                    if w == target:
                        return True
                    if (
                        visited[w] != probe_stamp
                        and cov[w] == 0
                        and tip_mark[w] != node_stamp
                        and w != u
                    ):
                        visited[w] = probe_stamp
                        sweep.append(w)
            return False

        while stack:
            v, entering = stack.pop()
            if not entering:
                prefix.pop()
                if prefix:
                    cover(prefix[-1], -1)  # the new tip leaves the body
                continue
            if prefix:
                cover(prefix[-1], +1)  # the old tip joins the body
            prefix.append(v)
            stack.append((v, False))
            if v == target:
                return self._emit(prefix)
            self._node_stamp += 1
            node_stamp = self._node_stamp
            tip_mark[v] = node_stamp
            for u in adj_sorted[v]:
                tip_mark[u] = node_stamp
            _tick(meter, len(adj_sorted[v]))
            survivors = [
                u for u in adj_sorted[v] if cov[u] == 0 and extendible(u)
            ]
            for u in reversed(survivors):
                stack.append((u, True))
        return None

    # ------------------------------------------------------------------
    # snapshot plumbing
    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        """Search-stack depth (header bookkeeping for inspection tools)."""
        return len(self.stack)

    def state(self) -> Dict[str, Any]:
        """Plain-data search state.

        The prefix and the ``(vertex, entering)`` stack are captured
        verbatim; the kernel arrays (cover counts, stamps) are pure
        functions of the prefix and are recomputed on :meth:`restore`.
        """
        return {
            "source": self.source,
            "target": self.target,
            "backend": self.backend,
            "phase": self.phase,
            "emitted": self.emitted,
            "prefix": list(self.prefix),
            "stack": [tuple(item) for item in self.stack],
        }

    @classmethod
    def restore(
        cls, graph: Graph, state: Dict[str, Any], meter=None
    ) -> "ChordlessPathSearch":
        """Rebuild a machine over ``graph`` from a :meth:`state` dict."""
        machine = cls(
            graph,
            state["source"],
            state["target"],
            meter=meter,
            backend=state["backend"],
        )
        machine.phase = state["phase"]
        machine.emitted = state["emitted"]
        machine.prefix = list(state["prefix"])
        machine.stack = [(v, bool(flag)) for v, flag in state["stack"]]
        if machine.fast:
            # cov is Σ over body vertices of their closed neighbourhoods.
            cov, adj_sorted = machine._cov, machine._adj
            for v in machine.prefix[:-1]:
                cov[v] += 1
                for u in adj_sorted[v]:
                    cov[u] += 1
        return machine


def enumerate_chordless_st_paths(
    graph: Graph, source: Vertex, target: Vertex, meter=None, backend: str = "object"
) -> Iterator[Tuple[Vertex, ...]]:
    """All chordless ``source``-``target`` paths, as vertex tuples.

    Deterministic order (successors explored in ``repr`` order).  The
    trivial one-vertex path is yielded when ``source == target``.
    Both backends drain a :class:`ChordlessPathSearch` machine, which is
    the suspendable form of this enumeration.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> sorted(enumerate_chordless_st_paths(g, 0, 3))
    [(0, 2, 3)]

    The walk ``(0, 1, 2, 3)`` is *not* chordless: edge ``0``-``2`` is a
    chord, so the minimal induced connector is the short route only.
    """
    machine = ChordlessPathSearch(
        graph, source, target, meter=meter, backend=backend
    )
    while True:
        path = machine.advance()
        if path is None:
            return
        yield path


def enumerate_minimal_induced_steiner_pairs(
    graph: Graph, source: Vertex, target: Vertex
) -> Iterator[frozenset]:
    """Minimal induced Steiner subgraphs of ``(G, {s, t})`` as vertex sets.

    These are exactly the vertex sets of chordless ``s``-``t`` paths —
    the two-terminal case of the paper's Induced Steiner Subgraph
    Enumeration, with no claw-free restriction.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> sorted(sorted(s) for s in enumerate_minimal_induced_steiner_pairs(g, 0, 2))
    [[0, 2]]
    """
    for path in enumerate_chordless_st_paths(graph, source, target):
        yield frozenset(path)


def count_chordless_st_paths(graph: Graph, source: Vertex, target: Vertex) -> int:
    """Number of chordless ``source``-``target`` paths."""
    return sum(1 for _ in enumerate_chordless_st_paths(graph, source, target))


def longest_chordless_path_length(
    graph: Graph, source: Vertex, target: Vertex
) -> int:
    """Edge count of a longest chordless ``s``-``t`` path.

    Raises :class:`InvalidInstanceError` when no chordless path exists
    (equivalently, when ``t`` is unreachable from ``s``).
    """
    best = -1
    for path in enumerate_chordless_st_paths(graph, source, target):
        best = max(best, len(path) - 1)
    if best < 0:
        raise InvalidInstanceError(f"no path from {source!r} to {target!r}")
    return best


def brute_force_chordless_st_paths(
    graph: Graph, source: Vertex, target: Vertex
) -> Set[Tuple[Vertex, ...]]:
    """Oracle: filter all simple paths by chordlessness (tests only)."""
    from repro.paths.simple import backtracking_st_paths_undirected

    out: Set[Tuple[Vertex, ...]] = set()
    if source == target:
        return {(source,)}
    for path in backtracking_st_paths_undirected(graph, source, target):
        if is_chordless_path(graph, path.vertices):
            out.add(tuple(path.vertices))
    return out

"""H-fk — Fredman–Khachiyan dualization vs Berge multiplication.

Section 6 ties group Steiner enumeration to Minimal Transversal
Enumeration and cites Fredman–Khachiyan [13] as the best-known
algorithm.  This bench regenerates the comparison between the two
transversal enumerators the library ships:

* Berge multiplication: fast per instance, exponential space;
* the FK incremental loop: one quasi-polynomial duality test per
  solution (incremental delay), polynomial space between tests.

Both must produce identical families (asserted per row).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table
from repro.hypergraph.dualization import (
    are_dual,
    enumerate_minimal_transversals_fk,
)
from repro.hypergraph.hypergraph import (
    enumerate_minimal_transversals,
    random_hypergraph,
)

from benchutil import make_drainer

INSTANCES = [
    ("h6x5", random_hypergraph(6, 5, 3, seed=1)),
    ("h8x6", random_hypergraph(8, 6, 3, seed=2)),
    ("h10x7", random_hypergraph(10, 7, 4, seed=3)),
    ("h12x8", random_hypergraph(12, 8, 4, seed=4)),
]


@pytest.mark.parametrize("name, h", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_berge(benchmark, name, h):
    count = benchmark(make_drainer(lambda: enumerate_minimal_transversals(h)))
    assert count > 0


@pytest.mark.parametrize("name, h", INSTANCES[:3], ids=[n for n, _ in INSTANCES[:3]])
def test_fk_loop(benchmark, name, h):
    count = benchmark(make_drainer(lambda: enumerate_minimal_transversals_fk(h)))
    assert count > 0


def test_agreement_table(benchmark):
    rows = []
    for name, h in INSTANCES:
        berge = set(enumerate_minimal_transversals(h))
        fk = set(enumerate_minimal_transversals_fk(h))
        assert berge == fk
        assert are_dual(h.edges, fk, h.universe)
        rows.append((name, h.num_vertices, h.num_edges, len(berge)))
    print()
    print_table(
        "H-fk: Berge and FK agree on every instance",
        ("instance", "|U|", "|E|", "minimal transversals"),
        rows,
    )
    benchmark(lambda: None)

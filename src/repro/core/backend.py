"""Backend selection for the core enumerators.

Every enumerator in :mod:`repro.core` (and the path layer) accepts a
``backend`` keyword:

* ``"object"`` — the reference implementation over the hashable-vertex
  :class:`repro.graphs.graph.Graph` / :class:`~repro.graphs.digraph.DiGraph`.
* ``"fast"`` — the integer kernel (:mod:`repro.graphs.fastgraph`): the
  instance is compiled once into flat arrays and the hot path/bridge/
  contraction machinery runs on them.

On *integer-compact* instances (vertices are exactly ``0..n-1`` — the
engine's relabeled normal form) the two backends produce byte-identical
solution streams.  Other instances are relabeled transparently before
compilation; the solution *set* is unchanged (edge/arc ids are
preserved, vertex-level solutions are translated back), but the
enumeration *order* may legitimately differ from the object backend's,
whose tie-breaks then depend on the labels' hash order.

The implementations live in :mod:`repro.graphs.fastgraph`; this module
re-exports them at the layer the enumerators import from.
"""

from repro.graphs.fastgraph import (
    BACKENDS,
    check_backend,
    compile_directed,
    compile_undirected,
    map_query_vertex,
    map_query_vertices,
)

__all__ = [
    "BACKENDS",
    "check_backend",
    "compile_directed",
    "compile_undirected",
    "map_query_vertex",
    "map_query_vertices",
]

"""Chordless (induced) *s*-*t* path enumeration.

Table 1 of the paper cites Conte et al. [8] for minimal *induced*
Steiner subgraphs with at most three terminals.  For two terminals the
problem has a crisp classical form: the minimal induced Steiner
subgraphs of ``(G, {s, t})`` are exactly the **chordless s-t paths** of
``G`` (take any minimal solution, walk a shortest s-t path inside it —
that path is induced, and minimality collapses the solution onto it).

This module enumerates chordless paths with polynomial delay by the
standard certificate-guided backtracking:

* A chordless prefix ``(v_1, …, v_k)`` extends to a full chordless
  ``s``-``t`` path iff ``t`` is reachable from ``v_k`` in the graph
  obtained by deleting ``N[v_1], …, N[v_{k-1}]`` except ``v_k`` itself —
  because a *shortest* such completion is automatically induced.
* Branching only on extendible successors means every recursion node
  produces at least one solution below it, so the delay is
  ``O(n (n + m))``.

This covers the two-terminal row of the paper's Table 1 without the
claw-free restriction that Section 7 needs for general terminal counts;
the three-terminal case of [8] needs that paper's own machinery and is
out of scope (documented in DESIGN.md §5).
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Sequence, Set, Tuple

from repro.exceptions import InvalidInstanceError, VertexNotFound
from repro.graphs.graph import Graph

Vertex = Hashable


def is_chordless_path(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """True if ``vertices`` spell a simple path with no chords in ``G``.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> is_chordless_path(g, [0, 2, 3])
    True
    >>> is_chordless_path(g, [0, 1, 2, 3])  # chord 0-2
    False
    """
    path = list(vertices)
    if len(set(path)) != len(path) or not path:
        return False
    for v in path:
        if v not in graph:
            return False
    for i, u in enumerate(path):
        for j in range(i + 1, len(path)):
            adjacent = graph.has_edge_between(u, path[j])
            if j == i + 1 and not adjacent:
                return False
            if j > i + 1 and adjacent:
                return False
    return True


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


def _reachable_avoiding(
    graph: Graph, start: Vertex, blocked: Set[Vertex], meter=None
) -> Set[Vertex]:
    """Vertices reachable from ``start`` without entering ``blocked``."""
    if start in blocked:
        return set()
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            _tick(meter)
            if u not in seen and u not in blocked:
                seen.add(u)
                stack.append(u)
    return seen


def enumerate_chordless_st_paths(
    graph: Graph, source: Vertex, target: Vertex, meter=None, backend: str = "object"
) -> Iterator[Tuple[Vertex, ...]]:
    """All chordless ``source``-``target`` paths, as vertex tuples.

    Deterministic order (successors explored in ``repr`` order).  The
    trivial one-vertex path is yielded when ``source == target``.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> sorted(enumerate_chordless_st_paths(g, 0, 3))
    [(0, 2, 3)]

    The walk ``(0, 1, 2, 3)`` is *not* chordless: edge ``0``-``2`` is a
    chord, so the minimal induced connector is the short route only.
    """
    from repro.core.backend import check_backend, compile_undirected, map_query_vertex

    check_backend(backend)
    if backend == "fast":
        fg, index = compile_undirected(graph)
        s = map_query_vertex(index, source) if source in graph else source
        t = map_query_vertex(index, target) if target in graph else target
        inner = _fast_chordless_st_paths(fg, s, t, meter)
        if index is None:
            yield from inner
        else:
            labels = list(index)
            for path in inner:
                yield tuple(labels[v] for v in path)
        return
    if source not in graph:
        raise VertexNotFound(source)
    if target not in graph:
        raise VertexNotFound(target)
    if source == target:
        yield (source,)
        return

    def extendible(prefix: List[Vertex], tip: Vertex) -> bool:
        """Can ``prefix + [tip]`` complete to a chordless path to t?"""
        blocked: Set[Vertex] = set()
        for v in prefix:
            blocked.add(v)
            blocked.update(graph.neighbor_set(v))
            _tick(meter, graph.degree(v))
        blocked.discard(tip)
        if target in blocked:
            return False
        return target in _reachable_avoiding(graph, tip, blocked, meter)

    prefix: List[Vertex] = []
    stack: List[Tuple[Vertex, bool]] = [(source, True)]
    while stack:
        v, entering = stack.pop()
        if not entering:
            prefix.pop()
            continue
        prefix.append(v)
        stack.append((v, False))
        if v == target:
            yield tuple(prefix)
            continue
        body = prefix[:-1]
        forbidden: Set[Vertex] = set(body)
        for p in body:
            forbidden.update(graph.neighbor_set(p))
            _tick(meter, graph.degree(p))
        candidates = [
            u
            for u in sorted(graph.neighbor_set(v), key=repr)
            if u not in forbidden
        ]
        # push in reverse so exploration follows sorted order
        for u in reversed(candidates):
            if extendible(prefix, u):
                stack.append((u, True))


def _fast_chordless_st_paths(
    fg, source: int, target: int, meter=None
) -> Iterator[Tuple[int, ...]]:
    """Kernel-native chordless path enumeration over a :class:`FastGraph`.

    Same certificate-guided backtracking as the object implementation —
    and the same solution stream, solution for solution — but the two
    O(|prefix| · Δ) set unions per search node (the ``forbidden`` set for
    candidate filtering and the ``blocked`` set per extendibility probe)
    are replaced by flat integer arrays maintained incrementally:

    * ``cov[u]`` counts how many *body* vertices (the prefix minus its
      tip) cover ``u`` with their closed neighbourhood — updated in
      O(deg) when a vertex enters or leaves the body, so the candidate
      filter is a single array read per neighbour.
    * The tip's closed neighbourhood is stamped once per search node
      (the object version rebuilds the union per candidate), and the
      extendibility sweep early-exits at the target.

    Yields integer-vertex tuples; the backend dispatcher translates
    labels when the input graph was relabeled during compilation.
    """
    from repro.exceptions import VertexNotFound as _VNF

    if source not in fg:
        raise _VNF(source)
    if target not in fg:
        raise _VNF(target)
    if source == target:
        yield (source,)
        return
    n = len(fg.neighbor_lists())
    raw = fg.neighbor_lists()
    # Distinct neighbours, pre-sorted once into the object backend's
    # ``sorted(neighbor_set(v), key=repr)`` exploration order.
    adj_sorted: List[List[int]] = [sorted(set(lst), key=repr) for lst in raw]
    cov = [0] * n  # closed-neighbourhood cover counts of the body
    tip_mark = [0] * n  # node-level stamp: N[tip] ∪ {tip}
    visited = [0] * n  # probe-level stamp: reachability sweep marks
    node_stamp = 0
    probe_stamp = 0

    def cover(v: int, delta: int) -> None:
        cov[v] += delta
        for u in adj_sorted[v]:
            cov[u] += delta
        _tick(meter, len(adj_sorted[v]))

    def extendible(u: int) -> bool:
        """Can the prefix extended by ``u`` still reach the target
        chordlessly?  ``blocked`` = body cover ∪ N[tip] ∪ {tip}, minus
        ``u`` itself (the object version's ``blocked.discard(tip)``)."""
        nonlocal probe_stamp
        blocked_t = cov[target] > 0 or tip_mark[target] == node_stamp
        if blocked_t and target != u:
            return False
        if u == target:
            return True
        probe_stamp += 1
        stack = [u]
        visited[u] = probe_stamp
        while stack:
            v = stack.pop()
            for w in raw[v]:
                _tick(meter)
                if w == target:
                    return True
                if (
                    visited[w] != probe_stamp
                    and cov[w] == 0
                    and tip_mark[w] != node_stamp
                    and w != u
                ):
                    visited[w] = probe_stamp
                    stack.append(w)
        return False

    prefix: List[int] = []
    stack: List[Tuple[int, bool]] = [(source, True)]
    while stack:
        v, entering = stack.pop()
        if not entering:
            prefix.pop()
            if prefix:
                cover(prefix[-1], -1)  # the new tip leaves the body
            continue
        if prefix:
            cover(prefix[-1], +1)  # the old tip joins the body
        prefix.append(v)
        stack.append((v, False))
        if v == target:
            yield tuple(prefix)
            continue
        node_stamp += 1
        tip_mark[v] = node_stamp
        for u in adj_sorted[v]:
            tip_mark[u] = node_stamp
        _tick(meter, len(adj_sorted[v]))
        survivors = [
            u for u in adj_sorted[v] if cov[u] == 0 and extendible(u)
        ]
        for u in reversed(survivors):
            stack.append((u, True))
    return


def enumerate_minimal_induced_steiner_pairs(
    graph: Graph, source: Vertex, target: Vertex
) -> Iterator[frozenset]:
    """Minimal induced Steiner subgraphs of ``(G, {s, t})`` as vertex sets.

    These are exactly the vertex sets of chordless ``s``-``t`` paths —
    the two-terminal case of the paper's Induced Steiner Subgraph
    Enumeration, with no claw-free restriction.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> sorted(sorted(s) for s in enumerate_minimal_induced_steiner_pairs(g, 0, 2))
    [[0, 2]]
    """
    for path in enumerate_chordless_st_paths(graph, source, target):
        yield frozenset(path)


def count_chordless_st_paths(graph: Graph, source: Vertex, target: Vertex) -> int:
    """Number of chordless ``source``-``target`` paths."""
    return sum(1 for _ in enumerate_chordless_st_paths(graph, source, target))


def longest_chordless_path_length(
    graph: Graph, source: Vertex, target: Vertex
) -> int:
    """Edge count of a longest chordless ``s``-``t`` path.

    Raises :class:`InvalidInstanceError` when no chordless path exists
    (equivalently, when ``t`` is unreachable from ``s``).
    """
    best = -1
    for path in enumerate_chordless_st_paths(graph, source, target):
        best = max(best, len(path) - 1)
    if best < 0:
        raise InvalidInstanceError(f"no path from {source!r} to {target!r}")
    return best


def brute_force_chordless_st_paths(
    graph: Graph, source: Vertex, target: Vertex
) -> Set[Tuple[Vertex, ...]]:
    """Oracle: filter all simple paths by chordlessness (tests only)."""
    from repro.paths.simple import backtracking_st_paths_undirected

    out: Set[Tuple[Vertex, ...]] = set()
    if source == target:
        return {(source,)}
    for path in backtracking_st_paths_undirected(graph, source, target):
        if is_chordless_path(graph, path.vertices):
            out.add(tuple(path.vertices))
    return out

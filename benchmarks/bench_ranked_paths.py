"""A-ranked — ranked enumeration layers (Yen paths, top-k Steiner trees).

The paper's introduction motivates enumeration through ranked problems
([12, 18, 34, 35] for paths; [25] for approximately-sorted Steiner
trees).  This bench times the ranked layers built on the enumerators:

* Yen's K shortest loopless paths (exact order, polynomial delay per
  rank) against the unranked linear-delay path enumerator;
* exact top-k lightest minimal Steiner trees;
* the approximate-order stream and its measured sortedness defect.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table
from repro.bench.workloads import tree_shape_sweep
from repro.core.ranked import (
    enumerate_approximately_by_weight,
    k_lightest_minimal_steiner_trees,
    sortedness_defect,
)
from repro.graphs.generators import random_connected_graph
from repro.paths.read_tarjan import enumerate_st_paths_undirected
from repro.paths.yen import yen_k_shortest_paths

from benchutil import make_drainer

K = 25


def _weights(graph):
    return {eid: float((eid * 13) % 9 + 1) for eid in graph.edge_ids()}


def _path_instances():
    out = []
    for n, extra in [(12, 14), (16, 20), (20, 26)]:
        g = random_connected_graph(n, extra, seed=n)
        out.append((f"rand-{n}", g, 0, n - 1))
    return out


@pytest.mark.parametrize(
    "name, g, s, t", _path_instances(), ids=[i[0] for i in _path_instances()]
)
def test_yen_top_k(benchmark, name, g, s, t):
    weights = _weights(g)
    count = benchmark(
        make_drainer(lambda: yen_k_shortest_paths(g, s, t, k=K, weights=weights))
    )
    assert count > 0


@pytest.mark.parametrize(
    "name, g, s, t", _path_instances(), ids=[i[0] for i in _path_instances()]
)
def test_unranked_paths_same_budget(benchmark, name, g, s, t):
    count = benchmark(make_drainer(lambda: enumerate_st_paths_undirected(g, s, t), K))
    assert count > 0


@pytest.mark.parametrize(
    "inst", tree_shape_sweep()[:3], ids=lambda i: i.name
)
def test_top_k_steiner(benchmark, inst):
    weights = _weights(inst.graph)
    out = benchmark(
        lambda: k_lightest_minimal_steiner_trees(inst.graph, inst.terminals, weights, 5)
    )
    assert len(out) > 0


def test_approximate_order_table(benchmark):
    """The [25]-style trade-off: bounded lookahead buys approximate order."""
    rows = []
    for inst in tree_shape_sweep()[:3]:
        weights = _weights(inst.graph)
        for lookahead in (8, 64, 512):
            stream = [
                w
                for w, _ in enumerate_approximately_by_weight(
                    inst.graph, inst.terminals, weights, lookahead=lookahead
                )
            ]
            rows.append((inst.name, lookahead, len(stream), sortedness_defect(stream)))
    print()
    print_table(
        "A-ranked: sortedness defect vs lookahead",
        ("instance", "lookahead", "solutions", "defect"),
        rows,
    )
    for name, lookahead, total, defect in rows:
        if total:
            assert defect <= total
    benchmark(lambda: None)

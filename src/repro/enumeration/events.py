"""Event protocol emitted by the enumeration-tree traversals.

The improved enumeration algorithms of Sections 4–5 traverse a rooted
*enumeration tree* in depth-first order.  Uno's output-queue method (and
the paper's delay proofs) reason about three kinds of events along this
traversal; our enumerators can run in "event mode" and emit them so that

* the output-queue regulator (:mod:`repro.enumeration.queue_method`) can
  space solutions evenly, and
* the Figure-1 benchmark can verify the structural claims (every internal
  node of the improved tree has ≥ 2 children, hence
  ``#internal ≤ #leaves``).

Events are lightweight tuples.  ``DISCOVER``/``EXAMINE`` carry
``(kind, node_id, depth)``; ``SOLUTION`` carries ``(kind, solution)``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

DISCOVER = "discover"  # a node of the enumeration tree is first visited
EXAMINE = "examine"    # a node is left for the last time (paper: "examined")
SOLUTION = "solution"  # a solution is found (always at/with some node)

Event = Tuple[Any, ...]


def solutions_only(events: Iterable[Event]) -> Iterator[Any]:
    """Strip the event stream down to the solutions, in traversal order."""
    for event in events:
        if event[0] == SOLUTION:
            yield event[1]


class TreeShape:
    """Accumulates enumeration-tree statistics from an event stream.

    Used by the Figure 1 experiment: after draining the stream,
    ``internal_nodes``, ``leaf_nodes`` and ``max_children`` describe the
    improved enumeration tree that the traversal walked.
    """

    def __init__(self) -> None:
        self.discovered = 0
        self.solutions = 0
        self._children: dict = {}
        self._parent_stack: list = []
        self._child_count: dict = {}
        self.max_depth = 0

    def consume(self, events: Iterable[Event]) -> Iterator[Any]:
        """Stream through ``events``, recording shape; yield solutions."""
        for event in events:
            kind = event[0]
            if kind == DISCOVER:
                _, node_id, depth = event
                self.discovered += 1
                self.max_depth = max(self.max_depth, depth)
                if self._parent_stack:
                    parent = self._parent_stack[-1]
                    self._child_count[parent] = self._child_count.get(parent, 0) + 1
                self._parent_stack.append(node_id)
                self._child_count.setdefault(node_id, 0)
            elif kind == EXAMINE:
                if self._parent_stack:
                    self._parent_stack.pop()
            elif kind == SOLUTION:
                self.solutions += 1
                yield event[1]

    @property
    def internal_nodes(self) -> int:
        """Nodes with at least one child."""
        return sum(1 for c in self._child_count.values() if c > 0)

    @property
    def leaf_nodes(self) -> int:
        """Nodes with no children."""
        return sum(1 for c in self._child_count.values() if c == 0)

    @property
    def min_internal_children(self) -> int:
        """Minimum child count over internal nodes (paper claims ≥ 2)."""
        counts = [c for c in self._child_count.values() if c > 0]
        return min(counts) if counts else 0

"""Hypergraphs and minimal transversal enumeration.

Theorem 38 ties minimal group Steiner tree enumeration to Minimal
Transversal Enumeration (hypergraph dualization), the canonical
open problem of output-polynomial enumeration.  This module provides the
hypergraph substrate for that experiment:

* :class:`Hypergraph` — a universe plus a family of hyperedges;
* :func:`enumerate_minimal_transversals` — Berge multiplication with
  minimality filtering (exponential space, correct and standard; the
  Fredman–Khachiyan quasi-polynomial algorithm is out of scope and not
  needed for the reproduction, which only requires *a* correct
  transversal enumerator to compare against the group-Steiner route);
* predicates and a deterministic random generator.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import InvalidInstanceError

Element = Hashable
Transversal = FrozenSet[Element]


class Hypergraph:
    """A finite hypergraph ``H = (U, E)``.

    Hyperedges are stored deduplicated as frozensets, in first-seen order.
    Empty hyperedges are rejected (they admit no transversal and make the
    instance trivially infeasible — callers should handle that case
    explicitly rather than silently).

    Examples
    --------
    >>> h = Hypergraph("abc", [{"a", "b"}, {"b", "c"}])
    >>> sorted(h.universe)
    ['a', 'b', 'c']
    >>> h.num_edges
    2
    """

    __slots__ = ("_universe", "_edges")

    def __init__(
        self, universe: Iterable[Element], edges: Iterable[Iterable[Element]]
    ) -> None:
        self._universe: Tuple[Element, ...] = tuple(dict.fromkeys(universe))
        uset = set(self._universe)
        seen: Set[FrozenSet[Element]] = set()
        out: List[FrozenSet[Element]] = []
        for edge in edges:
            fe = frozenset(edge)
            if not fe:
                raise InvalidInstanceError("empty hyperedge admits no transversal")
            if not fe <= uset:
                raise InvalidInstanceError(f"hyperedge {set(fe)!r} leaves the universe")
            if fe not in seen:
                seen.add(fe)
                out.append(fe)
        self._edges: Tuple[FrozenSet[Element], ...] = tuple(out)

    @property
    def universe(self) -> Tuple[Element, ...]:
        """The ground set ``U`` (insertion order preserved)."""
        return self._universe

    @property
    def edges(self) -> Tuple[FrozenSet[Element], ...]:
        """The deduplicated hyperedges."""
        return self._edges

    @property
    def num_vertices(self) -> int:
        """|U|."""
        return len(self._universe)

    @property
    def num_edges(self) -> int:
        """Number of distinct hyperedges."""
        return len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Hypergraph |U|={self.num_vertices} |E|={self.num_edges}>"


def is_transversal(hypergraph: Hypergraph, subset: Iterable[Element]) -> bool:
    """True if ``subset`` intersects every hyperedge."""
    s = set(subset)
    return all(s & e for e in hypergraph.edges)


def is_minimal_transversal(hypergraph: Hypergraph, subset: Iterable[Element]) -> bool:
    """True if ``subset`` is a transversal and no proper subset is.

    Equivalent check: every element has a *private* hyperedge it alone
    covers.
    """
    s = set(subset)
    if not is_transversal(hypergraph, s):
        return False
    for x in s:
        if all((s - {x}) & e for e in hypergraph.edges):
            return False
    return True


def enumerate_minimal_transversals(hypergraph: Hypergraph) -> Iterator[Transversal]:
    """All minimal transversals via Berge multiplication.

    Processes hyperedges one at a time, maintaining the set of minimal
    transversals of the prefix: each partial transversal is extended by
    every element of the next edge, then non-minimal extensions are
    discarded.  Exponential space (the intermediate families can blow up),
    which matches the "exp." space column the paper's Table 1 reports for
    transversal-hard problems.

    Yields frozensets in a deterministic order.
    """
    partial: List[FrozenSet[Element]] = [frozenset()]
    for edge in hypergraph.edges:
        extended: Set[FrozenSet[Element]] = set()
        for t in partial:
            if t & edge:
                extended.add(t)
                continue
            for x in edge:
                extended.add(t | {x})
        # prune non-minimal sets (pairwise subset filtering)
        by_size = sorted(extended, key=lambda s: (len(s), sorted(map(repr, s))))
        kept: List[FrozenSet[Element]] = []
        for cand in by_size:
            if not any(k <= cand for k in kept):
                kept.append(cand)
        partial = kept
    # final minimality holds by construction; order deterministically
    for t in sorted(partial, key=lambda s: (len(s), sorted(map(repr, s)))):
        yield t


def brute_force_minimal_transversals(hypergraph: Hypergraph) -> Set[Transversal]:
    """Oracle: filter all subsets of the universe (tests only)."""
    import itertools

    out: Set[Transversal] = set()
    universe = hypergraph.universe
    for r in range(len(universe) + 1):
        for sub in itertools.combinations(universe, r):
            if is_minimal_transversal(hypergraph, sub):
                out.add(frozenset(sub))
    return out


def random_hypergraph(
    num_vertices: int, num_edges: int, max_edge_size: int, seed: int
) -> Hypergraph:
    """A deterministic random hypergraph (non-empty edges, size ≤ bound)."""
    rng = random.Random(seed)
    universe = list(range(num_vertices))
    edges = []
    for _ in range(num_edges):
        size = rng.randint(1, max(1, min(max_edge_size, num_vertices)))
        edges.append(rng.sample(universe, size))
    return Hypergraph(universe, edges)

"""Batch/serving front end: the layer the CLI and deployments talk to.

:class:`BatchRunner` bundles the engine's moving parts — worker pool,
instance cache, cursors — behind three calls: :meth:`BatchRunner.run`
(a batch, in order), :meth:`BatchRunner.run_file` (a ``jobs.jsonl``),
and :meth:`BatchRunner.open_cursor` (a resumable stream).

:func:`serve` is a line-oriented service loop: one JSON request per
stdin line, one JSON response per stdout line.  The protocol is the
simplest thing a client can speak from any language::

    {"op": "run", "job": {"kind": "steiner-tree", ...}}
    {"op": "batch", "jobs": [{...}, {...}]}
    {"op": "stats"}
    {"op": "quit"}

A bare job object (anything with a ``"kind"`` key) is accepted as
shorthand for ``{"op": "run", "job": ...}``.  Errors come back as
``{"ok": false, "error": ...}`` instead of killing the server, and every
response carries the request's ``seq`` number (its 1-based line number)
so clients can pipeline requests.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.engine.cache import InstanceCache
from repro.engine.cursor import EnumerationCursor
from repro.engine.jobs import EnumerationJob, JobResult, load_jobs_jsonl
from repro.engine.pool import run_batch
from repro.exceptions import InvalidInstanceError


class BatchRunner:
    """Execute enumeration jobs with worker fan-out and instance caching.

    Parameters
    ----------
    workers:
        Worker process count; ``1`` runs everything in-process (no
        multiprocessing import cost, identical output).
    cache:
        An :class:`InstanceCache`, ``None`` to build a default one, or
        ``False`` to disable caching entirely.
    mp_context:
        Multiprocessing start method override (default: fork if
        available).

    Examples
    --------
    >>> runner = BatchRunner(workers=1)
    >>> job = EnumerationJob.steiner_tree([("a", "b"), ("b", "c")], ["a", "c"])
    >>> runner.run([job])[0].lines
    ('a-b b-c',)
    >>> runner.run([job])[0].cached  # second time: served from cache
    True
    """

    def __init__(
        self,
        workers: int = 1,
        cache=None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache: Optional[InstanceCache]
        if cache is False:
            self.cache = None
        elif cache is None:
            self.cache = InstanceCache()
        else:
            self.cache = cache
        self.mp_context = mp_context
        self.jobs_run = 0
        self.solutions = 0
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[EnumerationJob],
        resume_snapshots: Optional[Sequence[Optional[bytes]]] = None,
    ) -> List[JobResult]:
        """Run a batch; results are returned in job order, deterministic
        in the worker count.  ``resume_snapshots`` continues suspendable
        jobs from serialized search states (see
        :func:`repro.engine.pool.run_batch`)."""
        start = time.perf_counter()
        results = run_batch(
            jobs,
            workers=self.workers,
            cache=self.cache,
            mp_context=self.mp_context,
            resume_snapshots=resume_snapshots,
        )
        self.wall_seconds += time.perf_counter() - start
        self.jobs_run += len(results)
        self.solutions += sum(r.count for r in results)
        return results

    def run_stream(
        self, jobs: Sequence[EnumerationJob]
    ) -> Iterator[Tuple[EnumerationJob, JobResult]]:
        """Like :meth:`run` but yields ``(job, result)`` pairs lazily in
        job order (the whole batch is still scheduled up front)."""
        results = self.run(jobs)
        for job, result in zip(jobs, results):
            yield job, result

    def run_file(self, path: str) -> List[JobResult]:
        """Run every job spec in a ``jobs.jsonl`` file."""
        return self.run(load_jobs_jsonl(path))

    def open_cursor(self, job: EnumerationJob) -> EnumerationCursor:
        """A resumable cursor over ``job`` wired to this runner's cache."""
        return EnumerationCursor(job, cache=self.cache)

    def resume_cursor(
        self,
        state: Dict[str, Any],
        job: Optional[EnumerationJob] = None,
        resume_mode: str = "snapshot",
    ) -> EnumerationCursor:
        """Resume a checkpointed cursor against this runner's cache.

        ``job`` (when given) must match the checkpoint's fingerprint and
        backend — see :meth:`EnumerationCursor.resume`.
        """
        return EnumerationCursor.resume(
            state, cache=self.cache, job=job, resume_mode=resume_mode
        )

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters (plus cache stats when caching is on)."""
        payload: Dict[str, Any] = {
            "workers": self.workers,
            "jobs_run": self.jobs_run,
            "solutions": self.solutions,
            "wall_seconds": round(self.wall_seconds, 6),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
            payload["cache_entries"] = len(self.cache)
        return payload


def _handle_request(runner: BatchRunner, request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one parsed service request; raises on malformed input."""
    if "kind" in request and "op" not in request:
        request = {"op": "run", "job": request}
    op = request.get("op")
    if op == "run":
        spec = request.get("job")
        if not isinstance(spec, dict):
            raise InvalidInstanceError("'run' requests need a 'job' object")
        job = EnumerationJob.from_dict(spec)
        result = runner.run([job])[0]
        return {"ok": True, "result": result.to_dict()}
    if op == "batch":
        specs = request.get("jobs")
        if not isinstance(specs, list):
            raise InvalidInstanceError("'batch' requests need a 'jobs' array")
        jobs = [EnumerationJob.from_dict(spec) for spec in specs]
        results = runner.run(jobs)
        return {"ok": True, "results": [r.to_dict() for r in results]}
    if op == "stats":
        return {"ok": True, "stats": runner.stats()}
    if op == "quit":
        return {"ok": True, "bye": True}
    raise InvalidInstanceError(f"unknown op {op!r}")


def serve(
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
    workers: int = 1,
    cache=None,
    mp_context: Optional[str] = None,
) -> int:
    """Run the JSONL request/response loop until EOF or ``quit``.

    Returns the number of requests served.  Malformed requests produce
    an ``{"ok": false, ...}`` response and the loop continues; only EOF
    and an explicit ``quit`` stop it.
    """
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    runner = BatchRunner(workers=workers, cache=cache, mp_context=mp_context)
    served = 0
    for seq, line in enumerate(in_stream, 1):
        body = line.strip()
        if not body:
            continue
        try:
            request = json.loads(body)
            if not isinstance(request, dict):
                raise InvalidInstanceError("request must be a JSON object")
            response = _handle_request(runner, request)
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the loop
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        response["seq"] = seq
        print(json.dumps(response, sort_keys=True), file=out_stream, flush=True)
        served += 1
        if response.get("bye"):
            break
    return served

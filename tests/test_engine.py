"""The batch-enumeration engine: jobs, cache, pool, cursors, service.

The contracts under test are the ones a serving deployment leans on:

* identical solution streams for every worker count (and for sharded
  vs. whole-job execution, as sets);
* cursor checkpoint/resume reproduces exactly the tail of an
  uninterrupted pass;
* a cache hit answers without re-enumeration, including for relabeled
  isomorphic instances (translated into the caller's labels);
* deadline/budget jobs stop cleanly with partial results, never raise.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.engine.cache import InstanceCache, canonical_signature, instance_key
from repro.engine.cursor import EnumerationCursor
from repro.engine.jobs import EnumerationJob, load_jobs_jsonl, run_job
from repro.engine.pool import run_batch, run_steiner_shard, shard_anchor
from repro.engine.service import BatchRunner, serve
from repro.exceptions import InvalidInstanceError

from conftest import random_simple_graph


def _random_edges(rng: random.Random, n: int, p: float):
    return [
        (f"v{u}", f"v{v}")
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]


def mixed_batch(seed: int = 11, copies: int = 1):
    """A small batch covering every relabelable job kind."""
    rng = random.Random(seed)
    jobs = []
    for c in range(copies):
        edges = _random_edges(rng, 8, 0.45)
        jobs.append(
            EnumerationJob.steiner_tree(
                edges, ["v0", "v4", "v7"], job_id=f"st{c}"
            )
        )
        jobs.append(
            EnumerationJob.steiner_forest(
                _random_edges(rng, 7, 0.5),
                [["v0", "v1"], ["v2", "v3"]],
                job_id=f"sf{c}",
            )
        )
        jobs.append(
            EnumerationJob.terminal_steiner(
                _random_edges(rng, 7, 0.5), ["v0", "v6"], job_id=f"ts{c}"
            )
        )
        jobs.append(
            EnumerationJob.st_path(
                _random_edges(rng, 7, 0.5), "v0", "v6", job_id=f"p{c}"
            )
        )
        jobs.append(
            EnumerationJob.directed_steiner(
                [("r", "a"), ("r", "b"), ("a", "w"), ("b", "w"), ("a", "b")],
                ["w"],
                "r",
                job_id=f"ds{c}",
            )
        )
    return jobs


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
class TestJobs:
    def test_json_round_trip(self):
        for job in mixed_batch():
            clone = EnumerationJob.from_json(json.dumps(job.to_dict()))
            assert clone == job
            assert run_job(clone).lines == run_job(job).lines

    def test_from_graph_object_matches_edge_list(self, triangle_with_tail):
        from_graph = EnumerationJob.steiner_tree(triangle_with_tail, ["a", "d"])
        from_edges = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"]
        )
        assert from_graph == from_edges

    def test_validate_rejects_bad_specs(self):
        with pytest.raises(InvalidInstanceError):
            EnumerationJob(kind="nonsense").validate()
        with pytest.raises(InvalidInstanceError):
            EnumerationJob(kind="steiner-tree", edges=(("a", "b"),)).validate()
        with pytest.raises(InvalidInstanceError):
            EnumerationJob.from_dict({"kind": "st-path", "edges": [], "typo": 1})

    def test_limit_zero_and_limit(self):
        job = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"], limit=0
        )
        result = run_job(job)
        assert result.lines == () and result.stop_reason == "limit"
        one = run_job(
            EnumerationJob.steiner_tree(
                [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")], ["a", "d"], limit=1
            )
        )
        assert one.count == 1 and one.stop_reason == "limit" and not one.exhausted

    def test_deadline_job_stops_cleanly(self):
        rng = random.Random(5)
        job = EnumerationJob.steiner_tree(
            _random_edges(rng, 18, 0.5), ["v0", "v9", "v17"], deadline=0.02
        )
        result = run_job(job)  # must return quickly with a partial answer
        assert result.stop_reason == "deadline"
        assert not result.exhausted

    def test_budget_job_stops_cleanly(self):
        rng = random.Random(5)
        job = EnumerationJob.steiner_tree(
            _random_edges(rng, 12, 0.5), ["v0", "v11"], budget=200
        )
        result = run_job(job)
        assert result.stop_reason == "budget"
        assert result.ops <= 600  # final tick may overshoot by its amount

    def test_deadline_zero_stops_immediately(self):
        rng = random.Random(5)
        job = EnumerationJob.steiner_tree(
            _random_edges(rng, 14, 0.5), ["v0", "v13"], deadline=0
        )
        result = run_job(job)
        assert result.stop_reason == "deadline" and not result.exhausted
        with pytest.raises(InvalidInstanceError):
            EnumerationJob.steiner_tree([("a", "b")], ["a"], deadline=-1).validate()
        with pytest.raises(InvalidInstanceError):
            EnumerationJob.steiner_tree([("a", "b")], ["a"], budget=-1).validate()

    def test_kfragments_job(self):
        from repro.datagraph.model import DataGraph

        dg = DataGraph()
        dg.add_node("a", ["x"])
        dg.add_node("b", ["y"])
        dg.add_link("a", "b")
        job = EnumerationJob.kfragments(dg, ["x", "y"])
        assert run_job(job).lines == ("[1] a-b | x=a,y=b",)
        assert EnumerationJob.from_dict(job.to_dict()) == job

    def test_kfragments_node_only_in_node_keywords(self):
        # A keyword-bearing node absent from edges/vertices is still an
        # instance node; single-keyword queries can answer with it alone.
        job = EnumerationJob.from_dict(
            {
                "kind": "kfragments",
                "edges": [["a", "b"]],
                "keywords": ["x"],
                "node_keywords": [["lonely", ["x"]]],
            }
        )
        result = run_job(job)  # must not KeyError on the edge-less node
        assert result.exhausted and result.count == 1
        # Unreachable keyword node: connecting fragments don't exist.
        two = EnumerationJob.from_dict(
            {
                "kind": "kfragments",
                "edges": [["a", "b"]],
                "keywords": ["x", "y"],
                "node_keywords": [["lonely", ["x"]], ["a", ["y"]]],
            }
        )
        assert run_job(two).lines == ()

    def test_kfragments_non_string_nodes_round_trip(self):
        from repro.datagraph.model import DataGraph

        dg = DataGraph()
        dg.add_node(1, ["x"])
        dg.add_node(2, ["y"])
        dg.add_link(1, 2)
        job = EnumerationJob.kfragments(dg, ["x", "y"])
        clone = EnumerationJob.from_json(json.dumps(job.to_dict()))
        assert clone == job
        assert run_job(clone).lines == run_job(job).lines

    def test_sharded_job_with_missing_terminal_errors_cleanly(self):
        bad = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c")], ["a", "zz"], shards=2, job_id="bad"
        )
        for workers in (1, 2):
            result = run_batch([bad], workers=workers)[0]
            assert result.stop_reason == "error" and "zz" in result.error

    def test_jobs_jsonl_loader(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        jobs = mixed_batch()
        path.write_text(
            "# comment\n\n"
            + "\n".join(json.dumps(j.to_dict(), sort_keys=True) for j in jobs)
            + "\n"
        )
        assert load_jobs_jsonl(str(path)) == jobs
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "steiner-tree"}\n')
        with pytest.raises(InvalidInstanceError):
            load_jobs_jsonl(str(bad))


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
class TestPool:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_identical_across_worker_counts(self, workers):
        jobs = mixed_batch(copies=2)
        serial = run_batch(jobs, workers=1)
        parallel = run_batch(jobs, workers=workers)
        assert [r.lines for r in serial] == [r.lines for r in parallel]
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_sharded_job_partitions_solutions(self):
        rng = random.Random(9)
        edges = _random_edges(rng, 10, 0.5)
        terminals = ["v0", "v5", "v9"]
        whole = run_batch([EnumerationJob.steiner_tree(edges, terminals)], workers=1)[0]
        sharded_job = EnumerationJob.steiner_tree(edges, terminals, shards=3)
        s1 = run_batch([sharded_job], workers=1)[0]
        s4 = run_batch([sharded_job], workers=4)[0]
        assert set(s1.lines) == set(whole.lines)
        assert len(s1.lines) == len(set(s1.lines))  # duplicate-free partition
        assert s1.lines == s4.lines  # shard order independent of workers

    def test_duplicate_jobs_enumerate_once(self, monkeypatch):
        import repro.engine.pool as pool_mod

        calls = []
        real = pool_mod.run_job
        monkeypatch.setattr(
            pool_mod, "run_job", lambda job, **kw: calls.append(job) or real(job, **kw)
        )
        job = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c"), ("a", "c")], ["a", "c"]
        )
        twin = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c"), ("a", "c")], ["a", "c"], job_id="twin"
        )
        results = run_batch([job, twin, job], workers=1)
        assert len(calls) == 1  # one enumeration serves all three
        assert results[0].lines == results[1].lines == results[2].lines
        assert results[1].job_id == "twin" and results[2].job_id is None

    def test_failing_job_does_not_poison_batch(self):
        bad = EnumerationJob.steiner_tree([("a", "b")], ["a", "zz"], job_id="bad")
        good = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c")], ["a", "c"], job_id="good"
        )
        for workers in (1, 2):
            results = run_batch([bad, good], workers=workers)
            assert results[0].stop_reason == "error"
            assert "zz" in results[0].error
            assert results[1].lines == ("a-b b-c",)

    def test_shard_anchor_policy(self):
        shardable = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c"), ("a", "c")], ["a", "c"]
        )
        assert shard_anchor(shardable) is not None
        limited = EnumerationJob.steiner_tree(
            [("a", "b"), ("b", "c")], ["a", "c"], limit=5
        )
        assert shard_anchor(limited) is None  # limits disable sharding
        single = EnumerationJob.steiner_tree([("a", "b")], ["a"])
        assert shard_anchor(single) is None

    def test_run_steiner_shard_range(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        job = EnumerationJob.steiner_tree(edges, ["a", "d"], shards=2)
        _, incident = shard_anchor(job)
        pieces = [
            run_steiner_shard(job, i, i + 1).lines for i in range(len(incident))
        ]
        flat = [line for piece in pieces for line in piece]
        whole = run_job(EnumerationJob.steiner_tree(edges, ["a", "d"]))
        assert set(flat) == set(whole.lines) and len(flat) == whole.count


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_skips_reenumeration(self, monkeypatch):
        cache = InstanceCache()
        job = mixed_batch()[0]
        first = run_batch([job], cache=cache)[0]
        assert not first.cached
        # Any attempt to enumerate again would blow up:
        monkeypatch.setattr(
            "repro.engine.pool.run_job",
            lambda *a, **k: pytest.fail("cache miss re-ran the enumerator"),
        )
        second = run_batch([job], cache=cache)[0]
        assert second.cached and second.lines == first.lines
        assert cache.stats.hits == 1

    def test_relabeled_instance_hits_and_translates(self):
        cache = InstanceCache()
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        job = EnumerationJob.steiner_tree(edges, ["a", "d"])
        cache.store(job, run_job(job))
        relabel = {"a": "p", "b": "q", "c": "r", "d": "s"}
        rel_edges = [(relabel[u], relabel[v]) for u, v in reversed(edges)]
        rel_job = EnumerationJob.steiner_tree(rel_edges, ["p", "s"])
        hit = cache.lookup(rel_job)
        assert hit is not None and hit.cached
        assert set(hit.lines) == set(run_job(rel_job).lines)

    def test_directed_relabeling_preserves_arc_directions(self):
        cache = InstanceCache()
        job = EnumerationJob.directed_steiner(
            [("r", "a"), ("a", "w"), ("r", "w")], ["w"], "r"
        )
        cache.store(job, run_job(job))
        rel = EnumerationJob.directed_steiner(
            [("R", "W"), ("R", "A"), ("A", "W")], ["W"], "R"
        )
        assert cache.lookup(rel).lines == run_job(rel).lines

    def test_relabeled_vertex_set_hit_renders_sorted(self):
        cache = InstanceCache()
        donor = EnumerationJob.induced_steiner([("a", "b"), ("b", "c")], ["a", "c"])
        cache.store(donor, run_job(donor))
        req = EnumerationJob.induced_steiner([("z", "y"), ("y", "x")], ["z", "x"])
        assert cache.lookup(req).lines == run_job(req).lines == ("x y z",)

    def test_canonical_signature_distinguishes_roles(self):
        edges = [("a", "b"), ("b", "c")]
        key_ab, _ = instance_key(EnumerationJob.steiner_tree(edges, ["a", "b"]))
        key_ac, _ = instance_key(EnumerationJob.steiner_tree(edges, ["a", "c"]))
        assert key_ab != key_ac
        assert canonical_signature(
            EnumerationJob.steiner_tree(edges, ["a", "c"])
        ) is not None

    def test_limit_semantics_match_direct_run(self):
        cache = InstanceCache()
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        cache.store(
            EnumerationJob.steiner_tree(edges, ["a", "d"]),
            run_job(EnumerationJob.steiner_tree(edges, ["a", "d"])),
        )
        limited = EnumerationJob.steiner_tree(edges, ["a", "d"], limit=1)
        hit, direct = cache.lookup(limited), run_job(limited)
        assert hit.lines == direct.lines
        assert (hit.exhausted, hit.stop_reason) == (direct.exhausted, direct.stop_reason)

    def test_exhausted_run_upgrades_limit_stopped_entry(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        cache = InstanceCache()
        # Instance has exactly 2 minimal trees; a limit=2 run caches a
        # non-exhausted prefix of equal length...
        limited = EnumerationJob.steiner_tree(edges, ["a", "c"], limit=2)
        cache.store(limited, run_job(limited))
        unlimited = EnumerationJob.steiner_tree(edges, ["a", "c"])
        assert cache.lookup(unlimited) is None
        # ...which an exhaustive run of equal count must still upgrade.
        cache.store(unlimited, run_job(unlimited))
        hit = cache.lookup(unlimited)
        assert hit is not None and hit.exhausted

    def test_partial_results_not_poisoning(self):
        cache = InstanceCache()
        rng = random.Random(5)
        job = EnumerationJob.steiner_tree(
            _random_edges(rng, 12, 0.5), ["v0", "v11"], budget=200
        )
        cache.store(job, run_job(job))  # budget-stopped: must not be cached
        assert cache.lookup(job) is None

    def test_relabeled_hit_never_truncates_to_a_different_subset(self):
        # A limited job must get its own first-k solutions; a relabeled
        # donor's order is a permutation, so the cache declines instead
        # of serving the donor's first-k (a different set).
        cycle = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        donor = EnumerationJob.steiner_tree(cycle, ["a", "c"])
        cache = InstanceCache()
        cache.store(donor, run_job(donor))
        relabeled = EnumerationJob.steiner_tree(
            [("q", "r"), ("r", "s"), ("s", "p"), ("p", "q")], ["p", "r"], limit=1
        )
        assert cache.lookup(relabeled) is None  # declined, not wrong
        unlimited = EnumerationJob.steiner_tree(
            [("q", "r"), ("r", "s"), ("s", "p"), ("p", "q")], ["p", "r"]
        )
        hit = cache.lookup(unlimited)  # complete set still serves
        assert hit is not None
        assert set(hit.lines) == set(run_job(unlimited).lines)

    def test_lru_eviction_and_disk_spill(self, tmp_path):
        cache = InstanceCache(maxsize=2, spill_dir=str(tmp_path))
        jobs = mixed_batch()
        results = {j.job_id: run_job(j) for j in jobs[:3]}
        for job in jobs[:3]:
            cache.store(job, results[job.job_id])
        assert len(cache) == 2 and cache.stats.evictions == 1
        # The evicted entry comes back from disk with identical lines.
        for job in jobs[:3]:
            assert cache.lookup(job).lines == results[job.job_id].lines
        assert cache.stats.disk_hits >= 1

    def test_random_relabeled_instances_roundtrip(self):
        # Property-style: random graphs, shuffled labels, every kind of
        # solution must translate back exactly (as a set) on a hit.
        rng = random.Random(2022)
        for _ in range(10):
            g = random_simple_graph(rng, max_n=7)
            vertices = sorted(g.vertices())
            if len(vertices) < 2:
                continue
            terminals = rng.sample(vertices, 2)
            job = EnumerationJob.steiner_tree(g, terminals)
            perm = list(vertices)
            rng.shuffle(perm)
            mapping = dict(zip(vertices, perm))
            rel_edges = [(mapping[u], mapping[v]) for u, v in job.edges]
            rng.shuffle(rel_edges)
            rel_job = EnumerationJob.steiner_tree(
                rel_edges,
                [mapping[t] for t in terminals],
                vertices=tuple(mapping[v] for v in vertices),
            )
            cache = InstanceCache()
            cache.store(job, run_job(job))
            hit = cache.lookup(rel_job)
            assert hit is not None, "relabeled copy missed the cache"
            assert set(hit.lines) == set(run_job(rel_job).lines)


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
class TestCursor:
    @pytest.fixture
    def dense_job(self):
        rng = random.Random(3)
        return EnumerationJob.steiner_tree(
            _random_edges(rng, 9, 0.5), ["v0", "v4", "v8"]
        )

    def test_resume_equals_uninterrupted_pass(self, dense_job):
        full = run_job(dense_job).lines
        for cut in (0, 1, 10, len(full)):
            cursor = EnumerationCursor(dense_job)
            head = cursor.take(cut)
            tail = EnumerationCursor.resume(cursor.checkpoint()).drain()
            assert tuple(head + tail) == full, f"mismatch at cut {cut}"

    def test_cached_resume_skips_recomputation(self, dense_job):
        cache = InstanceCache()
        cursor = EnumerationCursor(dense_job, cache=cache)
        head = cursor.take(10)
        state = cursor.checkpoint()
        assert cache.stats.stores == 1  # delivered prefix checkpointed
        resumed = EnumerationCursor.resume(state, cache=cache)
        tail = resumed.drain()
        assert tuple(head + tail) == run_job(dense_job).lines
        # Once exhausted, a fresh cursor replays fully from cache: the
        # live meter is never created.
        replay = EnumerationCursor(dense_job, cache=cache)
        assert tuple(replay.drain()) == run_job(dense_job).lines
        assert replay._meter is None

    def test_budget_stopped_cursor_makes_progress_across_resumes(self, dense_job):
        import dataclasses

        job = dataclasses.replace(dense_job, budget=4000)
        full = run_job(dense_job).lines  # unbudgeted reference stream
        cache = InstanceCache()
        collected = []
        cursor = EnumerationCursor(job, cache=cache)
        collected.extend(cursor.drain())
        assert cursor.stop_reason == "budget" and collected  # partial start
        for _ in range(40):
            state = cursor.checkpoint()
            cursor = EnumerationCursor.resume(state, cache=cache)
            got = cursor.drain()
            assert got or cursor.stop_reason is None, "resume made no progress"
            collected.extend(got)
            if cursor.stop_reason is None:
                break
        assert tuple(collected) == full  # whole stream, in order, no loop

    def test_save_load_roundtrip(self, dense_job, tmp_path):
        full = run_job(dense_job).lines
        cursor = EnumerationCursor(dense_job)
        cursor.take(7)
        path = tmp_path / "cursor.json"
        cursor.save(str(path))
        tail = EnumerationCursor.load(str(path)).drain()
        assert tuple(full[:7]) + tuple(tail) == full

    def test_relabeled_prefix_never_splices_into_live_stream(self):
        # An incomplete donor prefix in donor order must not be replayed
        # for a relabeled job ahead of its own live enumeration.
        cycle = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
        donor = EnumerationJob.steiner_tree(cycle, ["a", "c"])
        cache = InstanceCache()
        donor_cursor = EnumerationCursor(donor, cache=cache)
        donor_cursor.take(1)
        donor_cursor.checkpoint()  # stores a 1-solution prefix
        relabeled = EnumerationJob.steiner_tree(
            [("q", "r"), ("r", "s"), ("s", "p"), ("p", "q")], ["p", "r"]
        )
        got = EnumerationCursor(relabeled, cache=cache).drain()
        assert tuple(got) == run_job(relabeled).lines  # no dupes, no drops

    def test_shortened_job_spec_fails_loudly(self, dense_job):
        cursor = EnumerationCursor(dense_job)
        cursor.take(20)
        state = cursor.checkpoint()
        state["job"]["edges"] = state["job"]["edges"][:2]  # tiny stream now
        with pytest.raises(InvalidInstanceError):
            EnumerationCursor.resume(state).drain()

    def test_tampered_checkpoint_detected(self, dense_job):
        cursor = EnumerationCursor(dense_job)
        cursor.take(10)
        state = cursor.checkpoint()
        state["offset"] = 5  # digest no longer matches the claimed prefix
        with pytest.raises(InvalidInstanceError):
            EnumerationCursor.resume(state).take(1)

    def test_digest_survives_checkpoint_chains(self, dense_job):
        cursor = EnumerationCursor(dense_job)
        cursor.take(10)
        first = cursor.checkpoint()
        # Checkpoint a resumed cursor before it delivers anything: the
        # original digest must carry over so tampering is still caught.
        rechkpt = EnumerationCursor.resume(first).checkpoint()
        assert rechkpt["digest"] == first["digest"]
        rechkpt["job"]["terminals"] = ["v0", "v1"]  # different stream
        with pytest.raises(InvalidInstanceError):
            EnumerationCursor.resume(rechkpt).drain()

    def test_limit_cursor(self, dense_job):
        import dataclasses

        job = dataclasses.replace(dense_job, limit=12)
        cursor = EnumerationCursor(job)
        got = cursor.take(8) + cursor.take(8)
        assert len(got) == 12 and cursor.exhausted and cursor.stop_reason == "limit"


# ----------------------------------------------------------------------
# service + CLI
# ----------------------------------------------------------------------
class TestService:
    def test_batch_runner_stats(self):
        runner = BatchRunner(workers=1)
        jobs = mixed_batch()
        runner.run(jobs)
        stats = runner.stats()
        assert stats["jobs_run"] == len(jobs) and stats["solutions"] > 0
        assert runner.run(jobs)[0].cached

    def test_serve_loop(self):
        requests = [
            {"kind": "steiner-tree", "edges": [["a", "b"], ["b", "c"]],
             "terminals": ["a", "c"], "id": "j1"},
            {"op": "batch", "jobs": [
                {"kind": "st-path",
                 "edges": [["s", "a"], ["a", "t"], ["s", "b"], ["b", "t"]],
                 "source": "s", "target": "t"}]},
            {"op": "nope"},
            {"op": "stats"},
            {"op": "quit"},
            {"op": "stats"},  # after quit: never served
        ]
        out = io.StringIO()
        served = serve(
            io.StringIO("\n".join(json.dumps(r) for r in requests)), out, workers=1
        )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 5 and len(responses) == 5
        assert responses[0]["result"]["lines"] == ["a-b b-c"]
        assert responses[1]["results"][0]["count"] == 2
        assert responses[2]["ok"] is False
        assert responses[3]["stats"]["jobs_run"] == 2
        assert responses[4]["bye"] is True

    def test_serve_survives_type_confused_payloads(self):
        requests = [
            '{"op": "run", "job": {"kind": "steiner-tree", "edges": 5, "terminals": ["a"]}}',
            '{"op": "run", "job": "hello"}',
            '{"op": "quit"}',
        ]
        out = io.StringIO()
        served = serve(io.StringIO("\n".join(requests)), out, workers=1)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 3
        assert responses[0]["ok"] is False and responses[1]["ok"] is False
        assert responses[2]["bye"] is True

    def test_cli_batch_byte_identical_across_workers(self, tmp_path):
        from repro.cli import main

        jobs = mixed_batch(copies=2)
        path = tmp_path / "jobs.jsonl"
        path.write_text(
            "\n".join(json.dumps(j.to_dict(), sort_keys=True) for j in jobs) + "\n"
        )
        outputs = []
        for workers in ("1", "2"):
            out = io.StringIO()
            assert main(["batch", str(path), "--workers", workers], out=out) == 0
            outputs.append(out.getvalue())
        assert outputs[0] == outputs[1]
        assert len(outputs[0].splitlines()) == len(jobs)

    def test_cli_batch_text_mode(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "jobs.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "steiner-tree", "edges": [["a", "b"], ["b", "c"]],
                 "terminals": ["a", "c"]}
            )
            + "\n"
        )
        out = io.StringIO()
        main(["batch", str(path), "--text"], out=out)
        assert out.getvalue() == "a-b b-c\n"

    def test_cli_serve(self, monkeypatch):
        import sys as _sys

        from repro.cli import main

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO('{"op": "quit"}\n')
        )
        out = io.StringIO()
        assert main(["serve"], out=out) == 0
        assert json.loads(out.getvalue())["bye"] is True

"""Determinism: enumeration order must not depend on the hash seed.

DESIGN.md §5.1(4) records a real bug class: iterating Python sets makes
output order hash-seed dependent, which silently randomizes enumeration
between runs.  These tests lock the contract down two ways:

* in-process: repeated runs give identical sequences;
* across processes: a child interpreter with a *different*
  ``PYTHONHASHSEED`` must produce byte-identical output order.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.graphs.generators import random_connected_graph, random_terminals

CHILD_SCRIPT = r"""
import json
import sys

from repro.core.induced_paths import enumerate_chordless_st_paths
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.graphs.generators import random_connected_graph, random_terminals
from repro.hypergraph.dualization import enumerate_minimal_transversals_fk
from repro.hypergraph.hypergraph import random_hypergraph
from repro.paths.yen import yen_k_shortest_paths

out = {}
g = random_connected_graph(10, 9, seed=5)
terms = random_terminals(g, 3, seed=5)
out["steiner"] = [sorted(s) for s in enumerate_minimal_steiner_trees(g, terms)]
out["chordless"] = [list(p) for p in enumerate_chordless_st_paths(g, 0, 9)]
out["yen"] = [v for _, v, _ in yen_k_shortest_paths(g, 0, 9, k=10)]
h = random_hypergraph(7, 5, 3, seed=9)
out["fk"] = [sorted(t) for t in enumerate_minimal_transversals_fk(h)]
json.dump(out, sys.stdout)
"""


def run_child(hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout)


@pytest.mark.slow
def test_order_independent_of_hash_seed():
    a = run_child("0")
    b = run_child("4242")
    assert a == b


class TestInProcessRepeatability:
    def test_steiner_tree_sequence_stable(self):
        g = random_connected_graph(10, 9, seed=5)
        terms = random_terminals(g, 3, seed=5)
        first = list(enumerate_minimal_steiner_trees(g, terms))
        second = list(enumerate_minimal_steiner_trees(g, terms))
        assert first == second

    def test_forest_sequence_stable(self):
        g = random_connected_graph(10, 8, seed=6)
        families = [[0, 5], [2, 8]]
        first = list(enumerate_minimal_steiner_forests(g, families))
        second = list(enumerate_minimal_steiner_forests(g, families))
        assert first == second

    def test_terminal_sequence_stable(self):
        g = random_connected_graph(10, 10, seed=8)
        terms = random_terminals(g, 3, seed=8)
        first = list(enumerate_minimal_terminal_steiner_trees(g, terms))
        second = list(enumerate_minimal_terminal_steiner_trees(g, terms))
        assert first == second

    def test_terminal_order_does_not_change_solution_set(self):
        g = random_connected_graph(9, 9, seed=3)
        terms = random_terminals(g, 3, seed=3)
        forward = {frozenset(s) for s in enumerate_minimal_steiner_trees(g, terms)}
        backward = {
            frozenset(s)
            for s in enumerate_minimal_steiner_trees(g, list(reversed(terms)))
        }
        assert forward == backward

#!/usr/bin/env python
"""Multicast backup-tree planning with minimal directed Steiner trees.

A content source must reach a set of subscriber routers.  Every minimal
directed Steiner tree is a distinct *irredundant* multicast distribution
tree; enumerating them lets an operator pre-compute backup trees that
avoid a failed link, rank trees by a cost model the optimizer does not
know about, or audit how much routing diversity the topology offers.

Run:  python examples/multicast_backup_trees.py
"""

from collections import Counter

from repro import DiGraph, enumerate_minimal_directed_steiner_trees


def build_backbone() -> DiGraph:
    """A small ISP-style backbone with asymmetric links."""
    d = DiGraph()
    links = [
        ("src", "core1"), ("src", "core2"),
        ("core1", "core2"), ("core2", "core1"),
        ("core1", "agg1"), ("core1", "agg2"),
        ("core2", "agg2"), ("core2", "agg3"),
        ("agg1", "sub1"), ("agg2", "sub1"),
        ("agg2", "sub2"), ("agg3", "sub2"),
        ("agg3", "sub3"), ("agg1", "agg2"),
        ("core2", "sub3"),
    ]
    for u, v in links:
        d.add_arc(u, v)
    return d


def main() -> None:
    net = build_backbone()
    subscribers = ["sub1", "sub2", "sub3"]
    source = "src"

    trees = list(enumerate_minimal_directed_steiner_trees(net, subscribers, source))
    print(f"Backbone: {net.num_vertices} routers, {net.num_arcs} directed links")
    print(f"{len(trees)} minimal multicast trees from {source} to {subscribers}\n")

    # 1. Smallest trees = cheapest distribution plans.
    by_size = sorted(trees, key=len)
    print("== Three cheapest trees (fewest links) ==")
    for tree in by_size[:3]:
        arcs = sorted(f"{u}->{v}" for u, v in (net.arc_endpoints(a) for a in tree))
        print(f"  {len(tree)} links: {', '.join(arcs)}")

    # 2. Link criticality: how many trees rely on each link?
    usage = Counter()
    for tree in trees:
        for aid in tree:
            usage[net.arc_endpoints(aid)] += 1
    print("\n== Link criticality (share of trees using each link) ==")
    for (u, v), count in usage.most_common(5):
        print(f"  {u}->{v}: {count}/{len(trees)} trees ({100 * count // len(trees)}%)")

    # 3. Failure drill: pick a primary tree, then the best backup that
    #    shares no link with it.
    primary = by_size[0]
    backups = [t for t in trees if not (t & primary)]
    print(f"\n== Failure drill ==")
    print(f"primary tree uses {len(primary)} links")
    if backups:
        backup = min(backups, key=len)
        print(
            f"found {len(backups)} fully link-disjoint backups; "
            f"best backup uses {len(backup)} links"
        )
    else:
        overlap = min(trees, key=lambda t: len(t & primary) if t != primary else 99)
        print(
            "no fully disjoint backup exists; least-overlapping tree shares "
            f"{len(overlap & primary)} links"
        )

    # 4. Single-link failure coverage: for each link of the primary, is
    #    there a tree avoiding it?
    print("\n== Single-link failure coverage for the primary tree ==")
    for aid in sorted(primary):
        u, v = net.arc_endpoints(aid)
        survivors = sum(1 for t in trees if aid not in t)
        print(f"  if {u}->{v} fails: {survivors} alternative trees remain")


if __name__ == "__main__":
    main()

"""Property-based tests (hypothesis) on the core invariants.

Strategy: draw a small random graph + terminals, compare each enumerator
to its brute-force oracle and check the paper's structural
characterizations on every emitted solution.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    brute_force_minimal_directed_steiner_trees,
    brute_force_minimal_steiner_forests,
    brute_force_minimal_steiner_trees,
    brute_force_minimal_terminal_steiner_trees,
)
from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.graphs.bridges import find_bridges
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.lca import LCAIndex
from repro.graphs.spanning import is_forest, tree_leaves
from repro.paths.read_tarjan import enumerate_st_paths
from repro.paths.simple import backtracking_st_paths

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graph(draw, min_n=2, max_n=6):
    """A simple undirected graph on 0..n-1 drawn edge-by-edge."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    picks = draw(st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs)))
    edges = [p for p, keep in zip(all_pairs, picks) if keep]
    return Graph.from_edges(edges, vertices=range(n))


@st.composite
def small_digraph(draw, min_n=2, max_n=5):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    all_pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    picks = draw(st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs)))
    arcs = [p for p, keep in zip(all_pairs, picks) if keep]
    return DiGraph.from_arcs(arcs, vertices=range(n))


@st.composite
def graph_with_terminals(draw, min_t=1, max_t=4):
    g = draw(small_graph())
    n = g.num_vertices
    t = draw(st.integers(min_value=min_t, max_value=min(max_t, n)))
    terminals = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=t,
            max_size=t,
            unique=True,
        )
    )
    return g, terminals


class TestPathProperties:
    @SETTINGS
    @given(small_digraph())
    def test_path_enumeration_matches_backtracking(self, d):
        vs = sorted(d.vertices())
        s, t = vs[0], vs[-1]
        got = sorted(p.vertices for p in enumerate_st_paths(d, s, t))
        want = sorted(p.vertices for p in backtracking_st_paths(d, s, t, prune=False))
        assert got == want

    @SETTINGS
    @given(small_digraph())
    def test_paths_are_simple_and_correctly_wired(self, d):
        vs = sorted(d.vertices())
        s, t = vs[0], vs[-1]
        for p in enumerate_st_paths(d, s, t):
            assert len(set(p.vertices)) == len(p.vertices)
            for aid, (u, v) in zip(p.arcs, zip(p.vertices, p.vertices[1:])):
                assert d.arc_endpoints(aid) == (u, v)


class TestSteinerTreeProperties:
    @SETTINGS
    @given(graph_with_terminals())
    def test_matches_oracle(self, case):
        g, terminals = case
        want = brute_force_minimal_steiner_trees(g, terminals)
        got = list(enumerate_minimal_steiner_trees(g, terminals))
        assert set(got) == want
        assert len(got) == len(set(got))

    @SETTINGS
    @given(graph_with_terminals(min_t=2))
    def test_proposition_3_on_outputs(self, case):
        g, terminals = case
        for sol in enumerate_minimal_steiner_trees(g, terminals):
            if sol:
                assert tree_leaves(g, sol) <= set(terminals)

    @SETTINGS
    @given(graph_with_terminals(min_t=2))
    def test_solutions_are_antichain(self, case):
        """No minimal solution contains another (inclusion-wise)."""
        g, terminals = case
        sols = list(enumerate_minimal_steiner_trees(g, terminals))
        for a, b in itertools.combinations(sols, 2):
            assert not (a < b or b < a)


class TestForestProperties:
    @SETTINGS
    @given(small_graph(), st.data())
    def test_matches_oracle(self, g, data):
        n = g.num_vertices
        num_fams = data.draw(st.integers(min_value=1, max_value=2))
        fams = []
        for _ in range(num_fams):
            k = data.draw(st.integers(min_value=2, max_value=min(3, n)))
            fams.append(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=k,
                        max_size=k,
                        unique=True,
                    )
                )
            )
        want = brute_force_minimal_steiner_forests(g, fams)
        got = list(enumerate_minimal_steiner_forests(g, fams))
        assert set(got) == want
        assert len(got) == len(set(got))

    @SETTINGS
    @given(small_graph(), st.data())
    def test_outputs_are_forests(self, g, data):
        n = g.num_vertices
        k = data.draw(st.integers(min_value=2, max_value=min(3, n)))
        fam = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        for sol in enumerate_minimal_steiner_forests(g, [fam]):
            assert is_forest(g.edge_subgraph(sol)) if sol else True


class TestTerminalAndDirectedProperties:
    @SETTINGS
    @given(graph_with_terminals(min_t=2))
    def test_terminal_variant_matches_oracle(self, case):
        g, terminals = case
        want = brute_force_minimal_terminal_steiner_trees(g, terminals)
        got = list(enumerate_minimal_terminal_steiner_trees(g, terminals))
        assert set(got) == want
        assert len(got) == len(set(got))

    @SETTINGS
    @given(small_digraph(), st.data())
    def test_directed_variant_matches_oracle(self, d, data):
        n = d.num_vertices
        t = data.draw(st.integers(min_value=1, max_value=min(3, n - 1)))
        terminals = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n - 1),
                min_size=t,
                max_size=t,
                unique=True,
            )
        )
        want = brute_force_minimal_directed_steiner_trees(d, terminals, 0)
        got = list(enumerate_minimal_directed_steiner_trees(d, terminals, 0))
        assert set(got) == want
        assert len(got) == len(set(got))


class TestSubstrateProperties:
    @SETTINGS
    @given(small_graph(min_n=2, max_n=8))
    def test_bridge_characterization(self, g):
        """An edge is a bridge iff removing it splits its component."""
        from repro.graphs.traversal import component_of

        bridges = find_bridges(g)
        for edge in g.edges():
            u, v = edge.u, edge.v
            g2 = g.copy()
            g2.remove_edge(edge.eid)
            split = v not in component_of(g2, u)
            assert (edge.eid in bridges) == split

    @SETTINGS
    @given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=10**6))
    def test_lca_is_deepest_common_ancestor(self, n, seed):
        from repro.graphs.generators import random_tree

        t = random_tree(n, seed)
        idx = LCAIndex(t, 0)

        def ancestors(v):
            out = [v]
            while idx.parent(out[-1]) is not None:
                out.append(idx.parent(out[-1]))
            return out

        import random as _random

        rng = _random.Random(seed)
        for _ in range(5):
            u, v = rng.randrange(n), rng.randrange(n)
            common = [a for a in ancestors(u) if a in set(ancestors(v))]
            deepest = max(common, key=idx.depth)
            assert idx.lca(u, v) == deepest

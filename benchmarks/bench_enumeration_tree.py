"""F1-tree — the improved enumeration tree's structure (Figure 1,
Lemmas 16/18) and the output-queue guarantee (Theorem 20).

Claims exercised:

* every internal node of the improved tree has ≥ 2 children, hence
  #internal ≤ #leaves = #solutions (the structural fact Figure 1's
  argument rests on);
* after priming with n solutions, the output queue never starves: the
  regulator's post-priming event gap between consecutive outputs is
  bounded by a small constant.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table
from repro.bench.workloads import steiner_tree_size_sweep, tree_shape_sweep
from repro.core.steiner_tree import steiner_tree_events
from repro.enumeration.events import TreeShape
from repro.enumeration.queue_method import RegulatorProbe

from benchutil import drain


@pytest.mark.parametrize("inst", steiner_tree_size_sweep()[:3], ids=lambda i: i.name)
def test_event_stream_throughput(benchmark, inst):
    count = benchmark(
        lambda: drain(steiner_tree_events(inst.graph, inst.terminals), 2000)
    )
    assert count > 0


def test_tree_shape_table(benchmark):
    """Figure 1 structure: internal ≤ leaves, min children ≥ 2."""
    rows = []
    for inst in tree_shape_sweep():
        shape = TreeShape()
        solutions = sum(
            1 for _ in shape.consume(steiner_tree_events(inst.graph, inst.terminals))
        )
        rows.append(
            (
                inst.name,
                solutions,
                shape.internal_nodes,
                shape.leaf_nodes,
                shape.min_internal_children,
                shape.max_depth,
            )
        )
        assert shape.leaf_nodes == solutions
        if shape.internal_nodes:
            assert shape.min_internal_children >= 2
            assert shape.internal_nodes <= shape.leaf_nodes
    print()
    print_table(
        "F1-tree: improved enumeration tree structure",
        ("instance", "solutions", "internal", "leaves", "min children", "depth"),
        rows,
    )
    benchmark(lambda: None)


def test_queue_gap_table(benchmark):
    """Theorem 20: bounded event gap between outputs after priming."""
    rows = []
    for inst in tree_shape_sweep():
        prime = inst.graph.num_vertices
        probe = RegulatorProbe(prime=prime, window=4)
        released = sum(
            1 for _ in probe.run(steiner_tree_events(inst.graph, inst.terminals))
        )
        rows.append((inst.name, released, prime, probe.max_gap))
        # gap bounded by a constant multiple of the window whenever the
        # stream was long enough for the probe to engage
        if probe.gaps:
            assert probe.max_gap <= 16
    print()
    print_table(
        "F1-tree: output-queue regulator post-priming event gaps",
        ("instance", "solutions", "prime", "max event gap"),
        rows,
    )
    benchmark(lambda: None)

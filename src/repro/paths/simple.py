"""Baseline *s*-*t* path enumeration by plain backtracking.

Two variants are provided, both mainly serving as correctness oracles and
as the "prior work" comparison point for the AB-paths ablation:

* :func:`backtracking_st_paths` with ``prune=True`` — DFS that, before
  descending along an arc, checks that the target is still reachable in
  the remaining graph.  Every descent therefore leads to at least one
  solution, giving polynomial (but super-linear, O(n·m)-ish) delay: the
  reachability check is recomputed from scratch at every step, which is
  exactly the redundancy Lemma 11's decremental structure removes.
* ``prune=False`` — textbook backtracking.  Delay can be exponential
  (dead-end subtrees), which the ablation benchmark demonstrates.

Both enumerate paths in the same :class:`~repro.paths.read_tarjan.Path`
format as the linear-delay enumerator.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Set

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.paths.read_tarjan import Path

Vertex = Hashable


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


def _can_reach(
    digraph: DiGraph, start: Vertex, target: Vertex, blocked: Set[Vertex], meter=None
) -> bool:
    """Reachability check avoiding ``blocked`` (recomputed from scratch)."""
    if start == target:
        return True
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for aid, w in digraph.out_items(v):
            _tick(meter)
            if w == target:
                return True
            if w not in seen and w not in blocked:
                seen.add(w)
                stack.append(w)
    return False


def backtracking_st_paths(
    digraph: DiGraph,
    source: Vertex,
    target: Vertex,
    prune: bool = True,
    meter=None,
) -> Iterator[Path]:
    """Enumerate all simple directed ``source``-``target`` paths by DFS.

    With ``prune=True`` each emitted branch is alive, so the output is
    duplicate-free and complete with polynomial delay; with ``prune=False``
    the same set of paths is produced but dead subtrees may be explored
    between outputs.
    """
    if source not in digraph or target not in digraph:
        return
    if source == target:
        yield Path((source,), ())
        return

    path_vertices: List[Vertex] = [source]
    path_arcs: List[int] = []
    on_path: Set[Vertex] = {source}

    # Explicit stack of out-arc iterators, one per path vertex.
    iterators = [iter(list(digraph.out_items(source)))]
    while iterators:
        it = iterators[-1]
        advanced = False
        for aid, head in it:
            _tick(meter)
            if head in on_path:
                continue
            if head == target:
                yield Path(tuple(path_vertices) + (target,), tuple(path_arcs) + (aid,))
                continue
            if prune:
                # head must still reach target around the current path
                on_path.add(head)
                alive = _can_reach(digraph, head, target, on_path, meter)
                on_path.discard(head)
                if not alive:
                    continue
            path_vertices.append(head)
            path_arcs.append(aid)
            on_path.add(head)
            iterators.append(iter(list(digraph.out_items(head))))
            advanced = True
            break
        if not advanced:
            iterators.pop()
            if path_vertices:
                removed = path_vertices.pop()
                on_path.discard(removed)
                if path_arcs:
                    path_arcs.pop()


def backtracking_st_paths_undirected(
    graph: Graph, source: Vertex, target: Vertex, prune: bool = True, meter=None
) -> Iterator[Path]:
    """Undirected wrapper of :func:`backtracking_st_paths`.

    Edge ids of the input graph are reported (via the two-arcs-per-edge
    reduction, arc id // 2).
    """
    directed = graph.to_directed()
    for path in backtracking_st_paths(directed, source, target, prune, meter):
        yield Path(path.vertices, tuple(a // 2 for a in path.arcs))


def count_st_paths(digraph: DiGraph, source: Vertex, target: Vertex) -> int:
    """Number of simple directed ``source``-``target`` paths (oracle)."""
    return sum(1 for _ in backtracking_st_paths(digraph, source, target, prune=False))

"""Stateful property tests: Graph/DiGraph invariants under mutation.

A hypothesis rule-based machine performs random interleavings of vertex
and edge insertions/removals while checking the representation
invariants the enumeration algorithms silently rely on:

* adjacency symmetry (undirected) / tail-head duality (directed);
* ``sum(degree) == 2m`` and edge id uniqueness;
* removal really detaches the edge from both endpoint maps;
* derived graphs (``subgraph``, ``copy``) never alias mutable state.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

VERTICES = st.integers(min_value=0, max_value=9)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = Graph()
        self.model_edges = {}  # eid -> (u, v)

    @rule(u=VERTICES)
    def add_vertex(self, u):
        self.graph.add_vertex(u)

    @rule(u=VERTICES, v=VERTICES)
    def add_edge(self, u, v):
        if u == v:
            return
        eid = self.graph.add_edge(u, v)
        assert eid not in self.model_edges, "edge id reused"
        self.model_edges[eid] = (u, v)

    @precondition(lambda self: self.model_edges)
    @rule(data=st.data())
    def remove_edge(self, data):
        eid = data.draw(st.sampled_from(sorted(self.model_edges)))
        u, v = self.graph.remove_edge(eid)
        assert {u, v} == set(self.model_edges.pop(eid))
        assert not self.graph.has_edge_id(eid)
        assert eid not in dict(self.graph.incident_items(u))
        assert eid not in dict(self.graph.incident_items(v))

    @precondition(lambda self: self.graph.num_vertices > 0)
    @rule(data=st.data())
    def remove_vertex(self, data):
        v = data.draw(st.sampled_from(sorted(self.graph.vertices())))
        self.graph.remove_vertex(v)
        self.model_edges = {
            eid: uv for eid, uv in self.model_edges.items() if v not in uv
        }
        assert v not in self.graph

    @rule()
    def copy_is_independent(self):
        clone = self.graph.copy()
        clone.add_vertex("sentinel")
        assert "sentinel" not in self.graph
        if self.model_edges:
            eid = next(iter(self.model_edges))
            clone.remove_edge(eid)
            assert self.graph.has_edge_id(eid)

    @invariant()
    def edges_match_model(self):
        assert self.graph.num_edges == len(self.model_edges)
        for eid, (u, v) in self.model_edges.items():
            assert set(self.graph.endpoints(eid)) == {u, v}

    @invariant()
    def degree_sum_is_twice_edges(self):
        total = sum(self.graph.degree(v) for v in self.graph.vertices())
        assert total == 2 * self.graph.num_edges

    @invariant()
    def adjacency_is_symmetric(self):
        for edge in self.graph.edges():
            assert edge.eid in dict(self.graph.incident_items(edge.u))
            assert edge.eid in dict(self.graph.incident_items(edge.v))


class DiGraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.digraph = DiGraph()
        self.model_arcs = {}  # aid -> (tail, head)

    @rule(u=VERTICES, v=VERTICES)
    def add_arc(self, u, v):
        if u == v:
            return
        aid = self.digraph.add_arc(u, v)
        assert aid not in self.model_arcs
        self.model_arcs[aid] = (u, v)

    @precondition(lambda self: self.model_arcs)
    @rule(data=st.data())
    def remove_arc(self, data):
        aid = data.draw(st.sampled_from(sorted(self.model_arcs)))
        tail, head = self.digraph.remove_arc(aid)
        assert (tail, head) == self.model_arcs.pop(aid)

    @invariant()
    def degree_sums_match(self):
        out_total = sum(
            self.digraph.out_degree(v) for v in self.digraph.vertices()
        )
        in_total = sum(self.digraph.in_degree(v) for v in self.digraph.vertices())
        assert out_total == in_total == self.digraph.num_arcs

    @invariant()
    def arcs_match_model(self):
        assert self.digraph.num_arcs == len(self.model_arcs)
        for aid, (tail, head) in self.model_arcs.items():
            assert self.digraph.arc_endpoints(aid) == (tail, head)

    @invariant()
    def reversal_is_involution(self):
        back = self.digraph.reversed().reversed()
        assert sorted(
            (a.tail, a.head) for a in back.arcs()
        ) == sorted((a.tail, a.head) for a in self.digraph.arcs())


TestGraphMachine = GraphMachine.TestCase
TestDiGraphMachine = DiGraphMachine.TestCase

"""Unit tests for traversal primitives, cross-validated against networkx."""

import random

import networkx as nx

from repro.enumeration.delay import CostMeter
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_order,
    bfs_tree_to,
    component_of,
    connected_components,
    dfs_postorder,
    dfs_tree,
    directed_shortest_path,
    has_directed_path,
    is_connected,
    reachable_from,
    reaches,
    shortest_path,
    shortest_path_avoiding,
)

from conftest import random_simple_digraph, random_simple_graph


def to_nx(g: Graph) -> nx.MultiGraph:
    m = nx.MultiGraph()
    m.add_nodes_from(g.vertices())
    for e in g.edges():
        m.add_edge(e.u, e.v)
    return m


def to_nx_directed(d: DiGraph) -> nx.MultiDiGraph:
    m = nx.MultiDiGraph()
    m.add_nodes_from(d.vertices())
    for a in d.arcs():
        m.add_edge(a.tail, a.head)
    return m


class TestUndirected:
    def test_bfs_order_starts_at_source(self, diamond):
        order = bfs_order(diamond, "s")
        assert order[0] == "s"
        assert set(order) == {"s", "a", "b", "t"}

    def test_component_of_disconnected(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        assert component_of(g, 0) == {0, 1}
        assert component_of(g, 2) == {2}

    def test_connected_components_match_networkx(self):
        rng = random.Random(5)
        for _ in range(30):
            g = random_simple_graph(rng, max_n=8, p=0.25)
            ours = {frozenset(c) for c in connected_components(g)}
            theirs = {frozenset(c) for c in nx.connected_components(to_nx(g))}
            assert ours == theirs

    def test_is_connected(self):
        assert is_connected(Graph())
        assert is_connected(Graph.from_edges([(0, 1), (1, 2)]))
        assert not is_connected(Graph.from_edges([(0, 1)], vertices=[2]))

    def test_shortest_path_lengths_match_networkx(self):
        rng = random.Random(6)
        for _ in range(30):
            g = random_simple_graph(rng, max_n=8)
            m = to_nx(g)
            for target in list(g.vertices())[1:]:
                ours = shortest_path(g, 0, target)
                if nx.has_path(m, 0, target):
                    assert ours is not None
                    assert len(ours) - 1 == nx.shortest_path_length(m, 0, target)
                else:
                    assert ours is None

    def test_shortest_path_trivial(self, diamond):
        assert shortest_path(diamond, "s", "s") == ["s"]

    def test_bfs_tree_to_reaches_source(self, diamond):
        parent = bfs_tree_to(diamond, "s")
        assert parent["s"] is None
        # follow parent edges from t back to s
        v = "t"
        steps = 0
        while parent[v] is not None:
            v = diamond.other_endpoint(parent[v], v)
            steps += 1
        assert v == "s" and steps == 2

    def test_shortest_path_avoiding_blocks(self, diamond):
        # blocking 'a' forces the s-b-t route
        path = shortest_path_avoiding(diamond, ["s"], ["t"], forbidden=["a"])
        assert path == ["s", "b", "t"]

    def test_shortest_path_avoiding_source_in_targets(self, diamond):
        assert shortest_path_avoiding(diamond, ["s"], ["s", "t"]) == ["s"]

    def test_shortest_path_avoiding_unreachable(self, diamond):
        assert (
            shortest_path_avoiding(diamond, ["s"], ["t"], forbidden=["a", "b"])
            is None
        )

    def test_meter_counts_edge_scans(self, diamond):
        meter = CostMeter()
        bfs_order(diamond, "s", meter=meter)
        # every edge is scanned from both sides
        assert meter.count == 2 * diamond.num_edges


class TestDirected:
    def test_reachable_from(self, rooted_dag):
        assert reachable_from(rooted_dag, "r") == {"r", "a", "b", "w1", "w2"}
        assert reachable_from(rooted_dag, "w1") == {"w1"}

    def test_reaches_is_backward_reachability(self, rooted_dag):
        assert reaches(rooted_dag, "w1") == {"r", "a", "b", "w1"}

    def test_has_directed_path(self, rooted_dag):
        assert has_directed_path(rooted_dag, "r", "w2")
        assert not has_directed_path(rooted_dag, "w2", "r")
        assert has_directed_path(rooted_dag, "a", "a")

    def test_directed_shortest_path_matches_networkx(self):
        rng = random.Random(7)
        for _ in range(30):
            d = random_simple_digraph(rng, max_n=7)
            m = to_nx_directed(d)
            vs = list(d.vertices())
            s, t = vs[0], vs[-1]
            ours = directed_shortest_path(d, s, t)
            if nx.has_path(m, s, t):
                assert ours is not None
                assert len(ours) - 1 == nx.shortest_path_length(m, s, t)
            else:
                assert ours is None

    def test_dfs_postorder_root_last(self, rooted_dag):
        order = dfs_postorder(rooted_dag, "r")
        assert order[-1] == "r"
        assert set(order) == {"r", "a", "b", "w1", "w2"}

    def test_dfs_postorder_children_before_parents(self, rooted_dag):
        order = dfs_postorder(rooted_dag, "r")
        pos = {v: i for i, v in enumerate(order)}
        parent = dfs_tree(rooted_dag, "r")
        for v, aid in parent.items():
            if aid is not None:
                tail, _ = rooted_dag.arc_endpoints(aid)
                assert pos[v] < pos[tail]

    def test_dfs_tree_covers_reachable(self, rooted_dag):
        parent = dfs_tree(rooted_dag, "r")
        assert set(parent) == reachable_from(rooted_dag, "r")
        assert parent["r"] is None

"""Delay instrumentation for enumeration algorithms.

The paper's guarantees are *delay* bounds: the worst time interval between
two consecutive solutions (including before the first and after the last).
Measuring this faithfully in Python needs two instruments:

* :class:`DelayRecorder` — wall-clock gaps between yields of a generator.
  Useful for end-to-end numbers but noisy and dominated by interpreter
  constants.
* :class:`CostMeter` — a machine-independent operation counter.  Every
  substrate primitive and enumerator in this package accepts an optional
  ``meter`` and charges one tick per scanned edge/arc.  Metered delay (ops
  between consecutive solutions) is what the benchmark harness uses to
  verify the paper's *shape* claims (delay linear in ``n+m``, independent
  of ``|W|``), per DESIGN.md §4.

Both instruments wrap any iterable and re-yield its items unchanged, so
they compose with the enumerators transparently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class CostMeter:
    """Counts elementary operations (edge scans) charged by the library.

    Examples
    --------
    >>> meter = CostMeter()
    >>> meter.tick(); meter.tick(3)
    >>> meter.count
    4
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def tick(self, amount: int = 1) -> None:
        """Charge ``amount`` elementary operations."""
        self.count += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.count = 0


@dataclass
class DelayStats:
    """Summary of the gaps between consecutive solutions.

    ``delays[0]`` is the preprocessing gap (start to first solution) and
    ``delays[-1]`` the postprocessing gap (last solution to exhaustion),
    matching the paper's convention that both are bounded by the delay.
    """

    delays: List[float] = field(default_factory=list)
    solutions: int = 0

    @property
    def max_delay(self) -> float:
        """Worst gap (the quantity the paper bounds)."""
        return max(self.delays) if self.delays else 0.0

    @property
    def mean_delay(self) -> float:
        """Average gap."""
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    @property
    def total(self) -> float:
        """Total cost of the full enumeration."""
        return sum(self.delays)

    @property
    def amortized(self) -> float:
        """Total cost divided by the number of solutions."""
        return self.total / self.solutions if self.solutions else float("inf")


class DelayRecorder(Generic[T]):
    """Wrap an iterable and record wall-clock delays between its items.

    Examples
    --------
    >>> rec = DelayRecorder(iter([1, 2, 3]))
    >>> list(rec)
    [1, 2, 3]
    >>> rec.stats.solutions
    3
    """

    def __init__(self, source: Iterable[T]) -> None:
        self._source = source
        self.stats = DelayStats()

    def __iter__(self) -> Iterator[T]:
        last = time.perf_counter()
        for item in self._source:
            now = time.perf_counter()
            self.stats.delays.append(now - last)
            self.stats.solutions += 1
            last = now
            yield item
        self.stats.delays.append(time.perf_counter() - last)


class MeteredDelayRecorder(Generic[T]):
    """Wrap an iterable and record *metered* delays between its items.

    The enumerator must be charging its work to the supplied
    :class:`CostMeter`; this recorder snapshots the meter around each
    yield, giving the operation count between consecutive solutions.
    """

    def __init__(self, source: Iterable[T], meter: CostMeter) -> None:
        self._source = source
        self._meter = meter
        self.stats = DelayStats()

    def __iter__(self) -> Iterator[T]:
        last = self._meter.count
        for item in self._source:
            now = self._meter.count
            self.stats.delays.append(now - last)
            self.stats.solutions += 1
            last = now
            yield item
        self.stats.delays.append(self._meter.count - last)


def record_wall_delays(source: Iterable[T], limit: Optional[int] = None) -> DelayStats:
    """Exhaust ``source`` (or its first ``limit`` items); return wall stats."""
    recorder = DelayRecorder(source)
    for i, _item in enumerate(recorder):
        if limit is not None and i + 1 >= limit:
            break
    return recorder.stats


def record_metered_delays(
    source: Iterable[T], meter: CostMeter, limit: Optional[int] = None
) -> DelayStats:
    """Exhaust ``source`` (or first ``limit`` items); return metered stats."""
    recorder = MeteredDelayRecorder(source, meter)
    for i, _item in enumerate(recorder):
        if limit is not None and i + 1 >= limit:
            break
    return recorder.stats

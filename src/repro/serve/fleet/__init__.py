"""Sharded multi-replica serving: router, hash ring, admission, replicas.

One :class:`~repro.serve.fleet.router.FleetRouter` process fronts ``N``
:class:`~repro.serve.server.EnumerationServer` replicas that share a
tiered disk store.  Requests route by the **isomorphism-stable instance
digest** over a :class:`~repro.serve.fleet.hashring.HashRing`, so
relabeled duplicates of a hot graph land on the replica whose caches
are already warm; replica death mid-stream triggers **snapshot-based
stream migration** (the router thaws the last ``RSNAP1`` checkpoint on
a surviving replica and the client sees a gap-free, byte-identical
stream); and the router's
:class:`~repro.serve.fleet.admission.AdmissionController` applies
per-client rate limits and fair backpressure across concurrent
streams.  See ``docs/guides/fleet.md`` for the topology, the migration
protocol and the failure-mode catalogue.
"""

from repro.serve.fleet.admission import AdmissionController, RateLimitExceeded
from repro.serve.fleet.hashring import HashRing, routing_key
from repro.serve.fleet.replicas import (
    ReplicaExited,
    ReplicaProcess,
    join_router,
    leave_router,
)
from repro.serve.fleet.router import FleetRouter, RouterThread

__all__ = [
    "AdmissionController",
    "FleetRouter",
    "HashRing",
    "RateLimitExceeded",
    "ReplicaExited",
    "ReplicaProcess",
    "RouterThread",
    "join_router",
    "leave_router",
    "routing_key",
]

"""Cross-module consistency: every route to the same solution family
must agree (direct enumerators, ZDD compilation, brute force, counts,
and an independent networkx-based verifier)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    brute_force_minimal_steiner_trees,
    kimelfeld_sagiv_style_steiner_trees,
)
from repro.core.optimum import dreyfus_wagner, tree_weight, uniform_weights
from repro.core.steiner_tree import (
    count_minimal_steiner_trees,
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_linear_delay,
    enumerate_minimal_steiner_trees_simple,
)
from repro.graphs.generators import random_connected_graph, random_terminals
from repro.graphs.graph import Graph
from repro.zdd.steiner import build_steiner_tree_zdd


def to_networkx(graph: Graph) -> nx.MultiGraph:
    g = nx.MultiGraph()
    g.add_nodes_from(graph.vertices())
    for edge in graph.edges():
        g.add_edge(edge.u, edge.v, key=edge.eid)
    return g


def nx_is_minimal_steiner_tree(graph: Graph, terminals, eids) -> bool:
    """Independent check via networkx: tree + contains W + leaves ⊆ W."""
    sub = nx.MultiGraph()
    for eid in eids:
        u, v = graph.endpoints(eid)
        sub.add_edge(u, v, key=eid)
    if not eids:
        return len(set(terminals)) == 1
    if not nx.is_connected(sub):
        return False
    if sub.number_of_edges() != sub.number_of_nodes() - 1:
        return False
    if not set(terminals) <= set(sub.nodes):
        return False
    leaves = {v for v in sub.nodes if sub.degree(v) == 1}
    return leaves <= set(terminals)


@pytest.mark.parametrize("seed", range(10))
def test_five_routes_agree(seed):
    g = random_connected_graph(8, 6 + seed % 5, seed=seed)
    terms = random_terminals(g, 3, seed=seed)
    improved = {frozenset(s) for s in enumerate_minimal_steiner_trees(g, terms)}
    simple = {frozenset(s) for s in enumerate_minimal_steiner_trees_simple(g, terms)}
    regulated = {
        frozenset(s) for s in enumerate_minimal_steiner_trees_linear_delay(g, terms)
    }
    ks_style = {frozenset(s) for s in kimelfeld_sagiv_style_steiner_trees(g, terms)}
    zdd = set(build_steiner_tree_zdd(g, terms))
    brute = {frozenset(s) for s in brute_force_minimal_steiner_trees(g, terms)}
    assert improved == simple == regulated == ks_style == zdd == brute


@pytest.mark.parametrize("seed", range(6))
def test_count_equals_enumeration_and_zdd(seed):
    g = random_connected_graph(9, 8, seed=seed)
    terms = random_terminals(g, 4, seed=seed)
    direct = sum(1 for _ in enumerate_minimal_steiner_trees(g, terms))
    assert count_minimal_steiner_trees(g, terms) == direct
    assert build_steiner_tree_zdd(g, terms).count() == direct


@pytest.mark.parametrize("seed", range(6))
def test_networkx_verifies_every_solution(seed):
    g = random_connected_graph(10, 9, seed=seed)
    terms = random_terminals(g, 3, seed=seed)
    for sol in enumerate_minimal_steiner_trees(g, terms):
        assert nx_is_minimal_steiner_tree(g, terms, sol)


@pytest.mark.parametrize("seed", range(5))
def test_dreyfus_wagner_matches_lightest_enumerated(seed):
    """The DW optimum equals the minimum weight over the enumerated
    minimal trees (every minimum tree is minimal for positive weights)."""
    g = random_connected_graph(9, 8, seed=seed)
    terms = random_terminals(g, 3, seed=seed)
    weights = {eid: float((eid * 11) % 6 + 1) for eid in g.edge_ids()}
    optimum, opt_tree = dreyfus_wagner(g, terms, weights)
    enumerated = [
        tree_weight(weights, sol)
        for sol in enumerate_minimal_steiner_trees(g, terms)
    ]
    assert min(enumerated) == pytest.approx(optimum)
    assert tree_weight(weights, opt_tree) == pytest.approx(optimum)


@pytest.mark.parametrize("seed", range(5))
def test_zdd_min_size_matches_unit_weight_optimum(seed):
    g = random_connected_graph(9, 9, seed=seed)
    terms = random_terminals(g, 3, seed=seed)
    zdd = build_steiner_tree_zdd(g, terms)
    optimum, _ = dreyfus_wagner(g, terms, uniform_weights(g))
    assert zdd.min_size() == int(optimum)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=8),
    extra=st.integers(min_value=0, max_value=8),
    t=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_solution_histogram_consistency(n, extra, t, seed):
    """ZDD size histogram == histogram of enumerated solution sizes."""
    g = random_connected_graph(n, extra, seed=seed)
    terms = random_terminals(g, min(t, n), seed=seed)
    zdd = build_steiner_tree_zdd(g, terms)
    direct: dict = {}
    for sol in enumerate_minimal_steiner_trees(g, terms):
        direct[len(sol)] = direct.get(len(sol), 0) + 1
    assert zdd.count_by_size() == direct

"""The fleet front door: consistent-hash routing + stream migration.

:class:`FleetRouter` is a standalone asyncio process that fronts ``N``
:class:`~repro.serve.server.EnumerationServer` replicas sharing one
tiered disk store.  It speaks the exact client protocol of a single
server (``POST /enumerate`` NDJSON streams, ``/answer``, ``/datasets``,
``/stats``…), so :class:`~repro.serve.client.ServeClient` and ``repro
client`` work against a fleet unchanged.

Per request the router:

1. **authenticates + admits** — tenant API keys and quotas apply
   fleet-wide here (replicas run anonymous behind the router), then the
   :class:`~repro.serve.fleet.admission.AdmissionController` spends a
   rate-limit token and takes a fair concurrent-stream slot;
2. **routes** — the job's isomorphism-stable instance digest picks the
   owning replica on the :class:`~repro.serve.fleet.hashring.HashRing`,
   so relabeled duplicates of a hot graph hit the same warm cache;
3. **proxies** — events stream through with per-event backpressure
   (a slow client stalls the router's reads, which stalls the
   replica's credit flow, which suspends the worker — bounded memory
   end to end);
4. **migrates** — when a replica dies mid-stream the router marks it
   down, re-routes to the surviving owner, and re-issues the stream at
   the exact next position.  The replacement replica thaws the last
   ``RSNAP1`` checkpoint from the shared store (suspendable kinds) or
   replays deterministically, and the router de-duplicates on event
   ``seq`` — the client sees one gap-free, byte-identical stream.

Replicas register themselves (``repro serve --join``) via
``POST /fleet/join`` and are health-checked continuously; ``GET
/fleet`` exposes the live topology.  See ``docs/guides/fleet.md``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import InvalidInstanceError, ReproError
from repro.frontdoor.metrics import MetricsRegistry
from repro.frontdoor.registry import DatasetError, DatasetRegistry
from repro.frontdoor.tenants import AuthError, QuotaExceeded, Tenant, TenantRegistry
from repro.serve.fleet.admission import AdmissionController, RateLimitExceeded
from repro.serve.fleet.hashring import HashRing, routing_key
from repro.serve.fleet.proxy import (
    fetch_json,
    iter_chunked_lines,
    read_response_head,
    read_sized_body,
    send_request,
)
from repro.serve.protocol import (
    FINAL_CHUNK,
    ProtocolError,
    clamp_connection_buffers,
    encode_event,
    json_response,
    read_request,
    response_head,
    split_target,
)
from repro.serve.server import EnumerationServer


@dataclass
class ReplicaInfo:
    """One registered replica and its observed health."""

    name: str
    host: str
    port: int
    healthy: bool = True
    failures: int = 0
    streams: int = 0  # streams proxied to it since it joined

    def as_dict(self) -> Dict[str, Any]:
        """Topology entry for ``GET /fleet``."""
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "healthy": self.healthy,
            "streams": self.streams,
        }


@dataclass
class RouterStats:
    """Aggregate router counters exposed at ``GET /stats``."""

    requests: int = 0
    streams: int = 0
    solutions: int = 0
    migrations: int = 0  # mid-stream replica failovers
    replicas_joined: int = 0
    replicas_lost: int = 0
    rate_limited: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON serving."""
        return dataclasses.asdict(self)


class _Disconnect(Exception):
    """The downstream client went away mid-stream."""


class _NoCapacity(ReproError):
    """No healthy replica is available to own the stream."""


class FleetRouter:
    """Consistent-hash router over a fleet of enumeration replicas.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    vnodes:
        Virtual points per replica on the hash ring.
    registry:
        A :class:`DatasetRegistry`, a directory path, or ``None``
        (memory-only).  Point it at the same directory the replicas
        use so the fleet shares one dataset namespace.
    tenants:
        A :class:`TenantRegistry`, a directory path, or ``None`` —
        fleet-wide authentication and quotas live here; replicas
        behind the router run anonymous.
    require_auth:
        Reject anonymous requests (``/healthz`` stays open).
    max_streams, per_client_streams, rate, burst:
        Admission-control knobs (see :class:`AdmissionController`).
    health_interval:
        Seconds between replica health probes (0 disables the prober —
        failures are then detected only by proxy errors).
    migration_budget:
        Mid-stream failovers allowed per stream before the router
        surfaces an error event (defaults to ``replicas + 2``).
    sndbuf:
        Bound each connection's buffering to ~this many bytes: the
        downstream client socket's send buffer and the upstream replica
        socket's receive buffer are both clamped, so a slow consumer's
        backpressure reaches the replica's worker instead of vanishing
        into multi-megabyte loopback autotuning.  ``None`` leaves the
        OS defaults (fastest for trusted LAN clients that always drain).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = 64,
        registry: Union[DatasetRegistry, str, None] = None,
        tenants: Union[TenantRegistry, str, None] = None,
        require_auth: bool = False,
        max_streams: int = 64,
        per_client_streams: int = 8,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        health_interval: float = 1.0,
        migration_budget: Optional[int] = None,
        sndbuf: Optional[int] = None,
    ) -> None:
        if sndbuf is not None and sndbuf < 4096:
            raise ValueError("sndbuf must be >= 4096 bytes (or None)")
        self.sndbuf = sndbuf
        self.host = host
        self._requested_port = port
        self.ring = HashRing(vnodes=vnodes)
        self.replicas: Dict[str, ReplicaInfo] = {}
        if isinstance(registry, str):
            self.registry: DatasetRegistry = DatasetRegistry(registry)
        elif registry is not None:
            self.registry = registry
        else:
            self.registry = DatasetRegistry(None)
        if isinstance(tenants, str):
            self.tenants: Optional[TenantRegistry] = TenantRegistry(tenants)
        else:
            self.tenants = tenants
        if require_auth and self.tenants is None:
            self.tenants = TenantRegistry(None)
        self.require_auth = require_auth
        self.admission = AdmissionController(
            max_streams=max_streams,
            per_client_streams=per_client_streams,
            rate=rate,
            burst=burst,
        )
        self.health_interval = health_interval
        self.migration_budget = migration_budget
        self.stats = RouterStats()
        self.metrics = MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._stream_seq = 0
        self._executor = None  # lazy ThreadPoolExecutor for tenant disk writes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """The router's base URL (for ``repro serve --join``)."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener and start the health prober."""
        if self._server is not None:
            raise RuntimeError("router already started")
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-router"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        if self.health_interval > 0:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )

    async def stop(self) -> None:
        """Close the listener and drain in-flight proxied streams."""
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=10)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # replica membership
    # ------------------------------------------------------------------
    def add_replica(self, name: str, host: str, port: int) -> ReplicaInfo:
        """Register a replica (programmatic form of ``/fleet/join``)."""
        existing = self.replicas.get(name)
        if existing is not None:
            self.ring.remove(name)
        info = ReplicaInfo(name=name, host=host, port=port)
        self.replicas[name] = info
        self.ring.add(name)
        self.stats.replicas_joined += 1
        return info

    def remove_replica(self, name: str) -> bool:
        """Forget a replica entirely (``/fleet/leave``)."""
        self.ring.remove(name)
        return self.replicas.pop(name, None) is not None

    def _mark_down(self, info: ReplicaInfo) -> None:
        """Take a failed replica out of the routing rotation."""
        if info.healthy:
            info.healthy = False
            self.stats.replicas_lost += 1
            self.metrics.inc("replicas_lost")
        self.ring.remove(info.name)

    def _mark_up(self, info: ReplicaInfo) -> None:
        if not info.healthy:
            info.healthy = True
            self.metrics.inc("replicas_recovered")
        info.failures = 0
        if info.name not in self.ring:
            self.ring.add(info.name)

    def _owner(self, key: str) -> Optional[ReplicaInfo]:
        name = self.ring.route(key)
        return self.replicas.get(name) if name is not None else None

    def healthy_replicas(self) -> List[ReplicaInfo]:
        """Replicas currently in the routing rotation."""
        return [r for r in self.replicas.values() if r.healthy]

    async def _probe(self, info: ReplicaInfo) -> bool:
        try:
            status, payload, _headers = await fetch_json(
                info.host, info.port, "GET", "/healthz", timeout=5.0
            )
        except (OSError, ProtocolError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            return False
        return status == 200 and bool(payload.get("ok"))

    async def _health_loop(self) -> None:
        """Continuously probe replicas; drop dead ones, readmit revived."""
        while True:
            await asyncio.sleep(self.health_interval)
            for info in list(self.replicas.values()):
                ok = await self._probe(info)
                if ok:
                    self._mark_up(info)
                    continue
                info.failures += 1
                self._mark_down(info)
                if info.failures >= 30:
                    # A replica dead for ~30 probe intervals is gone
                    # for good (killed processes never reuse the port).
                    self.remove_replica(info.name)

    # ------------------------------------------------------------------
    # connection handling (mirrors EnumerationServer)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if self.sndbuf is not None:
            clamp_connection_buffers(writer, sndbuf=self.sndbuf)
        try:
            await self._handle_request(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    @staticmethod
    def _client_key(headers: Dict[str, str], writer, tenant: Optional[Tenant]) -> str:
        """The admission-control identity of one request's sender."""
        if tenant is not None:
            return f"tenant:{tenant.name}"
        key = EnumerationServer._api_key(headers)
        if key is not None:
            return f"key:{key}"
        peer = writer.get_extra_info("peername")
        return f"addr:{peer[0]}" if peer else "addr:unknown"

    async def _handle_request(self, reader, writer) -> None:
        started = time.perf_counter()
        method, path, tenant_name, status = "-", "-", None, 0
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), timeout=30)
            except ProtocolError as exc:
                status = 400
                writer.write(json_response(400, {"event": "error", "error": str(exc)}))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, asyncio.TimeoutError, OSError):
                return
            if request is None:
                return
            method, target, headers, body = request
            path, params = split_target(target)
            self.stats.requests += 1
            try:
                tenant = await self._authorize(method, path, headers)
                client = self._client_key(headers, writer, tenant)
                if EnumerationServer._charged(method, path):
                    self.admission.check_rate(client)
            except AuthError as exc:
                status = 401
                self.metrics.inc("auth_failures")
                writer.write(json_response(401, {"event": "error", "error": str(exc)}))
                await writer.drain()
                return
            except (QuotaExceeded, RateLimitExceeded) as exc:
                status = 429
                if isinstance(exc, RateLimitExceeded):
                    self.stats.rate_limited += 1
                self.metrics.inc("quota_rejections")
                writer.write(
                    json_response(
                        429,
                        {
                            "event": "error",
                            "error": str(exc),
                            "retry_after": round(exc.retry_after, 3),
                        },
                        headers={"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
                    )
                )
                await writer.drain()
                return
            tenant_name = tenant.name if tenant is not None else None
            status = await self._route(
                method, path, params, body, writer, tenant, client
            )
        except (ConnectionError, _Disconnect, OSError):
            status = status or 499
        finally:
            if path != "-":
                self.metrics.access(
                    method,
                    path,
                    status,
                    time.perf_counter() - started,
                    tenant=tenant_name,
                )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _authorize(
        self, method: str, path: str, headers: Dict[str, str]
    ) -> Optional[Tenant]:
        if self.tenants is None or path == "/healthz":
            return None
        key = EnumerationServer._api_key(headers)
        if key is None and not self.require_auth:
            return None
        tenant = self.tenants.authenticate(key)
        if EnumerationServer._charged(method, path):
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self.tenants.admit, tenant
            )
        return tenant

    async def _record_usage(
        self,
        tenant: Optional[Tenant],
        solutions: int = 0,
        compute_seconds: float = 0.0,
    ) -> None:
        if tenant is None or self.tenants is None or self._executor is None:
            return
        if not solutions and not compute_seconds:
            return
        registry = self.tenants
        await asyncio.get_running_loop().run_in_executor(
            self._executor,
            lambda: registry.record(
                tenant, solutions=solutions, compute_seconds=compute_seconds
            ),
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: bytes,
        writer,
        tenant: Optional[Tenant],
        client: str,
    ) -> int:
        if path == "/healthz" and method == "GET":
            return await self._simple(
                writer,
                200,
                {"ok": True, "role": "router", "replicas": len(self.healthy_replicas())},
            )
        if path == "/fleet" and method == "GET":
            return await self._simple(writer, 200, self._fleet_payload())
        if path == "/fleet/join" and method == "POST":
            return await self._join(body, writer)
        if path == "/fleet/leave" and method == "POST":
            return await self._leave(body, writer)
        if path == "/stats" and method == "GET":
            return await self._simple(writer, 200, await self._stats_payload())
        if path == "/metrics" and method == "GET":
            return await self._simple(writer, 200, self._metrics_payload())
        if path == "/enumerate":
            if method != "POST":
                return await self._simple(
                    writer, 405, {"event": "error", "error": "POST required"}
                )
            return await self._proxy_enumerate(body, writer, tenant, client)
        if path == "/datasets" and method == "POST":
            return await self._register_dataset(body, writer)
        if path == "/datasets" and method == "GET":
            return await self._simple(
                writer,
                200,
                {"ok": True, "datasets": [r._asdict() for r in self.registry.list()]},
            )
        if path.startswith("/datasets/") and method == "DELETE":
            return await self._remove_dataset(path[len("/datasets/"):], writer)
        if path == "/answer" and method in ("GET", "POST"):
            return await self._proxy_answer(method, params, body, writer, tenant)
        return await self._simple(
            writer, 404, {"event": "error", "error": f"no route {path}"}
        )

    async def _simple(
        self,
        writer,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        writer.write(json_response(status, payload, headers))
        await writer.drain()
        return status

    # ------------------------------------------------------------------
    # fleet membership endpoints
    # ------------------------------------------------------------------
    async def _join(self, body: bytes, writer) -> int:
        try:
            spec = json.loads(body.decode() or "{}")
            name = str(spec["name"])
            host = str(spec.get("host", "127.0.0.1"))
            port = int(spec["port"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError) as exc:
            return await self._simple(
                writer, 400, {"event": "error", "error": f"bad join payload: {exc}"}
            )
        probe = ReplicaInfo(name=name, host=host, port=port)
        if not await self._probe(probe):
            return await self._simple(
                writer,
                409,
                {"event": "error", "error": f"replica {name!r} failed its health probe"},
            )
        self.add_replica(name, host, port)
        self.metrics.inc("replicas_joined")
        return await self._simple(
            writer,
            200,
            {"ok": True, "name": name, "replicas": len(self.healthy_replicas())},
        )

    async def _leave(self, body: bytes, writer) -> int:
        try:
            spec = json.loads(body.decode() or "{}")
            name = str(spec["name"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as exc:
            return await self._simple(
                writer, 400, {"event": "error", "error": f"bad leave payload: {exc}"}
            )
        removed = self.remove_replica(name)
        if not removed:
            return await self._simple(
                writer, 404, {"event": "error", "error": f"unknown replica {name!r}"}
            )
        return await self._simple(writer, 200, {"ok": True, "removed": name})

    def _fleet_payload(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "replicas": [
                self.replicas[name].as_dict() for name in sorted(self.replicas)
            ],
            "ring": {"nodes": self.ring.nodes(), "vnodes": self.ring.vnodes},
            "migrations": self.stats.migrations,
        }

    # ------------------------------------------------------------------
    # aggregated ops surfaces
    # ------------------------------------------------------------------
    async def _replica_docs(self, path: str) -> Dict[str, Any]:
        """Fetch ``path`` from every healthy replica concurrently."""
        docs: Dict[str, Any] = {}
        replicas = self.healthy_replicas()

        async def one(info: ReplicaInfo) -> None:
            try:
                status, payload, _headers = await fetch_json(
                    info.host, info.port, "GET", path, timeout=10.0
                )
            except (OSError, ProtocolError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                docs[info.name] = {"ok": False, "error": "unreachable"}
                return
            docs[info.name] = payload if status == 200 else {"ok": False}

        await asyncio.gather(*(one(info) for info in replicas))
        return docs

    async def _stats_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": True, "role": "router"}
        payload.update(self.stats.as_dict())
        replica_stats = await self._replica_docs("/stats")
        payload["replicas"] = {
            name: replica_stats.get(name, {}) for name in sorted(replica_stats)
        }
        totals = {"streams": 0, "solutions": 0, "replays": 0, "live_runs": 0}
        for doc in replica_stats.values():
            for counter in totals:
                value = doc.get(counter)
                if isinstance(value, int):
                    totals[counter] += value
        payload["fleet_totals"] = totals
        payload["admission"] = self.admission.as_dict()
        payload["datasets"] = len(self.registry)
        return payload

    def _metrics_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"ok": True, "role": "router"}
        payload.update(self.metrics.as_dict())
        payload["admission"] = self.admission.as_dict()
        payload["fleet"] = self._fleet_payload()
        payload["migrations"] = self.stats.migrations
        payload["streams"] = self.stats.streams
        payload["solutions"] = self.stats.solutions
        payload["tenants"] = (
            self.tenants.usage_table() if self.tenants is not None else {}
        )
        return payload

    # ------------------------------------------------------------------
    # dataset fan-out
    # ------------------------------------------------------------------
    async def _broadcast(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> None:
        """Apply a mutation on every healthy replica (best effort).

        Replicas share the registry directory on disk, but each caches
        records in memory — the broadcast keeps the live processes
        coherent; a replica that misses it (marked down here) reloads
        the shared directory when it restarts and re-joins.
        """

        async def one(info: ReplicaInfo) -> None:
            try:
                await fetch_json(
                    info.host, info.port, method, path, payload, timeout=15.0
                )
            except (OSError, ProtocolError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                self._mark_down(info)

        await asyncio.gather(*(one(info) for info in self.healthy_replicas()))

    async def _register_dataset(self, body: bytes, writer) -> int:
        try:
            spec = json.loads(body.decode() or "{}")
            if not isinstance(spec, dict):
                raise DatasetError("request body must be a JSON object")
            record, deduped = self.registry.add(
                str(spec.get("name", "")),
                spec.get("edges") or [],
                vertices=spec.get("vertices") or [],
                node_keywords=spec.get("node_keywords") or None,
            )
        except (json.JSONDecodeError, UnicodeDecodeError, TypeError, ValueError) as exc:
            return await self._simple(
                writer, 400, {"event": "error", "error": f"bad dataset payload: {exc}"}
            )
        except ReproError as exc:
            return await self._simple(writer, 400, {"event": "error", "error": str(exc)})
        await self._broadcast("POST", "/datasets", spec)
        self.metrics.inc("datasets_deduped" if deduped else "datasets_registered")
        return await self._simple(
            writer,
            200,
            {
                "ok": True,
                "name": record.name,
                "digest": record.digest,
                "deduped": deduped,
                "num_vertices": record.num_vertices,
                "num_edges": record.num_edges,
            },
        )

    async def _remove_dataset(self, name: str, writer) -> int:
        removed = self.registry.remove(name)
        if not removed:
            return await self._simple(
                writer, 404, {"event": "error", "error": f"unknown dataset {name!r}"}
            )
        await self._broadcast("DELETE", f"/datasets/{name}", None)
        return await self._simple(writer, 200, {"ok": True, "removed": name})

    # ------------------------------------------------------------------
    # /answer: dataset-affine proxy with failover
    # ------------------------------------------------------------------
    async def _proxy_answer(
        self,
        method: str,
        params: Dict[str, str],
        body: bytes,
        writer,
        tenant: Optional[Tenant],
    ) -> int:
        started = time.perf_counter()
        if method == "POST":
            try:
                spec = json.loads(body.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                return await self._simple(
                    writer, 400, {"event": "error", "error": "request body is not JSON"}
                )
            if not isinstance(spec, dict):
                return await self._simple(
                    writer, 400, {"event": "error", "error": "request body must be a JSON object"}
                )
        else:
            spec = dict(params)
        dataset = str(spec.get("dataset", ""))
        record = self.registry.describe(dataset) if dataset else None
        key = record.digest if record is not None else f"dataset:{dataset}"
        solutions = 0
        compute = 0.0
        try:
            for name in self.ring.route_order(key) or []:
                info = self.replicas.get(name)
                if info is None:
                    continue
                info.streams += 1
                try:
                    status, payload, headers = await fetch_json(
                        info.host,
                        info.port,
                        "POST",
                        "/answer",
                        spec,
                        timeout=300.0,
                    )
                except (OSError, ProtocolError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                    self._mark_down(info)
                    self.metrics.inc("answer_failovers")
                    continue
                solutions = int(payload.get("count", 0) or 0)
                provenance = payload.get("provenance") or {}
                compute = float(provenance.get("elapsed_ms", 0.0) or 0.0) / 1000.0
                self.metrics.observe("answer", time.perf_counter() - started)
                return await self._simple(writer, status, payload)
            return await self._simple(
                writer,
                503,
                {"event": "error", "error": "no healthy replica can answer"},
            )
        finally:
            await self._record_usage(tenant, solutions=solutions, compute_seconds=compute)

    # ------------------------------------------------------------------
    # /enumerate: the migrating stream proxy
    # ------------------------------------------------------------------
    async def _proxy_enumerate(
        self, body: bytes, writer, tenant: Optional[Tenant], client: str
    ) -> int:
        try:
            spec, stream_id, chunk, offset = EnumerationServer._parse_enumerate_body(
                body
            )
        except (InvalidInstanceError, ReproError) as exc:
            self.stats.errors += 1
            return await self._simple(writer, 400, {"event": "error", "error": str(exc)})
        key = routing_key(spec, self.registry)
        if stream_id is None:
            self._stream_seq += 1
            stream_id = f"fleet-{key[:12]}-{self._stream_seq}"
        self.stats.streams += 1
        delivered = 0
        compute = 0.0
        try:
            async with self.admission.stream_slot(client):
                delivered, compute, status = await self._drive_stream(
                    spec, stream_id, chunk, offset, key, writer
                )
            return status
        finally:
            await self._record_usage(
                tenant, solutions=delivered, compute_seconds=compute
            )

    async def _drive_stream(
        self,
        spec: Dict[str, Any],
        stream_id: str,
        chunk: Optional[int],
        offset: Optional[int],
        key: str,
        writer,
    ) -> Tuple[int, float, int]:
        """Proxy one stream across however many replicas it takes.

        Returns ``(solutions delivered, compute seconds, http status)``.
        """
        head_sent = False
        expected: Optional[int] = None  # next absolute seq the client needs
        client_start: Optional[int] = None
        compute = 0.0
        leg_offset = offset
        attempts = 0
        last_error: Optional[str] = None

        async def forward(data: bytes) -> None:
            if writer.is_closing():
                raise _Disconnect
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError) as exc:
                raise _Disconnect from exc

        while True:
            budget = (
                self.migration_budget
                if self.migration_budget is not None
                else len(self.replicas) + 2
            )
            info = self._owner(key)
            if info is None or attempts > budget:
                self.stats.errors += 1
                reason = (
                    "no healthy replica available"
                    if info is None
                    else f"stream failed after {attempts} replicas: {last_error}"
                )
                if head_sent:
                    await forward(encode_event({"event": "error", "error": reason}))
                    await forward(FINAL_CHUNK)
                    return (
                        (expected or 0) - (client_start or 0),
                        compute,
                        200,
                    )
                await self._simple(writer, 503, {"event": "error", "error": reason})
                return 0, compute, 503
            attempts += 1
            info.streams += 1
            payload: Dict[str, Any] = {"job": spec, "stream_id": stream_id}
            if chunk is not None:
                payload["chunk"] = chunk
            if leg_offset is not None:
                payload["offset"] = leg_offset
            migrated = head_sent
            up_writer = None
            try:
                # Bound the upstream leg too (pre-connect — the TCP
                # window can't shrink later): otherwise the replica
                # dumps the whole stream into this socket's receive
                # buffer and the client's backpressure stops here.
                reader, up_writer = await send_request(
                    info.host,
                    info.port,
                    "POST",
                    "/enumerate",
                    json.dumps(payload).encode(),
                    rcvbuf=self.sndbuf,
                )
                status, headers = await read_response_head(reader)
                if status != 200:
                    raw = await read_sized_body(reader, headers)
                    try:
                        parsed = json.loads(raw.decode() or "{}")
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        parsed = {"event": "error", "error": f"HTTP {status}"}
                    if head_sent:
                        self.stats.errors += 1
                        await forward(
                            encode_event(
                                {
                                    "event": "error",
                                    "error": parsed.get("error", f"HTTP {status}"),
                                }
                            )
                        )
                        await forward(FINAL_CHUNK)
                        return (expected or 0) - (client_start or 0), compute, 200
                    writer.write(json_response(status, parsed))
                    await writer.drain()
                    return 0, compute, status
                async for line in iter_chunked_lines(reader):
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ProtocolError(f"bad event from replica: {exc}") from exc
                    etype = event.get("event")
                    if etype == "accepted":
                        if migrated:
                            continue  # the client saw the first leg's accept
                        if expected is None:
                            expected = int(event.get("offset", 0))
                            client_start = expected
                        if not head_sent:
                            await forward(response_head(200, "application/x-ndjson"))
                            head_sent = True
                        await forward(encode_event(event))
                    elif etype == "solution":
                        seq = int(event.get("seq", -1))
                        if expected is None:
                            expected = seq
                            client_start = seq
                        if seq < expected:
                            continue  # overlap from a migration resume
                        if seq > expected:
                            raise ProtocolError(
                                f"stream gap: expected seq {expected}, got {seq}"
                            )
                        await forward(
                            b"%x\r\n%s\r\n" % (len(line) + 1, line + b"\n")
                        )
                        expected += 1
                        self.stats.solutions += 1
                    elif etype == "end":
                        compute += float(event.get("compute_seconds", 0.0) or 0.0)
                        event["count"] = (expected or 0) - (client_start or 0)
                        if migrated:
                            event["migrated"] = True
                        await forward(encode_event(event))
                        await forward(FINAL_CHUNK)
                        return event["count"], compute, 200
                    elif etype == "error":
                        # Deterministic job-level failure: every replica
                        # would refuse identically, so relay it.
                        self.stats.errors += 1
                        await forward(encode_event(event))
                        await forward(FINAL_CHUNK)
                        return (expected or 0) - (client_start or 0), compute, 200
                    else:
                        await forward(
                            b"%x\r\n%s\r\n" % (len(line) + 1, line + b"\n")
                        )
                # Chunked body ended without a terminal event: treat as
                # a replica failure and migrate.
                raise asyncio.IncompleteReadError(b"", None)
            except (
                OSError,
                ConnectionError,
                ProtocolError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ) as exc:
                self._mark_down(info)
                last_error = f"{type(exc).__name__}: {exc}"
                if head_sent:
                    self.stats.migrations += 1
                    self.metrics.inc("stream_migrations")
                # Resume exactly where the client's stream stopped; the
                # replacement replica thaws the checkpointed snapshot
                # from the shared store (or replays deterministically).
                if expected is not None:
                    leg_offset = expected
                continue
            finally:
                if up_writer is not None:
                    up_writer.close()


class RouterThread:
    """Run a :class:`FleetRouter` on a background event loop (embedding).

    The tests, the chaos harness and the benchmarks drive routers
    through this, exactly like
    :class:`~repro.serve.server.ServerThread` drives a single server.
    """

    def __init__(self, router: FleetRouter) -> None:
        self.router = router
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "RouterThread":
        """Start the loop thread and block until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("router thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("router failed to start") from self._startup_error
        if not self._started.is_set():  # pragma: no cover - startup is fast
            raise RuntimeError("router did not start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.router.start()
            except BaseException as exc:  # pragma: no cover - bind errors
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self._stop.wait()
            await self.router.stop()

        asyncio.run(main())

    @property
    def port(self) -> int:
        """The router's bound port."""
        return self.router.port

    def stop(self) -> None:
        """Stop the router and join the loop thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

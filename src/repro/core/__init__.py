"""The paper's primary contribution: minimal-Steiner enumeration.

One module per problem, each exposing plain / improved / linear-delay
variants where the paper proves them (Sections 4–5), plus the claw-free
induced enumerator (Section 7) and the hardness reductions (Section 6).
"""

from repro.core.directed_steiner import (
    count_minimal_directed_steiner_trees,
    directed_steiner_events,
    enumerate_minimal_directed_steiner_trees,
    enumerate_minimal_directed_steiner_trees_linear_delay,
    enumerate_minimal_directed_steiner_trees_simple,
)
from repro.core.group_steiner import (
    GroupSteinerSolution,
    StarInstance,
    enumerate_minimal_group_steiner_trees_brute,
    group_steiner_trees_via_transversals,
    minimal_transversals_via_group_steiner,
    transversal_to_group_steiner_instance,
)
from repro.core.induced_paths import (
    brute_force_chordless_st_paths,
    count_chordless_st_paths,
    enumerate_chordless_st_paths,
    enumerate_minimal_induced_steiner_pairs,
    is_chordless_path,
    longest_chordless_path_length,
)
from repro.core.induced_steiner import (
    count_minimal_induced_steiner_subgraphs,
    enumerate_minimal_induced_steiner_subgraphs,
    minimalize,
    steiner_trees_via_line_graph,
)
from repro.core.internal_steiner import (
    enumerate_internal_steiner_trees_brute,
    hamiltonian_path_instance,
    hamiltonian_st_paths,
    has_hamiltonian_st_path,
    has_internal_steiner_tree,
    is_internal_steiner_tree,
)
from repro.core.minimum_enum import (
    count_minimum_steiner_trees,
    enumerate_minimum_steiner_trees_dp,
)
from repro.core.optimum import (
    dreyfus_wagner,
    enumerate_minimum_steiner_trees,
    minimum_steiner_weight,
    tree_weight,
    uniform_weights,
)
from repro.core.ranked import (
    enumerate_approximately_by_weight,
    k_lightest_minimal_steiner_trees,
    sortedness_defect,
    weight_of_optimum,
)
from repro.core.steiner_forest import (
    count_minimal_steiner_forests,
    enumerate_minimal_steiner_forests,
    enumerate_minimal_steiner_forests_linear_delay,
    enumerate_minimal_steiner_forests_simple,
    steiner_forest_events,
)
from repro.core.steiner_tree import (
    count_minimal_steiner_trees,
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_linear_delay,
    enumerate_minimal_steiner_trees_simple,
    steiner_tree_events,
)
from repro.core.terminal_steiner import (
    count_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees,
    enumerate_minimal_terminal_steiner_trees_linear_delay,
    enumerate_minimal_terminal_steiner_trees_simple,
    terminal_steiner_events,
    valid_components,
)
from repro.core.verification import (
    is_directed_steiner_tree,
    is_group_steiner_tree,
    is_induced_steiner_subgraph,
    is_minimal_directed_steiner_tree,
    is_minimal_group_steiner_tree,
    is_minimal_induced_steiner_subgraph,
    is_minimal_steiner_forest,
    is_minimal_steiner_tree,
    is_minimal_terminal_steiner_tree,
    is_steiner_forest,
    is_steiner_subgraph,
    is_terminal_steiner_tree,
)

__all__ = [
    "brute_force_chordless_st_paths",
    "count_chordless_st_paths",
    "count_minimal_directed_steiner_trees",
    "count_minimal_induced_steiner_subgraphs",
    "count_minimal_steiner_forests",
    "count_minimal_steiner_trees",
    "count_minimal_terminal_steiner_trees",
    "count_minimum_steiner_trees",
    "directed_steiner_events",
    "dreyfus_wagner",
    "enumerate_approximately_by_weight",
    "enumerate_chordless_st_paths",
    "enumerate_internal_steiner_trees_brute",
    "enumerate_minimal_directed_steiner_trees",
    "enumerate_minimal_directed_steiner_trees_linear_delay",
    "enumerate_minimal_directed_steiner_trees_simple",
    "enumerate_minimal_group_steiner_trees_brute",
    "enumerate_minimal_induced_steiner_pairs",
    "enumerate_minimal_induced_steiner_subgraphs",
    "enumerate_minimal_steiner_forests",
    "enumerate_minimal_steiner_forests_linear_delay",
    "enumerate_minimal_steiner_forests_simple",
    "enumerate_minimal_steiner_trees",
    "enumerate_minimal_steiner_trees_linear_delay",
    "enumerate_minimal_steiner_trees_simple",
    "enumerate_minimal_terminal_steiner_trees",
    "enumerate_minimal_terminal_steiner_trees_linear_delay",
    "enumerate_minimal_terminal_steiner_trees_simple",
    "enumerate_minimum_steiner_trees",
    "enumerate_minimum_steiner_trees_dp",
    "group_steiner_trees_via_transversals",
    "GroupSteinerSolution",
    "hamiltonian_path_instance",
    "hamiltonian_st_paths",
    "has_hamiltonian_st_path",
    "has_internal_steiner_tree",
    "is_chordless_path",
    "is_directed_steiner_tree",
    "is_group_steiner_tree",
    "is_induced_steiner_subgraph",
    "is_internal_steiner_tree",
    "is_minimal_directed_steiner_tree",
    "is_minimal_group_steiner_tree",
    "is_minimal_induced_steiner_subgraph",
    "is_minimal_steiner_forest",
    "is_minimal_steiner_tree",
    "is_minimal_terminal_steiner_tree",
    "is_steiner_forest",
    "is_steiner_subgraph",
    "is_terminal_steiner_tree",
    "k_lightest_minimal_steiner_trees",
    "longest_chordless_path_length",
    "minimal_transversals_via_group_steiner",
    "minimalize",
    "minimum_steiner_weight",
    "sortedness_defect",
    "StarInstance",
    "steiner_forest_events",
    "steiner_tree_events",
    "steiner_trees_via_line_graph",
    "terminal_steiner_events",
    "transversal_to_group_steiner_instance",
    "tree_weight",
    "uniform_weights",
    "valid_components",
    "weight_of_optimum",
]

"""K-fragment enumeration: the keyword-search API over data graphs.

This is the application the paper's introduction motivates: Kimelfeld and
Sagiv observed that enumerating K-fragments is the core of keyword search
on data graphs, and that the three fragment flavours are exactly the
three Steiner enumeration problems.  Each function below builds the
augmented query graph and drives the corresponding linear-delay
enumerator from :mod:`repro.core`.

Fragments are reported as :class:`Fragment` records carrying the
structural edges, the matched nodes per keyword, and a size used for
ranking (number of structural edges — the usual proxy for answer
compactness in keyword search).

Every enumerating entry point takes ``backend="object" | "fast"``.  The
augmented query graph is compiled once to the integer-compact normal
form (:meth:`DataGraph.compiled_query`, cached across repeated queries)
and the chosen backend runs on that; because the compiled instance is
integer-compact, the two backends' fragment streams are byte-identical,
and the stream no longer depends on keyword-label hash order at all.
Solutions are projected back through the original query graph — edge
ids survive compilation, so no translation is needed.
"""

from __future__ import annotations

import heapq
from typing import (
    FrozenSet,
    Hashable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.steiner_tree import enumerate_minimal_steiner_trees
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.datagraph.model import CompiledQuery, DataGraph, KeywordNode, QueryGraph

Node = Hashable
Keyword = str


class Fragment(NamedTuple):
    """One keyword-search answer.

    Attributes
    ----------
    structural_edges:
        Edge ids of the data graph's structural edges in the fragment.
    matches:
        For each query keyword, the structural node that matched it in
        this fragment.
    size:
        Number of structural edges (ranking key; smaller = tighter).
    """

    structural_edges: FrozenSet[int]
    matches: Tuple[Tuple[Keyword, Node], ...]
    size: int


def _project(query: QueryGraph, solution: FrozenSet[int]) -> Fragment:
    """Split a Steiner solution into structural edges + keyword matches."""
    structural = []
    matches: List[Tuple[Keyword, Node]] = []
    for eid in solution:
        if eid in query.keyword_edge_ids:
            u, v = query.graph.endpoints(eid)
            terminal, node = (u, v) if isinstance(u, KeywordNode) else (v, u)
            matches.append((terminal.keyword, node))
        else:
            structural.append(eid)
    matches.sort(key=lambda kv: kv[0])
    return Fragment(frozenset(structural), tuple(matches), len(structural))


def _project_compiled(compiled: CompiledQuery, solution: FrozenSet[int]) -> Fragment:
    """:func:`_project` with the compiled query's precomputed match
    table and C-level set splitting (projection is per-answer work both
    backends pay, so it is kept off the Python bytecode path)."""
    kw_ids = compiled.keyword_edge_ids
    structural = solution - kw_ids
    match_of = compiled.match_of
    matches = [match_of[eid] for eid in solution & kw_ids]
    matches.sort(key=lambda kv: kv[0])
    return Fragment(structural, tuple(matches), len(structural))


def undirected_kfragments(
    datagraph: DataGraph,
    keywords: Sequence[Keyword],
    meter=None,
    backend: str = "object",
) -> Iterator[Fragment]:
    """Enumerate undirected K-fragments (= minimal Steiner trees).

    Linear delay in the size of the augmented graph (Theorem 2).

    Examples
    --------
    >>> dg = DataGraph()
    >>> _ = dg.add_node("a", ["x"]); _ = dg.add_node("b", ["y"])
    >>> _ = dg.add_link("a", "b")
    >>> [f.size for f in undirected_kfragments(dg, ["x", "y"])]
    [1]
    """
    compiled = datagraph.compiled_query(keywords)
    for solution in enumerate_minimal_steiner_trees(
        compiled.instance(backend), compiled.terminals, meter=meter, backend=backend
    ):
        yield _project_compiled(compiled, solution)


def strong_kfragments(
    datagraph: DataGraph,
    keywords: Sequence[Keyword],
    meter=None,
    backend: str = "object",
) -> Iterator[Fragment]:
    """Enumerate strong K-fragments (= minimal terminal Steiner trees).

    Keyword nodes stay leaves, so each keyword matches exactly one node
    and match nodes are never used as mere connectors.  Needs ≥ 2 query
    keywords (a strong fragment for one keyword is a single node).
    """
    compiled = datagraph.compiled_query(keywords)
    for solution in enumerate_minimal_terminal_steiner_trees(
        compiled.instance(backend), compiled.terminals, meter=meter, backend=backend
    ):
        yield _project_compiled(compiled, solution)


def directed_kfragments(
    datagraph: DataGraph,
    keywords: Sequence[Keyword],
    root: Node,
    meter=None,
    backend: str = "object",
) -> Iterator[Fragment]:
    """Enumerate directed K-fragments rooted at ``root``
    (= minimal directed Steiner trees)."""
    compiled, root_id = datagraph.compiled_directed_query(keywords, root)
    directed_query = compiled.query
    for solution in enumerate_minimal_directed_steiner_trees(
        compiled.instance(backend), compiled.terminals, root_id, meter=meter,
        backend=backend,
    ):
        structural = []
        matches: List[Tuple[Keyword, Node]] = []
        for aid in solution:
            if aid in directed_query.keyword_arc_ids:
                node, terminal = directed_query.digraph.arc_endpoints(aid)
                matches.append((terminal.keyword, node))
            else:
                structural.append(aid // 2)  # arc id -> structural edge id
        matches.sort(key=lambda kv: kv[0])
        yield Fragment(frozenset(structural), tuple(matches), len(set(structural)))


def top_k_fragments(
    datagraph: DataGraph,
    keywords: Sequence[Keyword],
    k: int,
    variant: str = "undirected",
    root: Optional[Node] = None,
    exhaustive: bool = True,
    backend: str = "object",
) -> List[Fragment]:
    """The ``k`` smallest fragments for a query.

    With ``exhaustive=True`` (default) all fragments are enumerated and
    the ``k`` best kept with a bounded heap — exact, and cheap because
    the enumeration itself is linear-delay.  With ``exhaustive=False``
    the first ``k`` fragments in enumeration order are returned (the
    latency-oriented mode; order is not size-sorted, matching the paper's
    note that exact ranked enumeration needs different machinery [25]).
    """
    if variant == "undirected":
        source = undirected_kfragments(datagraph, keywords, backend=backend)
    elif variant == "strong":
        source = strong_kfragments(datagraph, keywords, backend=backend)
    elif variant == "directed":
        if root is None:
            raise ValueError("directed fragments need a root")
        source = directed_kfragments(datagraph, keywords, root, backend=backend)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    if not exhaustive:
        out: List[Fragment] = []
        for fragment in source:
            out.append(fragment)
            if len(out) >= k:
                break
        return out

    # keep the k smallest by (size, deterministic tiebreak)
    heap: List[Tuple[int, ...]] = []
    for i, fragment in enumerate(source):
        key = (-fragment.size, -i)
        if len(heap) < k:
            heapq.heappush(heap, (key, i, fragment))
        elif key > heap[0][0]:
            heapq.heapreplace(heap, (key, i, fragment))
    result = [entry[2] for entry in heap]
    result.sort(key=lambda f: (f.size, f.matches))
    return result

"""Minimal induced Steiner subgraphs on claw-free graphs (Section 7).

Solutions are *vertex sets* ``U`` (with ``W ⊆ U``) such that ``G[U]``
connects every pair of terminals and no proper subset does.  On general
graphs this enumeration is transversal-hard; Theorem 42 gives polynomial
delay on claw-free graphs via the *supergraph technique*:

* define a directed solution graph 𝒢 on the solution set;
* a neighbour of ``X`` is built per pair ``(v, w)``: removing a
  non-terminal ``v ∈ X`` splits ``G[X \\ {v}]`` into exactly two
  components ``C1, C2`` (claw-freeness!), each holding terminals;
  ``w ∈ N(C1) \\ {v}`` is a replacement attachment.  Minimalize
  ``C1 ∪ {w}`` and ``C2`` with the greedy procedure μ, reconnect them
  with a shortest ``w``-``C2``-path avoiding ``N(C1^w) \\ {w}``, and
  minimalize the union (Lemma 41 shows this walks closer to any target
  solution, so 𝒢 is strongly connected);
* BFS over 𝒢 from one solution, deduplicating visited solutions
  (exponential space, as the paper allows).

The greedy minimalizer μ scans candidates in one fixed pass; removability
is antitone (dropping vertices only breaks connectivity), so a single
pass yields a minimal solution deterministically.

Following Lemma 41's proof, the reconnecting path is additionally
forbidden from using ``v`` (the paper's witness path never does), and we
generate neighbours for both orientations of ``(C1, C2)`` — a superset of
the paper's arc set, which preserves strong connectivity and the delay
bound.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from collections import deque

from repro.exceptions import ClawFreeViolation, InvalidInstanceError
from repro.graphs.graph import Graph
from repro.graphs.linegraph import find_claw
from repro.graphs.traversal import component_of

Vertex = Hashable
VertexSolution = FrozenSet[Vertex]


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


def _terminals_connected_within(
    graph: Graph, vertices: Set[Vertex], terminals: Sequence[Vertex], meter=None
) -> bool:
    """Are all terminals connected inside ``G[vertices]``? (BFS, O(n+m))"""
    terminals = list(terminals)
    if not terminals:
        return True
    first = terminals[0]
    if first not in vertices:
        return False
    seen = {first}
    stack = [first]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            _tick(meter)
            if u in vertices and u not in seen:
                seen.add(u)
                stack.append(u)
    return all(w in seen for w in terminals)


def minimalize(
    graph: Graph,
    vertices: Set[Vertex],
    terminals: Sequence[Vertex],
    meter=None,
) -> FrozenSet[Vertex]:
    """The paper's μ: a minimal induced Steiner subgraph inside ``vertices``.

    Scans non-terminal candidates in a fixed deterministic order and drops
    each one whose removal keeps the terminals connected.  Because
    removability is antitone in the vertex set, one pass suffices for
    minimality.  The result is trimmed to the terminals' component first,
    so stray components never survive.
    """
    terminals = list(terminals)
    if not terminals:
        return frozenset()
    current = set(vertices)
    if not _terminals_connected_within(graph, current, terminals, meter):
        raise InvalidInstanceError("terminals are not connected within the set")
    # restrict to the terminals' component
    sub = graph.subgraph(current)
    current = set(component_of(sub, terminals[0], meter=meter))
    terminal_set = set(terminals)
    for v in sorted(current - terminal_set, key=repr):
        trial = current - {v}
        if _terminals_connected_within(graph, trial, terminals, meter):
            current = trial
    return frozenset(current)


def _split_components(
    graph: Graph, vertices: Set[Vertex], removed: Vertex, meter=None
) -> List[Set[Vertex]]:
    """Connected components of ``G[vertices \\ {removed}]``."""
    remaining = vertices - {removed}
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in remaining:
        if start in seen:
            continue
        comp = {start}
        seen.add(start)
        stack = [start]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                _tick(meter)
                if u in remaining and u not in seen:
                    seen.add(u)
                    comp.add(u)
                    stack.append(u)
        components.append(comp)
    return components


def _neighbor_set_within(graph: Graph, component: Set[Vertex], meter=None) -> Set[Vertex]:
    """``N_G(C)``: vertices outside ``component`` adjacent to it."""
    result: Set[Vertex] = set()
    for v in component:
        for u in graph.neighbor_set(v):
            _tick(meter)
            if u not in component:
                result.add(u)
    return result


def _paths_to_targets(
    graph: Graph,
    start: Vertex,
    targets: Set[Vertex],
    forbidden: Set[Vertex],
    meter=None,
) -> List[List[Vertex]]:
    """Shortest ``start``-to-``x`` paths for every reachable target ``x``.

    One absorbing BFS: forbidden vertices are never entered, target
    vertices are recorded but not expanded (they are path *endpoints*), so
    every returned path has internal vertices outside ``forbidden`` and
    outside ``targets``.
    """
    if start in targets:
        return [[start]]
    parent: Dict[Vertex, Optional[Vertex]] = {start: None}
    found: List[Vertex] = []
    queue: deque = deque([start])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            _tick(meter)
            if u in parent or u in forbidden:
                continue
            parent[u] = v
            if u in targets:
                found.append(u)
                continue
            queue.append(u)
    paths: List[List[Vertex]] = []
    for x in found:
        path = [x]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        paths.append(path)
    return paths


def _neighbors_of_solution(
    graph: Graph,
    solution: VertexSolution,
    terminals: Sequence[Vertex],
    meter=None,
) -> Iterator[VertexSolution]:
    """All supergraph neighbours of ``solution`` (Section 7 construction)."""
    terminal_set = set(terminals)
    sol = set(solution)
    for v in sorted(sol - terminal_set, key=repr):
        components = _split_components(graph, sol, v, meter)
        if len(components) != 2:
            # claw-freeness + minimality guarantee exactly two; tolerate
            # degenerate inputs by skipping (validated elsewhere).
            continue
        for c_first, c_second in (components, components[::-1]):
            attach_candidates = _neighbor_set_within(graph, c_first, meter) - {v}
            terms_first = [w for w in terminals if w in c_first]
            terms_second = [w for w in terminals if w in c_second]
            c2w = minimalize(graph, c_second, terms_second, meter)
            c2w_neighborhood = _neighbor_set_within(graph, set(c2w), meter)
            for w in sorted(attach_candidates, key=repr):
                c1w = minimalize(
                    graph, c_first | {w}, terms_first + [w], meter
                )
                # P is an N(C1^w)-N(C2^w) path: it starts at w, ends at a
                # vertex of C2^w ∪ N(C2^w), and its *internal* vertices
                # avoid a blocked region around C1^w (and v, per Lemma 41's
                # witness path, which never uses v).  Internal-only
                # avoidance falls out of the BFS stopping at the first
                # target hit, so forbidden targets are exempted — except
                # v, which must never enter the neighbour.
                #
                # Two avoidance regimes are tried, and for each, one
                # candidate per reachable target.  The strict regime is
                # the paper's (avoid N(C1^w) \ {w}); the loose one avoids
                # only C1^w \ {w} itself.  Both extensions exist because
                # Lemma 41's single-shortest-path iteration can stall when
                # the chosen path's endpoint is itself adjacent to C1^w
                # (see DESIGN.md §5): the extra supergraph arcs keep
                # soundness (everything is re-minimalized by μ) and
                # polynomial delay while restoring reachability, which the
                # test suite validates against brute force.
                targets = (set(c2w) | c2w_neighborhood) - {v}
                strict = (_neighbor_set_within(graph, c1w, meter) - {w}) | {v}
                loose = (set(c1w) - {w}) | {v}
                emitted: Set[Tuple[Vertex, ...]] = set()
                for blocked in (strict, loose):
                    for path in _paths_to_targets(
                        graph, w, targets, (blocked - targets) | {v}, meter
                    ):
                        key = tuple(path)
                        if key in emitted:
                            continue
                        emitted.add(key)
                        candidate = set(c1w) | set(c2w) | set(path)
                        yield minimalize(graph, candidate, terminals, meter)


def enumerate_minimal_induced_steiner_subgraphs(
    graph: Graph,
    terminals: Sequence[Vertex],
    meter=None,
    validate_claw_free: bool = True,
    backend: str = "object",
) -> Iterator[VertexSolution]:
    """Enumerate all minimal induced Steiner subgraphs of a claw-free graph.

    Polynomial delay (O(n²(n+m)) per Theorem 42), exponential space
    (visited-set BFS over the strongly connected solution graph).  Yields
    frozensets of vertices, each exactly once.

    Parameters
    ----------
    validate_claw_free:
        When True (default) the input is checked and a
        :class:`ClawFreeViolation` raised if a claw is found.  Disable for
        large inputs that are claw-free by construction (e.g. Theorem 39
        line-graph instances).

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    >>> sorted(sorted(map(str, s)) for s in
    ...        enumerate_minimal_induced_steiner_subgraphs(g, ["a", "d"]))
    [['a', 'c', 'd']]
    """
    from repro.core.backend import check_backend, compile_undirected, map_query_vertices

    check_backend(backend)
    if backend == "fast":
        fg, index = compile_undirected(graph)
        mapped = map_query_vertices(index, terminals)
        inner = enumerate_minimal_induced_steiner_subgraphs(
            fg, mapped, meter=meter, validate_claw_free=validate_claw_free
        )
        if index is None:
            yield from inner
        else:
            labels = list(index)
            for sol in inner:
                yield frozenset(labels[v] for v in sol)
        return
    terminals = list(dict.fromkeys(terminals))
    if not terminals:
        raise InvalidInstanceError("at least one terminal is required")
    for w in terminals:
        if w not in graph:
            raise InvalidInstanceError(f"terminal {w!r} is not in the graph")
    if validate_claw_free:
        claw = find_claw(graph)
        if claw is not None:
            raise ClawFreeViolation(claw[0], claw[1])

    comp = component_of(graph, terminals[0], meter=meter)
    if not all(w in comp for w in terminals):
        return

    first = minimalize(graph, comp, terminals, meter)
    visited: Set[VertexSolution] = {first}
    queue: deque = deque([first])
    while queue:
        current = queue.popleft()
        yield current
        for neighbor in _neighbors_of_solution(graph, current, terminals, meter):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)


def count_minimal_induced_steiner_subgraphs(
    graph: Graph, terminals: Sequence[Vertex]
) -> int:
    """Number of minimal induced Steiner subgraphs (convenience wrapper)."""
    return sum(
        1 for _ in enumerate_minimal_induced_steiner_subgraphs(graph, terminals)
    )


def steiner_trees_via_line_graph(
    graph: Graph, terminals: Sequence[Vertex], meter=None
) -> Iterator[FrozenSet[int]]:
    """Theorem 39: minimal Steiner trees through the induced enumerator.

    Builds the line-graph instance ``(H, W_H)``, enumerates minimal
    induced Steiner subgraphs of ``H`` and maps each solution's line-graph
    vertices back to an edge set of ``G``.  The paper proves connected
    Steiner subgraphs correspond; the minimal ones correspond to minimal
    Steiner trees.  Mainly a cross-validation device (used by tests and
    the T1-induced experiment).
    """
    from repro.graphs.linegraph import steiner_to_induced_instance

    instance = steiner_to_induced_instance(graph, terminals)
    for solution in enumerate_minimal_induced_steiner_subgraphs(
        instance.graph, instance.terminals, meter=meter, validate_claw_free=False
    ):
        yield frozenset(
            instance.edge_of_vertex[v] for v in solution if v in instance.edge_of_vertex
        )

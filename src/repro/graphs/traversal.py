"""Graph traversals: BFS/DFS, components, reachability, simple path finding.

These are the "standard graph search" primitives the paper invokes without
further comment (e.g. "using a standard graph search algorithm" in
Lemma 11, computing spanning trees in Lemma 13, reachability checks in
Section 5.2).  All run in O(n + m).

Every function accepts an optional ``meter`` (see
:mod:`repro.enumeration.delay`); when provided, one tick is charged per
scanned edge so the benchmark harness can verify the paper's delay bounds
in machine-independent units.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Vertex = Hashable


def _tick(meter, amount: int = 1) -> None:
    if meter is not None:
        meter.tick(amount)


# ----------------------------------------------------------------------
# undirected traversal
# ----------------------------------------------------------------------
def bfs_order(graph: Graph, source: Vertex, meter=None) -> List[Vertex]:
    """Vertices reachable from ``source`` in BFS order."""
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            _tick(meter)
            if u not in seen:
                seen.add(u)
                order.append(u)
                queue.append(u)
    return order


def component_of(graph: Graph, source: Vertex, meter=None) -> Set[Vertex]:
    """The vertex set of the connected component containing ``source``."""
    return set(bfs_order(graph, source, meter=meter))


def connected_components(graph: Graph, meter=None) -> List[Set[Vertex]]:
    """All connected components as vertex sets."""
    seen: Set[Vertex] = set()
    components = []
    for v in graph.vertices():
        if v not in seen:
            comp = component_of(graph, v, meter=meter)
            seen |= comp
            components.append(comp)
    return components


def is_connected(graph: Graph, meter=None) -> bool:
    """True if the graph has at most one connected component."""
    it = iter(graph.vertices())
    try:
        start = next(it)
    except StopIteration:
        return True
    return len(component_of(graph, start, meter=meter)) == graph.num_vertices


def bfs_tree_to(
    graph: Graph, source: Vertex, meter=None
) -> Dict[Vertex, Optional[int]]:
    """BFS parent-edge map: vertex -> edge id towards ``source``.

    The source maps to ``None``.  Unreachable vertices are absent.
    """
    parent: Dict[Vertex, Optional[int]] = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for edge in graph.incident(v):
            _tick(meter)
            u = edge.other(v)
            if u not in parent:
                parent[u] = edge.eid
                queue.append(u)
    return parent


def shortest_path(
    graph: Graph, source: Vertex, target: Vertex, meter=None
) -> Optional[List[Vertex]]:
    """A shortest (fewest-edges) ``source``-``target`` path, or ``None``."""
    if source == target:
        return [source]
    parent: Dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            _tick(meter)
            if u in parent:
                continue
            parent[u] = v
            if u == target:
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(u)
    return None


def shortest_path_avoiding(
    graph: Graph,
    sources: Iterable[Vertex],
    targets: Iterable[Vertex],
    forbidden: Iterable[Vertex] = (),
    meter=None,
) -> Optional[List[Vertex]]:
    """A shortest path from any source to any target avoiding ``forbidden``.

    Internal vertices (and endpoints) must avoid ``forbidden``.  Used by
    the claw-free induced-Steiner neighbour construction (Section 7), which
    needs a shortest ``w``-``N(C)`` path avoiding ``N(C1^w) \\ {w}``.
    """
    target_set = set(targets)
    blocked = set(forbidden)
    parent: Dict[Vertex, Optional[Vertex]] = {}
    queue: deque = deque()
    for s in sources:
        if s in blocked or s in parent:
            continue
        parent[s] = None
        if s in target_set:
            return [s]
        queue.append(s)
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            _tick(meter)
            if u in parent or u in blocked:
                continue
            parent[u] = v
            if u in target_set:
                path = [u]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(u)
    return None


# ----------------------------------------------------------------------
# directed traversal
# ----------------------------------------------------------------------
def reachable_from(digraph: DiGraph, source: Vertex, meter=None) -> Set[Vertex]:
    """Vertices reachable from ``source`` by directed paths."""
    seen = {source}
    stack = [source]
    while stack:
        v = stack.pop()
        for u in digraph.out_neighbors(v):
            _tick(meter)
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return seen


def reaches(digraph: DiGraph, target: Vertex, meter=None) -> Set[Vertex]:
    """Vertices that can reach ``target`` by directed paths.

    This is the set ``{u : r(u) is true}`` of Lemma 11, computed by a
    backward search from ``target``.
    """
    seen = {target}
    stack = [target]
    while stack:
        v = stack.pop()
        for u in digraph.in_neighbors(v):
            _tick(meter)
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return seen


def has_directed_path(
    digraph: DiGraph, source: Vertex, target: Vertex, meter=None
) -> bool:
    """True if a directed ``source``-``target`` path exists."""
    if source == target:
        return True
    seen = {source}
    stack = [source]
    while stack:
        v = stack.pop()
        for u in digraph.out_neighbors(v):
            _tick(meter)
            if u == target:
                return True
            if u not in seen:
                seen.add(u)
                stack.append(u)
    return False


def directed_shortest_path(
    digraph: DiGraph, source: Vertex, target: Vertex, meter=None
) -> Optional[List[Vertex]]:
    """A shortest directed ``source``-``target`` path, or ``None``."""
    if source == target:
        return [source]
    parent: Dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in digraph.out_neighbors(v):
            _tick(meter)
            if u in parent:
                continue
            parent[u] = v
            if u == target:
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(u)
    return None


def dfs_postorder(digraph: DiGraph, root: Vertex, meter=None) -> List[Vertex]:
    """Post-order of a DFS tree of ``digraph`` rooted at ``root``.

    Used by Lemma 35: the total order ``≺`` on the vertices of the DFS tree
    is the post-order of this traversal.  Only vertices reachable from
    ``root`` appear.
    """
    seen = {root}
    order: List[Vertex] = []
    # iterative DFS with explicit iterator stack for correct post-order
    stack: List[Tuple[Vertex, Iterator[Vertex]]] = [
        (root, digraph.out_neighbors(root))
    ]
    while stack:
        v, it = stack[-1]
        advanced = False
        for u in it:
            _tick(meter)
            if u not in seen:
                seen.add(u)
                stack.append((u, digraph.out_neighbors(u)))
                advanced = True
                break
        if not advanced:
            order.append(v)
            stack.pop()
    return order


def dfs_tree(digraph: DiGraph, root: Vertex, meter=None) -> Dict[Vertex, Optional[int]]:
    """A DFS tree rooted at ``root`` as a parent-arc map.

    Maps each reachable vertex to the arc id by which DFS first entered it
    (``root`` maps to ``None``).
    """
    parent: Dict[Vertex, Optional[int]] = {root: None}
    stack: List[Tuple[Vertex, Iterator]] = [(root, digraph.out_arcs(root))]
    while stack:
        v, it = stack[-1]
        advanced = False
        for arc in it:
            _tick(meter)
            if arc.head not in parent:
                parent[arc.head] = arc.aid
                stack.append((arc.head, digraph.out_arcs(arc.head)))
                advanced = True
                break
        if not advanced:
            stack.pop()
    return parent

"""Property tests: the fast kernel backend ≡ the object backend.

For every enumerator with a ``backend`` switch, the two backends must
produce *identical ordered solution streams* on integer-compact
instances (the engine's relabeled normal form) — not just the same
solution sets.  Hypothesis drives random multigraph instances through
all six core enumerators plus the path layer, and separately checks the
kernel's delete/contract/restore cycle round-trips exactly.
"""

from itertools import islice

from hypothesis import given, settings, strategies as st

from repro.core.directed_steiner import enumerate_minimal_directed_steiner_trees
from repro.core.induced_paths import enumerate_chordless_st_paths
from repro.core.induced_steiner import enumerate_minimal_induced_steiner_subgraphs
from repro.core.steiner_forest import enumerate_minimal_steiner_forests
from repro.core.steiner_tree import (
    enumerate_minimal_steiner_trees,
    enumerate_minimal_steiner_trees_simple,
)
from repro.core.terminal_steiner import enumerate_minimal_terminal_steiner_trees
from repro.graphs.digraph import DiGraph
from repro.graphs.fastgraph import FastGraph
from repro.graphs.graph import Graph
from repro.graphs.linegraph import line_graph
from repro.paths.read_tarjan import (
    enumerate_set_paths,
    enumerate_set_paths_directed,
    enumerate_st_paths_undirected,
)

CAP = 400  # per-instance solution cap keeps worst cases bounded


def _streams_equal(factory):
    """Drain both backends (capped) and assert identical order."""
    reference = list(islice(factory("object"), CAP))
    candidate = list(islice(factory("fast"), CAP))
    assert reference == candidate
    return reference


@st.composite
def undirected_instances(draw):
    """A small integer-compact multigraph plus a vertex sample."""
    n = draw(st.integers(min_value=2, max_value=9))
    m = draw(st.integers(min_value=1, max_value=18))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    k = draw(st.integers(min_value=1, max_value=min(4, n)))
    sample = draw(st.permutations(range(n)))[:k]
    return Graph.from_edges(edges, vertices=range(n)), list(sample)


@st.composite
def directed_instances(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=16))
    arcs = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            arcs.append((u, v))
    order = draw(st.permutations(range(n)))
    return DiGraph.from_arcs(arcs, vertices=range(n)), list(order)


@settings(max_examples=60, deadline=None)
@given(undirected_instances())
def test_steiner_tree_streams_identical(case):
    graph, terminals = case
    _streams_equal(
        lambda backend: enumerate_minimal_steiner_trees(
            graph, terminals, backend=backend
        )
    )


@settings(max_examples=30, deadline=None)
@given(undirected_instances())
def test_steiner_tree_simple_streams_identical(case):
    graph, terminals = case
    _streams_equal(
        lambda backend: enumerate_minimal_steiner_trees_simple(
            graph, terminals, backend=backend
        )
    )


@settings(max_examples=50, deadline=None)
@given(undirected_instances())
def test_steiner_forest_streams_identical(case):
    graph, terminals = case
    families = [terminals[:2], terminals[1:]] if len(terminals) > 2 else [terminals]
    _streams_equal(
        lambda backend: enumerate_minimal_steiner_forests(
            graph, families, backend=backend
        )
    )


@settings(max_examples=50, deadline=None)
@given(undirected_instances())
def test_terminal_steiner_streams_identical(case):
    graph, terminals = case
    if len(terminals) < 2:
        terminals = list(range(2))
    _streams_equal(
        lambda backend: enumerate_minimal_terminal_steiner_trees(
            graph, terminals, backend=backend
        )
    )


@settings(max_examples=50, deadline=None)
@given(directed_instances())
def test_directed_steiner_streams_identical(case):
    digraph, order = case
    root, terminals = order[0], order[1:3]
    _streams_equal(
        lambda backend: enumerate_minimal_directed_steiner_trees(
            digraph, terminals, root, backend=backend
        )
    )


@settings(max_examples=40, deadline=None)
@given(undirected_instances())
def test_induced_steiner_streams_identical(case):
    """Line graphs are claw-free, so Theorem 42's precondition holds."""
    base, sample = case
    lg = line_graph(base)
    if lg.num_vertices < 2:
        return
    # Relabel the line graph (edge-labelled vertices) to compact ints.
    index = {v: i for i, v in enumerate(lg.vertices())}
    relabeled = Graph.from_edges(
        [(index[e.u], index[e.v]) for e in lg.edges()], vertices=range(len(index))
    )
    terminals = [i % relabeled.num_vertices for i in sample[:2]]
    _streams_equal(
        lambda backend: enumerate_minimal_induced_steiner_subgraphs(
            relabeled, terminals, backend=backend
        )
    )


@settings(max_examples=50, deadline=None)
@given(undirected_instances())
def test_chordless_path_streams_identical(case):
    graph, sample = case
    source, target = sample[0], sample[-1]
    _streams_equal(
        lambda backend: enumerate_chordless_st_paths(
            graph, source, target, backend=backend
        )
    )


@settings(max_examples=60, deadline=None)
@given(undirected_instances())
def test_st_path_streams_identical(case):
    graph, sample = case
    source, target = sample[0], sample[-1]
    _streams_equal(
        lambda backend: enumerate_st_paths_undirected(
            graph, source, target, backend=backend
        )
    )


@settings(max_examples=50, deadline=None)
@given(undirected_instances())
def test_set_path_streams_identical(case):
    graph, sample = case
    if len(sample) < 2:
        return
    sources = frozenset(sample[:-1])
    targets = (sample[-1],)
    _streams_equal(
        lambda backend: enumerate_set_paths(graph, sources, targets, backend=backend)
    )


@settings(max_examples=40, deadline=None)
@given(directed_instances())
def test_set_path_directed_streams_identical(case):
    digraph, order = case
    sources = frozenset(order[:2])
    targets = tuple(order[2:4]) or (order[-1],)
    if set(sources) & set(targets):
        return
    _streams_equal(
        lambda backend: enumerate_set_paths_directed(
            digraph, sources, targets, backend=backend
        )
    )


@st.composite
def mutation_scripts(draw):
    """An instance plus a random delete/contract script."""
    graph, _sample = draw(undirected_instances())
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["remove", "contract"]), st.integers(0, 10**6)),
            min_size=1,
            max_size=8,
        )
    )
    return graph, ops


@settings(max_examples=60, deadline=None)
@given(mutation_scripts())
def test_delete_contract_restore_round_trip(case):
    """A kernel mutation batch rolls back to the byte-exact start state —
    including incidence order — and enumeration streams after the
    rollback are unchanged."""
    graph, ops = case
    terminals = sorted(graph.vertices())[:2]
    fg = FastGraph.from_graph(graph)
    before_inc = {v: list(fg.incident_ids(v)) for v in fg.vertices()}
    before_stream = list(
        islice(enumerate_minimal_steiner_trees(graph, terminals, backend="fast"), CAP)
    )
    mark = fg.checkpoint()
    for kind, pick in ops:
        alive = list(fg.edge_ids())
        if not alive:
            break
        eid = alive[pick % len(alive)]
        if kind == "remove":
            fg.remove_edge(eid)
        else:
            fg.contract_edge(eid)
    fg.rollback(mark)
    after_inc = {v: list(fg.incident_ids(v)) for v in fg.vertices()}
    assert before_inc == after_inc
    after_stream = list(
        islice(enumerate_minimal_steiner_trees(fg, terminals, backend="fast"), CAP)
    )
    assert before_stream == after_stream

"""Group Steiner tree enumeration and the Theorem 38 reduction.

Theorem 38: an output-polynomial enumerator for minimal group Steiner
trees would dualize hypergraphs in output-polynomial time — a major open
problem.  The reduction is a *star graph*: centre ``r``, one leaf
``ℓ_u`` per universe element, and a terminal family
``W_e = {ℓ_u : u ∈ e}`` per hyperedge; minimal transversals then
correspond exactly to minimal group Steiner trees (star subtrees, plus
the degenerate single-leaf trees when one element covers everything).

This module provides both directions of the reduction plus a brute-force
minimal group Steiner enumerator (there is provably no efficient one to
implement), which together power the H-group experiment: the counts and
per-solution bijection of the two routes must agree.
"""

from __future__ import annotations

import itertools
from typing import (
    FrozenSet,
    Hashable,
    Iterator,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.verification import is_minimal_group_steiner_tree
from repro.graphs.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph, enumerate_minimal_transversals

Vertex = Hashable


class GroupSteinerSolution(NamedTuple):
    """A minimal group Steiner tree.

    ``edges`` is empty for single-vertex trees, in which case ``vertex``
    holds the tree's one vertex; otherwise ``vertex`` is ``None``.
    """

    edges: FrozenSet[int]
    vertex: Optional[Vertex]

    def vertex_set(self, graph: Graph) -> FrozenSet[Vertex]:
        """All vertices of the tree."""
        if not self.edges:
            return frozenset((self.vertex,))
        vs: Set[Vertex] = set()
        for eid in self.edges:
            u, v = graph.endpoints(eid)
            vs.add(u)
            vs.add(v)
        return frozenset(vs)


class StarInstance(NamedTuple):
    """Theorem 38 star-graph instance built from a hypergraph."""

    graph: Graph
    center: Vertex
    families: Tuple[Tuple[Vertex, ...], ...]
    leaf_of: dict  # element -> leaf vertex
    element_of: dict  # leaf vertex -> element


def transversal_to_group_steiner_instance(hypergraph: Hypergraph) -> StarInstance:
    """Build the star graph of Theorem 38's proof."""
    g = Graph()
    center = ("center",)
    g.add_vertex(center)
    leaf_of = {}
    element_of = {}
    for u in hypergraph.universe:
        leaf = ("leaf", u)
        leaf_of[u] = leaf
        element_of[leaf] = u
        g.add_edge(center, leaf)
    families = tuple(
        tuple(leaf_of[u] for u in sorted(e, key=repr)) for e in hypergraph.edges
    )
    return StarInstance(g, center, families, leaf_of, element_of)


def enumerate_minimal_group_steiner_trees_brute(
    graph: Graph, families: Sequence[Sequence[Vertex]], max_edges: Optional[int] = None
) -> Iterator[GroupSteinerSolution]:
    """Brute-force minimal group Steiner tree enumeration.

    Exhaustive over edge subsets (plus single-vertex trees), filtered by
    :func:`~repro.core.verification.is_minimal_group_steiner_tree`.  Only
    for small instances — Theorem 38 says nothing substantially better
    can exist without settling hypergraph dualization.
    """
    # single-vertex trees
    for v in sorted(graph.vertices(), key=repr):
        if is_minimal_group_steiner_tree(graph, (), v, families):
            yield GroupSteinerSolution(frozenset(), v)
    eids = sorted(graph.edge_ids())
    limit = len(eids) if max_edges is None else min(max_edges, len(eids))
    for r in range(1, limit + 1):
        for sub in itertools.combinations(eids, r):
            if is_minimal_group_steiner_tree(graph, sub, None, families):
                yield GroupSteinerSolution(frozenset(sub), None)


def minimal_transversals_via_group_steiner(
    hypergraph: Hypergraph,
) -> Iterator[FrozenSet]:
    """Theorem 38, forward direction: dualize through group Steiner trees.

    Enumerate minimal group Steiner trees of the star instance and map
    each back to a subset of the universe.  Star subtrees containing the
    centre map to their leaf set; single-leaf trees map to singletons (the
    case where one element alone hits every hyperedge).  The output is
    exactly the set of minimal transversals.
    """
    instance = transversal_to_group_steiner_instance(hypergraph)
    for solution in enumerate_minimal_group_steiner_trees_brute(
        instance.graph, instance.families
    ):
        vs = solution.vertex_set(instance.graph)
        yield frozenset(
            instance.element_of[v] for v in vs if v in instance.element_of
        )


def group_steiner_trees_via_transversals(
    hypergraph: Hypergraph,
) -> Iterator[GroupSteinerSolution]:
    """Theorem 38, reverse direction: group Steiner trees from transversals.

    For the star instance, every minimal transversal ``X`` yields the
    subtree ``G[X ∪ {r}]`` — except singleton transversals ``{u}``, whose
    minimal tree is the bare leaf ``ℓ_u`` (the centre edge would be
    removable).  This is the direction that would make a fast group
    Steiner enumerator solve dualization.
    """
    instance = transversal_to_group_steiner_instance(hypergraph)
    for transversal in enumerate_minimal_transversals(hypergraph):
        if len(transversal) == 1:
            (u,) = transversal
            yield GroupSteinerSolution(frozenset(), instance.leaf_of[u])
            continue
        eids = set()
        for u in transversal:
            leaf = instance.leaf_of[u]
            eids.update(instance.graph.edges_between(instance.center, leaf))
        yield GroupSteinerSolution(frozenset(eids), None)

"""Weighted and unweighted shortest paths on :class:`Graph` / :class:`DiGraph`.

The enumeration paper treats paths purely structurally, but several of the
works it builds on are *ranked* path problems: Yen [35], Eppstein [12],
Hershberger et al. [18] all enumerate paths by weight, and the
Kimelfeld–Sagiv keyword-search systems rank K-fragments by weight.  This
module supplies the shortest-path substrate those layers need:

* :func:`dijkstra` / :func:`dijkstra_directed` — single-source distances
  with parent pointers, optionally stopping early at a target;
* :func:`shortest_path` / :func:`shortest_path_directed` — one optimal
  path as a vertex sequence plus its edge ids;
* :func:`bfs_distances` — unweighted distances (weight 1 per edge).

Weights are mappings ``edge id -> non-negative number``; a missing id
defaults to 1, so unweighted graphs need no weight table at all.  Ties
between equal-weight paths are broken deterministically by edge id so
that every function in this module is reproducible across runs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import InvalidInstanceError, NoSolutionError, VertexNotFound
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Vertex = Hashable
Weight = float

#: parent record: (edge id used to reach the vertex, predecessor vertex)
Parent = Tuple[int, Hashable]


def _weight_of(weights: Optional[Mapping[int, Weight]], eid: int) -> Weight:
    if weights is None:
        return 1.0
    w = weights.get(eid, 1.0)
    if w < 0:
        raise InvalidInstanceError(f"edge {eid} has negative weight {w}")
    return w


def _run_dijkstra(
    items_of,
    sources: Iterable[Vertex],
    weights: Optional[Mapping[int, Weight]],
    target: Optional[Vertex],
) -> Tuple[Dict[Vertex, Weight], Dict[Vertex, Parent]]:
    """Shared Dijkstra core over an adjacency accessor.

    ``items_of(v)`` yields ``(eid, neighbour)`` pairs.  Ties are broken by
    (distance, edge id of the incoming edge) which makes parent pointers
    deterministic regardless of hash seeds.
    """
    dist: Dict[Vertex, Weight] = {}
    parent: Dict[Vertex, Parent] = {}
    heap: List[Tuple[Weight, int, Vertex]] = []
    for s in sources:
        dist[s] = 0.0
        heapq.heappush(heap, (0.0, -1, s))
    settled = set()
    while heap:
        d, _tie, v = heapq.heappop(heap)
        if v in settled or d > dist.get(v, float("inf")):
            continue
        settled.add(v)
        if target is not None and v == target:
            break
        for eid, u in items_of(v):
            nd = d + _weight_of(weights, eid)
            du = dist.get(u)
            if du is None or nd < du or (nd == du and u in parent and eid < parent[u][0]):
                dist[u] = nd
                parent[u] = (eid, v)
                heapq.heappush(heap, (nd, eid, u))
    return dist, parent


def dijkstra(
    graph: Graph,
    source: Vertex,
    weights: Optional[Mapping[int, Weight]] = None,
    target: Optional[Vertex] = None,
) -> Tuple[Dict[Vertex, Weight], Dict[Vertex, Parent]]:
    """Single-source shortest distances in an undirected graph.

    Returns ``(dist, parent)`` where ``parent[v] = (eid, prev)`` is the
    last edge of a shortest ``source``-``v`` path.  If ``target`` is given
    the search stops as soon as the target is settled (its distance and
    parent chain are still exact).

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    >>> dist, parent = dijkstra(g, "a", {0: 1.0, 1: 1.0, 2: 5.0})
    >>> dist["c"]
    2.0
    """
    if source not in graph:
        raise VertexNotFound(source)
    return _run_dijkstra(graph.incident_items, [source], weights, target)


def dijkstra_directed(
    digraph: DiGraph,
    source: Vertex,
    weights: Optional[Mapping[int, Weight]] = None,
    target: Optional[Vertex] = None,
) -> Tuple[Dict[Vertex, Weight], Dict[Vertex, Parent]]:
    """Single-source shortest distances along arcs of a digraph."""
    if source not in digraph:
        raise VertexNotFound(source)
    return _run_dijkstra(digraph.out_items, [source], weights, target)


def multi_source_dijkstra(
    graph: Graph,
    sources: Iterable[Vertex],
    weights: Optional[Mapping[int, Weight]] = None,
) -> Tuple[Dict[Vertex, Weight], Dict[Vertex, Parent]]:
    """Distances from the nearest of several sources (used by ranked mode)."""
    srcs = list(dict.fromkeys(sources))
    if not srcs:
        raise InvalidInstanceError("at least one source is required")
    for s in srcs:
        if s not in graph:
            raise VertexNotFound(s)
    return _run_dijkstra(graph.incident_items, srcs, weights, None)


def _rebuild(
    parent: Mapping[Vertex, Parent], source_set, target: Vertex
) -> Tuple[List[Vertex], List[int]]:
    vertices = [target]
    edges: List[int] = []
    v = target
    while v not in source_set:
        eid, prev = parent[v]
        edges.append(eid)
        vertices.append(prev)
        v = prev
    vertices.reverse()
    edges.reverse()
    return vertices, edges


def shortest_path(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    weights: Optional[Mapping[int, Weight]] = None,
) -> Tuple[Weight, List[Vertex], List[int]]:
    """One shortest ``source``-``target`` path in an undirected graph.

    Returns ``(weight, vertex sequence, edge ids)``.  Raises
    :class:`NoSolutionError` when the target is unreachable.

    Examples
    --------
    >>> g = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> shortest_path(g, "a", "c")
    (2.0, ['a', 'b', 'c'], [0, 1])
    """
    if target not in graph:
        raise VertexNotFound(target)
    dist, parent = dijkstra(graph, source, weights, target=target)
    if target not in dist:
        raise NoSolutionError(f"no path from {source!r} to {target!r}")
    vertices, edges = _rebuild(parent, {source}, target)
    return dist[target], vertices, edges


def shortest_path_directed(
    digraph: DiGraph,
    source: Vertex,
    target: Vertex,
    weights: Optional[Mapping[int, Weight]] = None,
) -> Tuple[Weight, List[Vertex], List[int]]:
    """One shortest directed ``source``-``target`` path (weight, vertices, arc ids)."""
    if target not in digraph:
        raise VertexNotFound(target)
    dist, parent = dijkstra_directed(digraph, source, weights, target=target)
    if target not in dist:
        raise NoSolutionError(f"no directed path from {source!r} to {target!r}")
    vertices, edges = _rebuild(parent, {source}, target)
    return dist[target], vertices, edges


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Unweighted hop distances from ``source`` (undirected)."""
    if source not in graph:
        raise VertexNotFound(source)
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
        frontier = nxt
    return dist


def eccentricity(graph: Graph, vertex: Vertex) -> int:
    """Maximum hop distance from ``vertex`` to any reachable vertex."""
    dist = bfs_distances(graph, vertex)
    return max(dist.values())


def path_weight(
    weights: Optional[Mapping[int, Weight]], edge_ids: Iterable[int]
) -> Weight:
    """Total weight of an edge id sequence under ``weights`` (default 1/edge)."""
    return sum(_weight_of(weights, eid) for eid in edge_ids)
